"""The network edge of the service plane.

:class:`ServeNetwork` subclasses the simulated
:class:`~repro.net.network.P2PNetwork` so construction (bandwidth draws,
latency map, counters, handler table) is bit-identical — the rest of the
world derives from the same RNG streams either way.  Only delivery
changes: instead of scheduling a discrete event, :meth:`send` encodes the
payload through the real wire codec and posts the resulting frame on the
transport; the destination's actor pulls it, decodes it, and feeds the
registered handler.  Fault planes and observers keep working — they hook
the send path before the frame is posted, exactly where the simulator
hooks them.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.wire import decode, encode
from repro.errors import NetworkError
from repro.net.latency import LatencyModel
from repro.net.messages import Category, NetMessage
from repro.net.network import P2PNetwork
from repro.net.topology import Topology
from repro.serve.engine import WallEngine
from repro.serve.transport import Frame, Transport

__all__ = ["ServeNetwork"]


class ServeNetwork(P2PNetwork):
    """P2PNetwork whose delivery rides a real transport, not the DES queue."""

    def __init__(
        self,
        topology: Topology,
        rng: np.random.Generator,
        *,
        engine: WallEngine,
        transport: Transport,
        latency_model: LatencyModel | None = None,
        model_transmission: bool = True,
    ) -> None:
        super().__init__(
            topology,
            rng,
            engine=engine,  # type: ignore[arg-type]
            latency_model=latency_model,
            model_transmission=model_transmission,
        )
        self.transport = transport
        self.frames_sent = 0
        self.frames_received = 0

    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        *,
        category: str = Category.CONTROL,
        count: bool = True,
        size_bytes: int | None = None,
    ) -> NetMessage:
        """Encode ``payload`` and post it on the transport.

        Mirrors the simulator's send contract: offline senders raise,
        the counter charges the sender whether or not the destination is
        up, observers and the fault plane see every message, and injected
        drops never reach the wire.  ``size_bytes`` is ignored in favour
        of the true encoded frame length — on this plane the bytes are
        real.
        """
        src_node = self.node(src)
        self.node(dst)  # validates the index
        if not src_node.online:
            raise NetworkError(f"node {src} is offline and cannot send")
        encoded = encode(payload)
        msg = NetMessage(
            src=src,
            dst=dst,
            payload=payload,
            category=category,
            sent_at=self.engine.now,
        )
        msg.size_bytes = len(encoded)
        if count:
            self.counter.count(category)
        for observer in self.observers:
            observer(msg)
        if self.faults is not None:
            verdict = self.faults.on_send(msg, self.engine.now)
            if verdict.drop:
                for fault_observer in self.fault_observers:
                    fault_observer("drop", msg, 0.0)
                return msg
            if verdict.extra_latency_ms > 0.0:
                # Latency spikes are advisory on the live plane (the real
                # network sets the pace); announce them for telemetry parity.
                for fault_observer in self.fault_observers:
                    fault_observer("delay", msg, verdict.extra_latency_ms)
        self.transport.post(
            Frame(
                src=src,
                dst=dst,
                category=category,
                sent_at=msg.sent_at,
                payload=encoded,
            )
        )
        self.frames_sent += 1
        return msg

    def deliver_frame(self, frame: Frame) -> None:
        """Decode an inbound frame and hand it to the registered handler.

        Called from the destination's actor loop.  Offline destinations
        drop the frame on the floor (cost already charged at send time),
        matching the simulator's delivery semantics.
        """
        node = self.nodes[frame.dst]
        if not node.online:
            return
        handler = self._handlers.get(frame.dst)
        if handler is None:
            return
        payload = decode(frame.payload)
        msg = NetMessage(
            src=frame.src,
            dst=frame.dst,
            payload=payload,
            category=frame.category,
            sent_at=frame.sent_at,
        )
        msg.size_bytes = len(frame.payload)
        self.frames_received += 1
        handler(msg)

    def run(self, **kwargs: Any) -> int:
        """No event queue to drain: actors deliver as frames arrive."""
        return 0
