"""Wall-clock engine: the serving counterpart of the simulator's clock.

The protocol kernel reads time and arms timers exclusively through the
engine interface (``engine.now`` / ``schedule_in`` / ``cancel``), so a
live deployment only needs an engine whose *now* is the host's monotonic
clock and whose timers are asyncio ``call_later`` handles.  Everything
above the network edge — peers, agents, onion router — runs unmodified.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.clock import WallClock

__all__ = ["WallEngine"]


class WallEngine:
    """Engine façade over the host clock for served fleets.

    Implements the subset of :class:`repro.sim.engine.SimEngine` the
    protocol stack uses: ``now`` (milliseconds), ``schedule`` /
    ``schedule_in`` (one-shot timers on the running asyncio loop, returning
    cancellable handles), ``cancel``, and a no-op ``run`` — on the wall
    clock, time advances by itself; there is no event queue to drain.
    """

    def __init__(self, clock: WallClock | None = None) -> None:
        self.clock = clock if clock is not None else WallClock()
        self.events_run = 0

    @property
    def now(self) -> float:
        """Milliseconds since the engine's clock was zeroed."""
        return self.clock.now

    def schedule_in(
        self,
        delay: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Any:
        """Arm ``action`` to fire ``delay`` ms from now on the running loop."""
        import asyncio

        loop = asyncio.get_running_loop()

        def fire() -> None:
            self.events_run += 1
            action()

        return loop.call_later(max(0.0, delay) / 1000.0, fire)

    def schedule(
        self,
        time: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Any:
        """Arm ``action`` for an absolute engine time (ms)."""
        return self.schedule_in(time - self.now, action, priority=priority, label=label)

    def cancel(self, handle: Any) -> None:
        """Cancel a timer handle returned by :meth:`schedule_in`."""
        handle.cancel()

    def run(self, **kwargs: Any) -> int:
        """No-op: wall time advances on its own; deliveries are actor-driven."""
        return 0
