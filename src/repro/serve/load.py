"""Trace-replaying load generation against a live fleet.

A load run replays a list of :class:`~repro.workloads.transactions.
Transaction` pairings — built from the same workload generators the
simulator uses — against a :class:`~repro.serve.system.ServeSystem` at a
configurable *client concurrency* (how many transactions may be in flight
at once) and an optional *open-loop arrival rate* (transactions are
released on a fixed schedule regardless of completions, the standard way
to measure latency under offered load rather than under self-throttling).

Per-requestor ordering is preserved with a lock per requestor — the
protocol allows one in-flight query per peer — while different requestors
overlap freely up to the concurrency cap.  A transaction that raises is
*lost*: counted, remembered, and reported, never silently swallowed.
"""

from __future__ import annotations

import asyncio
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.interface import Outcome
from repro.errors import ConfigError
from repro.workloads import (
    FixedRequestorWorkload,
    PooledRequestorWorkload,
    Transaction,
    UniformWorkload,
    Workload,
)

if TYPE_CHECKING:
    from repro.serve.system import ServeSystem

__all__ = ["LoadGenerator", "LoadReport", "build_trace", "WORKLOAD_NAMES"]

#: Workload names accepted by :func:`build_trace` (and the CLI).
WORKLOAD_NAMES: tuple[str, ...] = ("fixed", "pooled", "uniform")


def build_trace(
    workload: str,
    n: int,
    count: int,
    rng: np.random.Generator,
    *,
    requestor: int = 0,
    pool_size: int = 10,
) -> list[Transaction]:
    """Materialize ``count`` transactions from a named workload generator."""
    source: Workload
    if workload == "fixed":
        source = FixedRequestorWorkload(n, rng, requestor=requestor)
    elif workload == "pooled":
        source = PooledRequestorWorkload(n, rng, pool_size=pool_size)
    elif workload == "uniform":
        source = UniformWorkload(n, rng)
    else:
        raise ConfigError(
            f"unknown workload {workload!r} (choose from {', '.join(WORKLOAD_NAMES)})"
        )
    return list(source.generate(count))


@dataclass
class LoadReport:
    """What one load run did, in numbers."""

    offered: int
    completed: int
    lost: int
    wall_ms: float
    concurrency: int
    arrival_rate_tps: float | None
    outcomes: list[Outcome] = field(repr=False)
    errors: list[str] = field(repr=False, default_factory=list)

    @property
    def tx_per_sec(self) -> float:
        if self.wall_ms <= 0.0:
            return 0.0
        return self.completed / (self.wall_ms / 1000.0)


class LoadGenerator:
    """Replay a transaction trace against a running fleet."""

    def __init__(
        self,
        system: "ServeSystem",
        trace: list[Transaction],
        *,
        concurrency: int = 4,
        arrival_rate_tps: float | None = None,
    ) -> None:
        if concurrency < 1:
            raise ConfigError(f"concurrency must be >= 1, got {concurrency}")
        if arrival_rate_tps is not None and arrival_rate_tps <= 0.0:
            raise ConfigError(
                f"arrival rate must be positive, got {arrival_rate_tps}"
            )
        self.system = system
        self.trace = trace
        self.concurrency = concurrency
        self.arrival_rate_tps = arrival_rate_tps

    def run(self) -> LoadReport:
        """Bring the fleet up if needed and replay the whole trace."""
        system = self.system
        if not system.running:
            system.up()
        assert system._loop is not None
        return system._loop.run_until_complete(self.run_async())

    async def run_async(self) -> LoadReport:
        system = self.system
        # Serialized load drains per transaction so message accounting
        # matches the simulator; under concurrency the fleet free-runs.
        system.drain_per_tx = self.concurrency == 1
        semaphore = asyncio.Semaphore(self.concurrency)
        requestor_locks: dict[int, asyncio.Lock] = defaultdict(asyncio.Lock)
        outcomes: list[Outcome] = []
        errors: list[str] = []
        t0 = system.engine.now
        interval_ms = (
            None
            if self.arrival_rate_tps is None
            else 1000.0 / self.arrival_rate_tps
        )

        async def one(tx: Transaction, position: int) -> None:
            if interval_ms is not None:
                release_at = t0 + position * interval_ms
                delay_ms = release_at - system.engine.now
                if delay_ms > 0.0:
                    await asyncio.sleep(delay_ms / 1000.0)
            async with semaphore:
                async with requestor_locks[tx.requestor]:
                    try:
                        outcome = await system.run_transaction_async(
                            tx.requestor, tx.provider
                        )
                    except Exception as exc:
                        system.lost_transactions += 1
                        errors.append(
                            f"tx {tx.index} ({tx.requestor}->{tx.provider}): "
                            f"{type(exc).__name__}: {exc}"
                        )
                    else:
                        outcomes.append(outcome)

        await asyncio.gather(
            *(one(tx, position) for position, tx in enumerate(self.trace))
        )
        # Let stragglers (reports in flight after the last settlement) land
        # so the counter reflects the whole run.
        await system.drain()
        wall_ms = system.engine.now - t0
        return LoadReport(
            offered=len(self.trace),
            completed=len(outcomes),
            lost=len(errors),
            wall_ms=wall_ms,
            concurrency=self.concurrency,
            arrival_rate_tps=self.arrival_rate_tps,
            outcomes=outcomes,
            errors=errors,
        )
