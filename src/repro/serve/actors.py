"""Node actors: one asyncio task per fleet member.

An actor is deliberately thin — an inbox loop that pulls frames off the
transport and feeds them to the network edge, where the registered
protocol handler (the onion router → dispatcher → peer/agent stack) does
the actual work synchronously.  All protocol state mutation therefore
happens inside the single event loop, one frame at a time per node, which
is exactly the actor model's serialization guarantee.

A raised exception (a poisoned frame, a cancelled task) terminates the
loop; the :class:`~repro.serve.supervisor.Supervisor` notices the dead
task and restarts the actor, recovering agent state from its last
checkpoint.  The inbox itself lives in the transport, so frames that
arrive while an actor is down are processed after the restart, not lost.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional

from repro.serve.network import ServeNetwork
from repro.serve.transport import Transport

__all__ = ["NodeActor"]


class NodeActor:
    """Inbox loop for one node; see the module docstring."""

    def __init__(
        self, ip: int, network: ServeNetwork, transport: Transport
    ) -> None:
        self.ip = ip
        self.network = network
        self.transport = transport
        #: Pulsed after every handled frame; waiters (e.g. the query loop
        #: in ServeSystem) clear-then-await it to sleep until progress.
        self.activity = asyncio.Event()
        self.frames_handled = 0
        self.task: Optional[asyncio.Task[None]] = None
        #: Set before a deliberate shutdown so the supervisor's monitor
        #: does not treat the completed task as a crash.
        self.stopping = False
        #: Supervisor hook, called after each handled frame (checkpoints).
        self.on_frame: Optional[Callable[["NodeActor"], None]] = None

    def start(self, loop: asyncio.AbstractEventLoop) -> None:
        """(Re)spawn the inbox task on ``loop``."""
        self.stopping = False
        self.task = loop.create_task(self._run(), name=f"hirep-actor-{self.ip}")

    async def _run(self) -> None:
        while True:
            frame = await self.transport.get(self.ip)
            try:
                self.network.deliver_frame(frame)
            finally:
                # Wake waiters even when handling raised — the crash is
                # progress too (the supervisor reacts to it).
                self.frames_handled += 1
                self.activity.set()
            if self.on_frame is not None:
                self.on_frame(self)

    def crash(self) -> None:
        """Kill the actor task without marking it as a deliberate stop.

        Used by tests and chaos tooling to simulate a process death; the
        supervisor will detect and restart it.
        """
        if self.task is not None:
            self.task.cancel()

    @property
    def alive(self) -> bool:
        return self.task is not None and not self.task.done()
