"""hirep-serve: bring up, load, benchmark, and report on a live fleet.

Subcommands
-----------
``up``
    Build a fleet from the system registry, start every actor, print the
    bring-up summary, and shut down — the smoke test for a config.
``load``
    Replay a workload trace at a chosen concurrency/arrival rate, print
    the SLO report, optionally persist ``slo.json`` (``--out``) and the
    full telemetry bundle (``--telemetry``).  ``--profile`` attaches a
    sampling :class:`~repro.obs.prof.Profiler` to the fleet's telemetry
    plane (``--profile mem`` adds tracemalloc watermarks); with
    ``--telemetry`` the bundle gains ``profile.json`` for
    ``hirep-perf flame``.  Exits non-zero when any transaction is lost.
``bench``
    Run the same trace at several concurrency levels (fresh fleet each)
    and print a throughput table.
``report``
    Re-render a previously written ``slo.json``.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Any, Sequence, cast

import numpy as np

from repro.core.config import HiRepConfig
from repro.core.registry import build_system
from repro.obs.bundle import store_bundle
from repro.serve.load import WORKLOAD_NAMES, LoadGenerator, LoadReport, build_trace
from repro.serve.report import load_slo, render_slo, slo_summary, write_slo
from repro.serve.transport import TRANSPORT_NAMES

__all__ = ["main"]


def _add_fleet_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--peers", type=int, default=64, help="fleet size")
    parser.add_argument("--seed", type=int, default=2006, help="world seed")
    parser.add_argument(
        "--transport",
        choices=TRANSPORT_NAMES,
        default="inproc",
        help="frame fabric between actors",
    )
    parser.add_argument(
        "--relays", type=int, default=None, help="onion relays per circuit"
    )
    parser.add_argument(
        "--agents-queried", type=int, default=None, help="agents asked per query"
    )
    parser.add_argument(
        "--trusted-agents", type=int, default=None, help="trusted-agent list capacity"
    )


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--transactions", type=int, default=500, help="trace length"
    )
    parser.add_argument(
        "--workload",
        choices=WORKLOAD_NAMES,
        default="pooled",
        help="trace generator",
    )
    parser.add_argument(
        "--requestor", type=int, default=0, help="requestor for --workload fixed"
    )
    parser.add_argument(
        "--pool-size", type=int, default=10, help="pool for --workload pooled"
    )


def _config_from(args: argparse.Namespace) -> HiRepConfig:
    overrides: dict[str, Any] = {
        "network_size": args.peers,
        "seed": args.seed,
    }
    if args.relays is not None:
        overrides["onion_relays"] = args.relays
    if args.agents_queried is not None:
        overrides["agents_queried"] = args.agents_queried
    if args.trusted_agents is not None:
        overrides["trusted_agents"] = args.trusted_agents
    return HiRepConfig(**overrides)


def _build_fleet(args: argparse.Namespace) -> Any:
    return build_system("serve", _config_from(args), transport=args.transport)


def _run_load(system: Any, args: argparse.Namespace) -> LoadReport:
    trace = build_trace(
        args.workload,
        args.peers,
        args.transactions,
        np.random.default_rng(args.seed + 1),
        requestor=args.requestor,
        pool_size=args.pool_size,
    )
    generator = LoadGenerator(
        system,
        trace,
        concurrency=args.concurrency,
        arrival_rate_tps=args.rate,
    )
    return generator.run()


def _cmd_up(args: argparse.Namespace) -> int:
    system = _build_fleet(args)
    with system:
        transport = system.transport
        print(
            f"fleet up: {system.network.n} peers, {len(system.agents)} agents, "
            f"transport={transport.name}, "
            f"actors={sum(1 for a in system.supervisor.actors.values() if a.alive)}"
        )
        if transport.name == "tcp":
            ports = sorted(transport.ports.values())
            print(f"tcp loopback ports: {ports[0]}..{ports[-1]} ({len(ports)} sockets)")
    print("fleet down")
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    system = _build_fleet(args)
    profiler = None
    if args.profile:
        from repro.obs.prof import Profiler

        profiler = system.telemetry.set_profiler(Profiler(memory=args.profile == "mem"))
    with system:
        if profiler is not None:
            profiler.start()
        try:
            report = _run_load(system, args)
        finally:
            if profiler is not None:
                profiler.stop()
        summary = slo_summary(system, report)
        print(render_slo(summary))
        if profiler is not None:
            for label, ms in list(profiler.self_times().items())[:5]:
                print(f"self {ms:8.1f}ms  {label}")
        for error in report.errors:
            print(f"lost: {error}")
        if args.out is not None:
            path = write_slo(summary, Path(args.out) / "slo.json")
            print(f"slo report: {path}")
        if args.telemetry is not None:
            key, path = store_bundle(
                system.telemetry,
                args.telemetry,
                meta={
                    "tool": "hirep-serve",
                    "transport": args.transport,
                    "peers": args.peers,
                    "transactions": args.transactions,
                    "concurrency": args.concurrency,
                    "seed": args.seed,
                },
            )
            print(f"telemetry bundle: {path} (key {key[:12]})")
    return 0 if report.lost == 0 else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    print(f"{'concurrency':>11} {'tx/s':>8} {'wall_ms':>9} {'lost':>5}")
    worst = 0
    for concurrency in args.concurrency_list:
        args.concurrency = concurrency
        system = _build_fleet(args)
        with system:
            report = _run_load(system, args)
        print(
            f"{concurrency:>11} {report.tx_per_sec:>8.1f} "
            f"{report.wall_ms:>9.0f} {report.lost:>5}"
        )
        worst = max(worst, report.lost)
    return 0 if worst == 0 else 1


def _cmd_report(args: argparse.Namespace) -> int:
    print(render_slo(load_slo(args.path)))
    return 0


def _parse_concurrency_list(raw: str) -> list[int]:
    try:
        values = [int(part) for part in raw.split(",") if part.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad concurrency list {raw!r}") from exc
    if not values or any(v < 1 for v in values):
        raise argparse.ArgumentTypeError(f"bad concurrency list {raw!r}")
    return values


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hirep-serve", description="hiREP live service plane"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    up = sub.add_parser("up", help="bring a fleet up and down (smoke test)")
    _add_fleet_args(up)
    up.set_defaults(func=_cmd_up)

    load = sub.add_parser("load", help="replay a trace and report SLOs")
    _add_fleet_args(load)
    _add_trace_args(load)
    load.add_argument(
        "--concurrency", type=int, default=4, help="transactions in flight"
    )
    load.add_argument(
        "--rate", type=float, default=None, help="open-loop arrival rate (tx/s)"
    )
    load.add_argument("--out", default=None, help="directory for slo.json")
    load.add_argument(
        "--telemetry", default=None, help="bundle store root for the full record"
    )
    load.add_argument(
        "--profile",
        nargs="?",
        const="1",
        default=None,
        choices=["1", "mem"],
        help="sample a wall-clock profile of the run (mem = +tracemalloc); "
        "lands in the bundle as profile.json when --telemetry is set",
    )
    load.set_defaults(func=_cmd_load)

    bench = sub.add_parser("bench", help="throughput at several concurrencies")
    _add_fleet_args(bench)
    _add_trace_args(bench)
    bench.add_argument(
        "--concurrency-list",
        type=_parse_concurrency_list,
        default=[1, 4, 16],
        help="comma-separated concurrency levels",
    )
    bench.add_argument("--rate", type=float, default=None, help=argparse.SUPPRESS)
    bench.set_defaults(func=_cmd_bench)

    report = sub.add_parser("report", help="re-render a saved slo.json")
    report.add_argument("path", help="path to slo.json")
    report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return cast(int, args.func(args))


if __name__ == "__main__":
    raise SystemExit(main())
