"""SLO reporting: turn a load run's telemetry into the numbers that matter.

The summary dict is the `hirep-serve` contract: transaction counts
(offered/completed/lost), wall-clock latency percentiles (p50/p95/p99 +
mean) per phase — ``transaction`` end-to-end, ``query`` (start to
estimate), ``report`` (settlement + report delivery) — throughput, and
message cost (msgs/tx, frames, bytes).  Percentiles come from the raw
span durations, not histogram buckets, so they are exact for the run.

``write_slo`` persists it as deterministic JSON (sorted keys); the full
event/span/metric record travels separately as a standard
:mod:`repro.obs` bundle.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:
    from repro.serve.load import LoadReport
    from repro.serve.system import ServeSystem

__all__ = ["slo_summary", "render_slo", "write_slo", "load_slo"]

#: Span names summarized per phase, in display order.
_PHASES = ("transaction", "query", "report")


def _latency_stats(durations: list[float]) -> dict[str, float]:
    if not durations:
        return {"count": 0}
    arr = np.asarray(durations, dtype=np.float64)
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }


def slo_summary(system: "ServeSystem", report: "LoadReport") -> dict[str, Any]:
    """Assemble the SLO summary for one completed load run."""
    spans = system.telemetry.spans
    latency = {
        phase: _latency_stats(
            [s.duration_ms for s in spans.spans(phase) if s.end_ms is not None]
        )
        for phase in _PHASES
    }
    completed = report.completed
    total_messages = sum(o.total_messages for o in report.outcomes)
    trust_messages = sum(o.trust_messages for o in report.outcomes)
    return {
        "transport": system.transport.name,
        "fleet": {
            "peers": system.network.n,
            "agents": len(system.agents),
            "seed": system.config.seed,
        },
        "transactions": {
            "offered": report.offered,
            "completed": completed,
            "lost": report.lost,
        },
        "latency_ms": latency,
        "throughput": {
            "tx_per_sec": report.tx_per_sec,
            "wall_ms": report.wall_ms,
            "concurrency": report.concurrency,
            "arrival_rate_tps": report.arrival_rate_tps,
        },
        "traffic": {
            "msgs_per_tx": (total_messages / completed) if completed else 0.0,
            "trust_msgs_per_tx": (trust_messages / completed) if completed else 0.0,
            "frames_posted": system.transport.frames_posted,
            "bytes_posted": system.transport.bytes_posted,
        },
        "supervision": {
            "crashes_detected": system.supervisor.crashes_detected,
            "actor_restarts": system.supervisor.restarts,
        },
    }


def render_slo(summary: dict[str, Any]) -> str:
    """The summary as a small human-readable report."""
    tx = summary["transactions"]
    thr = summary["throughput"]
    traffic = summary["traffic"]
    sup = summary["supervision"]
    lines = [
        f"transport: {summary['transport']}  "
        f"fleet: {summary['fleet']['peers']} peers / "
        f"{summary['fleet']['agents']} agents  seed: {summary['fleet']['seed']}",
        f"transactions: {tx['completed']}/{tx['offered']} completed, "
        f"{tx['lost']} lost",
        f"throughput: {thr['tx_per_sec']:.1f} tx/s over {thr['wall_ms']:.0f} ms "
        f"(concurrency {thr['concurrency']})",
        f"traffic: {traffic['msgs_per_tx']:.1f} msgs/tx "
        f"({traffic['frames_posted']} frames, {traffic['bytes_posted']} bytes)",
        f"supervision: {sup['crashes_detected']} crashes, "
        f"{sup['actor_restarts']} restarts",
        f"{'phase':<12} {'count':>6} {'mean':>8} {'p50':>8} {'p95':>8} "
        f"{'p99':>8} {'max':>8}  (ms)",
    ]
    for phase in _PHASES:
        stats = summary["latency_ms"].get(phase, {"count": 0})
        if not stats.get("count"):
            lines.append(f"{phase:<12} {0:>6}")
            continue
        lines.append(
            f"{phase:<12} {stats['count']:>6} {stats['mean']:>8.2f} "
            f"{stats['p50']:>8.2f} {stats['p95']:>8.2f} {stats['p99']:>8.2f} "
            f"{stats['max']:>8.2f}"
        )
    return "\n".join(lines)


def write_slo(summary: dict[str, Any], path: Path | str) -> Path:
    """Write the summary as deterministic JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return path


def load_slo(path: Path | str) -> dict[str, Any]:
    """Read a summary previously written by :func:`write_slo`."""
    return json.loads(Path(path).read_text())
