"""repro.serve — the live service plane.

The simulator proves the protocol's *math*; this package proves it
*serves*.  Peers and trusted agents become asyncio actors exchanging the
exact ``repro.core.messages`` protocol objects — serialized through the
real codec in :mod:`repro.core.wire` — over pluggable transports (an
in-process asyncio-queue fabric, or TCP loopback sockets).  A
:class:`~repro.serve.supervisor.Supervisor` brings the fleet up from a
registry-built system config, watches the actors, and restarts crashed
ones from state checkpoints; a
:class:`~repro.serve.load.LoadGenerator` replays workload traces at
configurable concurrency and arrival rate while the
:mod:`repro.obs` plane captures wall-clock latency and message-cost
telemetry.  The ``hirep-serve`` CLI fronts all of it.

Because the served stack reuses the whole protocol kernel (peers,
agents, onion router, dispatcher) unchanged — only the network edge and
the clock differ — a serialized in-process run reproduces the
simulator's transaction outcomes for the same seed.  See
``docs/serving.md``.
"""

from __future__ import annotations

from repro.serve.engine import WallEngine
from repro.serve.load import LoadGenerator, LoadReport, build_trace
from repro.serve.network import ServeNetwork
from repro.serve.supervisor import Supervisor
from repro.serve.system import ServeSystem
from repro.serve.transport import (
    Frame,
    InProcessTransport,
    TcpLoopbackTransport,
    Transport,
    make_transport,
)

__all__ = [
    "Frame",
    "InProcessTransport",
    "LoadGenerator",
    "LoadReport",
    "ServeNetwork",
    "ServeSystem",
    "Supervisor",
    "TcpLoopbackTransport",
    "Transport",
    "WallEngine",
    "build_trace",
    "make_transport",
]
