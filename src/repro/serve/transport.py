"""Pluggable transports carrying encoded protocol frames between actors.

A transport moves :class:`Frame` objects — (src, dst, category, sent_at,
encoded payload) — from a synchronous ``post()`` at the network edge to an
awaitable per-node ``get()`` in the destination's actor loop.  Two
implementations:

* :class:`InProcessTransport` — one asyncio queue per node; zero copies,
  the fastest fabric, and the determinism-guard reference.
* :class:`TcpLoopbackTransport` — one real TCP server socket per node on
  127.0.0.1, one shared outbound connection per destination; frames are
  length-prefixed on the stream, so every protocol byte genuinely crosses
  the host's loopback stack.

Both keep posted/delivered counters, so ``in_flight()`` gives an exact
quiescence signal (a frame counts as in flight from ``post`` until an
actor has pulled it from its inbox).
"""

from __future__ import annotations

import abc
import asyncio
import contextlib
import struct
from dataclasses import dataclass
from typing import Sequence

from repro.errors import WireError

__all__ = [
    "Frame",
    "Transport",
    "InProcessTransport",
    "TcpLoopbackTransport",
    "make_transport",
    "TRANSPORT_NAMES",
]


@dataclass(frozen=True)
class Frame:
    """One encoded protocol message in transit between two actors."""

    src: int
    dst: int
    category: str
    sent_at: float
    payload: bytes  # a complete repro.core.wire frame


class Transport(abc.ABC):
    """Frame fabric between actors; see the module docstring."""

    name: str = "abstract"

    def __init__(self) -> None:
        self.frames_posted = 0
        self.bytes_posted = 0
        self.frames_delivered = 0

    @abc.abstractmethod
    async def start(self, node_ids: Sequence[int]) -> None:
        """Bring up per-node endpoints for the given node indices."""

    @abc.abstractmethod
    def post(self, frame: Frame) -> None:
        """Enqueue a frame for delivery (synchronous, never blocks)."""

    @abc.abstractmethod
    async def get(self, ip: int) -> Frame:
        """Await the next inbound frame addressed to node ``ip``."""

    @abc.abstractmethod
    async def stop(self) -> None:
        """Tear down endpoints and in-flight machinery."""

    def in_flight(self) -> int:
        """Frames posted but not yet pulled by a destination actor."""
        return self.frames_posted - self.frames_delivered

    def _count_post(self, frame: Frame) -> None:
        self.frames_posted += 1
        self.bytes_posted += len(frame.payload)


class InProcessTransport(Transport):
    """Asyncio-queue fabric: one unbounded inbox per node, zero copies."""

    name = "inproc"

    def __init__(self) -> None:
        super().__init__()
        self._inboxes: dict[int, asyncio.Queue[Frame]] = {}

    async def start(self, node_ids: Sequence[int]) -> None:
        self._inboxes = {ip: asyncio.Queue() for ip in node_ids}

    def post(self, frame: Frame) -> None:
        inbox = self._inboxes.get(frame.dst)
        if inbox is None:
            raise WireError(f"no inbox for destination node {frame.dst}")
        self._count_post(frame)
        inbox.put_nowait(frame)

    async def get(self, ip: int) -> Frame:
        frame = await self._inboxes[ip].get()
        self.frames_delivered += 1
        return frame

    async def stop(self) -> None:
        self._inboxes = {}


# TCP stream framing: u32 total length | i32 src | i32 dst | f64 sent_at |
# u16 category length | category utf-8 | wire-codec payload.
_TCP_HEAD = struct.Struct(">iidH")


def _tcp_pack(frame: Frame) -> bytes:
    cat = frame.category.encode("utf-8")
    body = _TCP_HEAD.pack(frame.src, frame.dst, frame.sent_at, len(cat))
    body += cat + frame.payload
    return struct.pack(">I", len(body)) + body


def _tcp_unpack(body: bytes) -> Frame:
    src, dst, sent_at, cat_len = _TCP_HEAD.unpack_from(body, 0)
    offset = _TCP_HEAD.size
    category = body[offset : offset + cat_len].decode("utf-8")
    payload = body[offset + cat_len :]
    return Frame(src=src, dst=dst, category=category, sent_at=sent_at, payload=payload)


class TcpLoopbackTransport(Transport):
    """Real sockets on 127.0.0.1: one server per node, one conn per route.

    Every node listens on an ephemeral loopback port.  Outbound frames to a
    destination are drained by one sender task per destination over a
    single shared connection (opened lazily on first use), so the fleet
    needs O(n) sockets, not O(n²).
    """

    name = "tcp"

    def __init__(self) -> None:
        super().__init__()
        self.ports: dict[int, int] = {}
        self._servers: dict[int, asyncio.AbstractServer] = {}
        self._inboxes: dict[int, asyncio.Queue[Frame]] = {}
        self._outboxes: dict[int, asyncio.Queue[Frame]] = {}
        self._senders: dict[int, asyncio.Task[None]] = {}
        self._reader_tasks: set[asyncio.Task[None]] = set()

    async def start(self, node_ids: Sequence[int]) -> None:
        loop = asyncio.get_running_loop()
        for ip in node_ids:
            self._inboxes[ip] = asyncio.Queue()
            self._outboxes[ip] = asyncio.Queue()
            server = await asyncio.start_server(
                self._make_reader(ip), "127.0.0.1", 0
            )
            self._servers[ip] = server
            self.ports[ip] = server.sockets[0].getsockname()[1]
        for ip in node_ids:
            self._senders[ip] = loop.create_task(
                self._sender(ip), name=f"tcp-sender-{ip}"
            )

    def _make_reader(self, ip: int):  # type: ignore[no-untyped-def]
        async def reader(
            stream: asyncio.StreamReader, writer: asyncio.StreamWriter
        ) -> None:
            task = asyncio.current_task()
            if task is not None:
                self._reader_tasks.add(task)
            try:
                while True:
                    head = await stream.readexactly(4)
                    (length,) = struct.unpack(">I", head)
                    body = await stream.readexactly(length)
                    self._inboxes[ip].put_nowait(_tcp_unpack(body))
            except (asyncio.IncompleteReadError, ConnectionResetError):
                pass
            finally:
                if task is not None:
                    self._reader_tasks.discard(task)
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()

        return reader

    async def _sender(self, dst: int) -> None:
        writer: asyncio.StreamWriter | None = None
        try:
            while True:
                frame = await self._outboxes[dst].get()
                if writer is None:
                    _, writer = await asyncio.open_connection(
                        "127.0.0.1", self.ports[dst]
                    )
                writer.write(_tcp_pack(frame))
                await writer.drain()
        except asyncio.CancelledError:
            raise
        finally:
            if writer is not None:
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()

    def post(self, frame: Frame) -> None:
        outbox = self._outboxes.get(frame.dst)
        if outbox is None:
            raise WireError(f"no route to destination node {frame.dst}")
        self._count_post(frame)
        outbox.put_nowait(frame)

    async def get(self, ip: int) -> Frame:
        frame = await self._inboxes[ip].get()
        self.frames_delivered += 1
        return frame

    async def stop(self) -> None:
        for task in self._senders.values():
            task.cancel()
        for task in self._senders.values():
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        # The senders' connections are closed now: readers drain to EOF and
        # exit on their own (cancelling them trips asyncio.streams'
        # connection_made callback on some Python versions).
        readers = list(self._reader_tasks)
        if readers:
            await asyncio.gather(*readers, return_exceptions=True)
        for server in self._servers.values():
            server.close()
            with contextlib.suppress(Exception):
                await server.wait_closed()
        self._servers = {}
        self._senders = {}
        self.ports = {}


#: Names accepted by :func:`make_transport` (and the hirep-serve CLI).
TRANSPORT_NAMES: tuple[str, ...] = ("inproc", "tcp")


def make_transport(name: str) -> Transport:
    """Construct a transport by name (``inproc`` or ``tcp``)."""
    if name == "inproc":
        return InProcessTransport()
    if name == "tcp":
        return TcpLoopbackTransport()
    raise ValueError(
        f"unknown transport {name!r} (choose from {', '.join(TRANSPORT_NAMES)})"
    )
