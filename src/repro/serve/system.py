"""ServeSystem: the hiREP protocol kernel running as a live service.

Construction follows :class:`~repro.core.system.HiRepSystem` draw for
draw — same :class:`~repro.core.world.World` streams, same
:func:`~repro.core.services.build_wiring` — except the network edge is a
:class:`~repro.serve.network.ServeNetwork` posting encoded frames on a
real transport, and the clock is the host's
(:class:`~repro.serve.engine.WallEngine`).  A
:class:`~repro.serve.supervisor.Supervisor` runs one actor per node on a
private asyncio loop.

The transaction cycle mirrors the simulator's exactly (maintenance →
query → settle → metrics); the only structural difference is *how* the
query reaches quiescence: the DES drains an event queue, the service
plane awaits the requestor actor's activity until every outstanding
request is answered (or a wall-clock window closes).  With a serialized
load (one transaction at a time) the two backends make identical RNG
draws, which is what the determinism-guard test pins.

Wall-clock telemetry (transaction/query/report spans, msgs-per-tx,
fleet counters) accumulates on an owned :class:`~repro.obs.plane.
TelemetryPlane`, exportable as a standard bundle.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.core.config import HiRepConfig
from repro.core.interface import Outcome
from repro.core.peer import HiRepPeer, QueryResult
from repro.core.runtime import TransactionRuntime
from repro.core.services import MaintenanceService, build_wiring
from repro.core.system import TRUST_TRAFFIC_CATEGORIES
from repro.core.world import World
from repro.crypto.backend import get_backend
from repro.errors import NoTrustedAgentsError, SimulationError
from repro.net.latency import LatencyModel
from repro.obs.plane import TelemetryPlane
from repro.serve.engine import WallEngine
from repro.serve.network import ServeNetwork
from repro.serve.supervisor import Supervisor
from repro.serve.transport import Transport, make_transport

__all__ = ["ServeSystem"]

#: Message-count buckets for the per-transaction traffic histogram.
_MSGS_PER_TX_BOUNDS = (2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0)


class ServeSystem(TransactionRuntime):
    """A live hiREP fleet: asyncio actors over a real transport."""

    def __init__(
        self,
        config: HiRepConfig | None = None,
        *,
        transport: Transport | str = "inproc",
        latency_model: LatencyModel | None = None,
        telemetry: TelemetryPlane | None = None,
        checkpoint_every: int = 32,
        query_window_ms: float = 5_000.0,
        drain_window_ms: float = 5_000.0,
    ) -> None:
        """Build the fleet (not yet running; see :meth:`up`).

        ``query_window_ms`` bounds how long one query waits for the last
        trust response before finishing with whatever arrived;
        ``drain_window_ms`` bounds the post-settlement wait for transport
        quiescence when draining per transaction.
        """
        config = config or HiRepConfig()
        self.engine = WallEngine()
        self.transport: Transport = (
            make_transport(transport) if isinstance(transport, str) else transport
        )

        def factory(*args: Any, **kwargs: Any) -> ServeNetwork:
            kwargs.pop("bandwidth_profile", None)
            return ServeNetwork(
                *args, engine=self.engine, transport=self.transport, **kwargs
            )

        world = World.from_config(
            config, latency_model, network_factory=factory
        )
        super().__init__(config, world)

        self.backend = get_backend(config.crypto_backend)
        self.wiring = build_wiring(config, world, self.backend)
        self.router = self.wiring.router
        self.dispatcher = self.wiring.dispatcher
        self.peers = self.wiring.peers
        self.agents = self.wiring.agents
        self.maintenance = MaintenanceService(config, world, self.wiring)
        self.supervisor = Supervisor(
            self.wiring,
            self.network,
            self.transport,
            checkpoint_every=checkpoint_every,
        )
        self.telemetry = telemetry if telemetry is not None else TelemetryPlane()
        self.query_window_ms = query_window_ms
        self.drain_window_ms = drain_window_ms
        #: When True (the serialized-load mode) every transaction waits for
        #: transport quiescence after settlement, so per-transaction
        #: message deltas match the simulator's drained accounting.
        self.drain_per_tx = True
        self.lost_transactions = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._bootstrap_lock = asyncio.Lock()
        self._install_taps()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._loop is not None

    def up(self) -> None:
        """Start the fleet: transport, actors, monitor, then bootstrap."""
        if self._loop is not None:
            return
        self._loop = asyncio.new_event_loop()
        self._loop.run_until_complete(self.supervisor.start())
        # Bootstrap consumes rng_workload draws before the first pick_pair,
        # in the same stream order as the simulator's lazy bootstrap.
        if not self.maintenance.bootstrapped:
            self.maintenance.bootstrap()
            self.supervisor.checkpoint_all()

    def down(self) -> None:
        """Stop actors and transport and close the private loop."""
        if self._loop is None:
            return
        self._loop.run_until_complete(self.supervisor.stop())
        self._loop.run_until_complete(self._loop.shutdown_asyncgens())
        self._loop.close()
        self._loop = None

    def __enter__(self) -> "ServeSystem":
        self.up()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.down()

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def run_transaction(
        self, requestor: int | None = None, provider: int | None = None
    ) -> Outcome:
        """Synchronous façade: run one transaction on the private loop."""
        if self._loop is None:
            self.up()
        assert self._loop is not None
        return self._loop.run_until_complete(
            self.run_transaction_async(requestor, provider)
        )

    async def run_transaction_async(
        self, requestor: int | None = None, provider: int | None = None
    ) -> Outcome:
        """One full transaction cycle over the live transport.

        Mirrors :meth:`repro.core.system.HiRepSystem.run_transaction`:
        same pair selection, maintenance, query, settlement, and outcome
        accounting — only delivery is asynchronous.
        """
        if not self.maintenance.bootstrapped:
            # Fleet-wide bootstrap is seconds of synchronous compute; run
            # on the loop it would stall every actor (TNT002), so offload
            # to a worker thread.  The lock serializes concurrent first
            # transactions: one bootstraps, the rest wait and re-check.
            # Safe off-loop: discovery is direct compute + counters, it
            # never posts transport frames.
            async with self._bootstrap_lock:
                if not self.maintenance.bootstrapped:
                    await asyncio.to_thread(self.maintenance.bootstrap)
                    self.supervisor.checkpoint_all()
        req, prov = self.pick_pair(requestor)
        if provider is not None:
            if not 0 <= provider < len(self.peers):
                raise SimulationError(f"provider {provider} does not exist")
            if not self.network.is_online(provider):
                raise SimulationError(f"provider {provider} is offline")
            prov = provider

        self.maintenance.maintain(self.peers[req])

        trust_before = self._trust_traffic()
        total_before = self.counter.total
        index = self.transactions_run
        spans = self.telemetry.spans
        t0 = self.engine.now
        txn = spans.begin(
            "transaction",
            start_ms=t0,
            category="txn",
            index=index,
            requestor=req,
            provider=prov,
        )

        peer = self.peers[req]
        relay_pool = self.network.online_nodes()
        subject = self.peers[prov].node_id
        try:
            peer.start_query(subject, relay_pool)
        except NoTrustedAgentsError:
            result = QueryResult(
                subject=subject,
                estimate=0.5,
                responses=[],
                response_time_ms=float("nan"),
                answered=0,
                asked=0,
            )
        else:
            await self._await_responses(peer)
            result = peer.finish_query()
        t_query = self.engine.now
        self._observe_span(
            spans.emit("query", t0, t_query, category="phase", parent=txn)
        )

        truth = float(self.truth[prov])
        peer.settle_transaction(result, truth, self.network.online_nodes())
        if self.drain_per_tx:
            await self.drain()
        t_end = self.engine.now
        self._observe_span(
            spans.emit("report", t_query, t_end, category="phase", parent=txn)
        )
        spans.finish(txn, t_end)
        self._observe_span(txn)

        err = float(result.estimate) - truth
        outcome = Outcome(
            index=index,
            requestor=req,
            provider=prov,
            estimate=result.estimate,
            truth=truth,
            squared_error=err * err,
            response_time_ms=t_end - t0,
            trust_messages=self._trust_traffic() - trust_before,
            total_messages=self.counter.total - total_before,
            answered=result.answered,
            asked=result.asked,
        )
        self.telemetry.registry.histogram(
            "serve.msgs_per_tx", bounds=_MSGS_PER_TX_BOUNDS
        ).observe(float(outcome.total_messages))
        return self._record(outcome)

    async def _await_responses(self, peer: HiRepPeer) -> None:
        """Sleep until every outstanding request is answered (or window ends)."""
        actor = self.supervisor.actors[peer.ip]
        deadline = self.engine.now + self.query_window_ms
        while peer.awaiting_responses():
            remaining = deadline - self.engine.now
            if remaining <= 0.0:
                break
            actor.activity.clear()
            if not peer.awaiting_responses():  # answered between check and clear
                break
            try:
                await asyncio.wait_for(
                    actor.activity.wait(), timeout=remaining / 1000.0
                )
            except asyncio.TimeoutError:
                break

    async def drain(self) -> bool:
        """Await transport quiescence (no frames posted but undelivered).

        Returns True on quiescence, False if ``drain_window_ms`` elapsed
        first.  Two consecutive idle observations are required so a frame
        mid-handoff between queues cannot fake quiescence.
        """
        deadline = self.engine.now + self.drain_window_ms
        idle = 0
        spins = 0
        while self.engine.now < deadline:
            if self.transport.in_flight() == 0:
                idle += 1
                if idle >= 2:
                    return True
                await asyncio.sleep(0)
            else:
                idle = 0
                spins += 1
                # Yield-only spinning is fine in-process; ease off once
                # frames are clearly in kernel buffers (TCP).
                await asyncio.sleep(0 if spins < 200 else 0.001)
        return False

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def _install_taps(self) -> None:
        tracer = self.telemetry.tracer
        engine = self.engine

        def on_send(msg: Any) -> None:
            tracer.record(
                engine.now,
                msg.category,
                src=msg.src,
                dst=msg.dst,
                bytes=msg.size_bytes,
            )

        self.network.observers.append(on_send)
        self.telemetry.registry.register_collector(self._fleet_metrics)

    def _fleet_metrics(self) -> dict[str, float]:
        counter = self.counter
        out: dict[str, float] = {
            "net.messages.total": float(counter.total),
            "serve.transactions": float(self.transactions_run),
            "serve.lost_transactions": float(self.lost_transactions),
            "serve.actor_restarts": float(self.supervisor.restarts),
            "serve.crashes_detected": float(self.supervisor.crashes_detected),
            "serve.frames_posted": float(self.transport.frames_posted),
            "serve.frames_in_flight": float(self.transport.in_flight()),
            "serve.bytes_posted": float(self.transport.bytes_posted),
            "trust.mse": self.mse.mse(),
        }
        for category in sorted(counter.by_category):
            out[f"net.messages[{category}]"] = float(counter.by_category[category])
        return out

    def _observe_span(self, span: Any) -> None:
        self.telemetry.registry.histogram(f"span_ms[{span.name}]").observe(
            span.duration_ms
        )

    def _trust_traffic(self) -> int:
        by_category = self.counter.by_category
        return sum(by_category.get(c, 0) for c in TRUST_TRAFFIC_CATEGORIES)
