"""Fleet supervision: bring-up, crash detection, restart with recovery.

The supervisor owns one :class:`~repro.serve.actors.NodeActor` per node.
Its monitor coroutine polls for actor tasks that finished without being
asked to stop — a crash — and restarts them.  For nodes hosting a
reputation agent, restart means *state recovery*: the agent's durable
state (public-key list, report log, replay nonces, stats, trust model) is
restored from the most recent checkpoint, then a fresh actor resumes the
same transport inbox, so frames that arrived while the node was down are
processed instead of lost.

Checkpoints are taken at bring-up, after bootstrap, and every
``checkpoint_every`` frames an agent-hosting actor handles — the classic
write-ahead tradeoff in miniature: smaller intervals lose less state on a
crash, cost more copying in steady state.
"""

from __future__ import annotations

import asyncio
import contextlib
import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.agent import ReputationAgent
from repro.serve.actors import NodeActor
from repro.serve.network import ServeNetwork
from repro.serve.transport import Transport

if TYPE_CHECKING:
    from repro.core.services import Wiring

__all__ = ["AgentCheckpoint", "Supervisor"]


@dataclass
class AgentCheckpoint:
    """A copy of one agent's durable state at a point in time."""

    public_key_list: dict = field(repr=False)
    report_log: dict = field(repr=False)
    seen_report_nonces: set = field(repr=False)
    stats: Any = field(repr=False)
    model: Any = field(repr=False)
    frames_handled: int = 0


def _checkpoint_of(agent: ReputationAgent, frames_handled: int) -> AgentCheckpoint:
    return AgentCheckpoint(
        public_key_list=dict(agent.public_key_list),
        report_log={k: list(v) for k, v in agent.report_log.items()},
        seen_report_nonces=set(agent._seen_report_nonces),
        stats=copy.copy(agent.stats),
        model=copy.deepcopy(agent.model),
        frames_handled=frames_handled,
    )


class Supervisor:
    """Start, watch, and heal the actor fleet; see the module docstring."""

    def __init__(
        self,
        wiring: "Wiring",
        network: ServeNetwork,
        transport: Transport,
        *,
        checkpoint_every: int = 32,
        poll_interval_s: float = 0.02,
    ) -> None:
        self.wiring = wiring
        self.network = network
        self.transport = transport
        self.checkpoint_every = max(1, checkpoint_every)
        self.poll_interval_s = poll_interval_s
        self.actors: dict[int, NodeActor] = {}
        self.checkpoints: dict[int, AgentCheckpoint] = {}
        self.crashes_detected = 0
        self.restarts = 0
        #: (ip, reason) tuples, for telemetry and tests.
        self.incidents: list[tuple[int, str]] = []
        self._monitor_task: asyncio.Task[None] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bring up the transport, one actor per node, and the monitor."""
        self._loop = asyncio.get_running_loop()
        node_ids = list(range(self.network.n))
        await self.transport.start(node_ids)
        for ip in node_ids:
            actor = NodeActor(ip, self.network, self.transport)
            if ip in self.wiring.agents:
                actor.on_frame = self._on_agent_frame
            self.actors[ip] = actor
            actor.start(self._loop)
        self.checkpoint_all()
        self._monitor_task = self._loop.create_task(
            self._monitor(), name="hirep-supervisor"
        )

    async def stop(self) -> None:
        """Deliberate shutdown: no restarts, cancel everything, stop transport."""
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._monitor_task
            self._monitor_task = None
        for actor in self.actors.values():
            actor.stopping = True
            if actor.task is not None:
                actor.task.cancel()
        for actor in self.actors.values():
            if actor.task is not None:
                with contextlib.suppress(asyncio.CancelledError, Exception):
                    await actor.task
        await self.transport.stop()

    # -- checkpoints ---------------------------------------------------------

    def checkpoint_agent(self, ip: int) -> None:
        agent = self.wiring.agents.get(ip)
        if agent is None:
            return
        actor = self.actors.get(ip)
        handled = actor.frames_handled if actor is not None else 0
        self.checkpoints[ip] = _checkpoint_of(agent, handled)

    def checkpoint_all(self) -> None:
        for ip in self.wiring.agents:
            self.checkpoint_agent(ip)

    def _on_agent_frame(self, actor: NodeActor) -> None:
        if actor.frames_handled % self.checkpoint_every == 0:
            self.checkpoint_agent(actor.ip)

    def restore_agent(self, ip: int) -> bool:
        """Rebuild the agent at ``ip`` from its last checkpoint.

        The wiring's dispatch closures look the agent up at call time, so
        installing the restored instance in ``wiring.agents`` is all the
        rerouting needed.  Returns False when the node hosts no agent.
        """
        snapshot = self.checkpoints.get(ip)
        crashed = self.wiring.agents.get(ip)
        if snapshot is None or crashed is None:
            return False
        restored = ReputationAgent(
            ip=crashed.ip,
            keys=crashed.keys,
            backend=crashed.backend,
            model=copy.deepcopy(snapshot.model),
            rng=crashed.rng,
            truth_oracle=crashed.truth_oracle,
        )
        restored.public_key_list = dict(snapshot.public_key_list)
        restored.report_log = {k: list(v) for k, v in snapshot.report_log.items()}
        restored._seen_report_nonces = set(snapshot.seen_report_nonces)
        restored.stats = copy.copy(snapshot.stats)
        self.wiring.agents[ip] = restored
        return True

    # -- chaos + monitor -----------------------------------------------------

    def kill(self, ip: int, *, amnesia: bool = True) -> None:
        """Simulate a crash of node ``ip``'s actor.

        With ``amnesia`` (the default) the hosted agent's in-memory state
        is wiped too — the honest model of a process death — so the only
        road back is the supervisor's checkpoint.
        """
        actor = self.actors[ip]
        actor.crash()
        agent = self.wiring.agents.get(ip)
        if amnesia and agent is not None:
            blank = ReputationAgent(
                ip=agent.ip,
                keys=agent.keys,
                backend=agent.backend,
                model=copy.deepcopy(agent.model),
                rng=agent.rng,
                truth_oracle=agent.truth_oracle,
            )
            self.wiring.agents[ip] = blank

    async def _monitor(self) -> None:
        while True:
            await asyncio.sleep(self.poll_interval_s)
            for ip, actor in self.actors.items():
                if actor.stopping or actor.task is None or not actor.task.done():
                    continue
                exc = None
                if not actor.task.cancelled():
                    exc = actor.task.exception()
                reason = type(exc).__name__ if exc is not None else "cancelled"
                self.crashes_detected += 1
                self.incidents.append((ip, reason))
                self.restore_agent(ip)
                assert self._loop is not None
                actor.start(self._loop)
                self.restarts += 1
