"""File catalog: who shares what, and whether their copies are clean.

The paper's motivating deployment is a file-sharing network suffering
pollution (§1, citing the KaZaA measurements).  The catalog assigns each
file a set of replica holders with Zipf-like popularity — popular files
are replicated widely, exactly the regime where a requestor gets many
candidate providers and needs the reputation system to choose.  A copy
served by an untrusted peer (ground truth 0) is polluted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError

__all__ = ["FileCatalog"]


@dataclass
class FileCatalog:
    """Replica placement for ``n_files`` over ``n_peers``."""

    n_peers: int
    n_files: int
    holders: list[list[int]] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        n_peers: int,
        n_files: int,
        rng: np.random.Generator,
        *,
        min_replicas: int = 2,
        max_replicas: int | None = None,
        zipf_s: float = 1.0,
    ) -> "FileCatalog":
        """Zipf-popular replica placement.

        File 0 is the most popular (most replicas); replica counts decay as
        ``rank^-s`` down to ``min_replicas``.
        """
        if n_peers < 2:
            raise ConfigError(f"need at least 2 peers, got {n_peers}")
        if n_files < 1:
            raise ConfigError(f"need at least 1 file, got {n_files}")
        if min_replicas < 1:
            raise ConfigError(f"min_replicas must be >= 1, got {min_replicas}")
        cap = max_replicas if max_replicas is not None else max(min_replicas, n_peers // 4)
        cap = min(cap, n_peers)
        holders: list[list[int]] = []
        ranks = np.arange(1, n_files + 1, dtype=np.float64)
        weights = ranks ** (-zipf_s)
        weights /= weights[0]
        for f in range(n_files):
            count = max(min_replicas, int(round(cap * weights[f])))
            count = min(count, n_peers)
            picked = rng.choice(n_peers, size=count, replace=False)
            holders.append(sorted(int(i) for i in picked))
        return cls(n_peers=n_peers, n_files=n_files, holders=holders)

    def holders_of(self, file_id: int) -> list[int]:
        try:
            return self.holders[file_id]
        except IndexError:
            raise ConfigError(f"unknown file id {file_id}") from None

    def has_file(self, peer: int, file_id: int) -> bool:
        return peer in self.holders[file_id]

    def replica_counts(self) -> np.ndarray:
        return np.asarray([len(h) for h in self.holders], dtype=np.int64)

    def popular_file(self) -> int:
        """The most replicated file (rank 0 under Zipf placement)."""
        return int(np.argmax(self.replica_counts()))
