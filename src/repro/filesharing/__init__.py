"""File-sharing layer: the deployment scenario hiREP exists for (§1, §3.6)."""

from repro.filesharing.catalog import FileCatalog
from repro.filesharing.search import SearchResult, file_search
from repro.filesharing.session import DownloadOutcome, FileSharingSession

__all__ = [
    "FileCatalog",
    "SearchResult",
    "file_search",
    "DownloadOutcome",
    "FileSharingSession",
]
