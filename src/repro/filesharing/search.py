"""Gnutella-style file search over the flooding substrate.

This is Fig. 1's first phase: "a requestor sends out a query request to the
whole system" and collects provider candidates from query hits.  Search
traffic is charged per flood edge plus reverse-path hits — the same
accounting as the voting baseline, because *both systems share this cost*;
hiREP only changes the trust-value phase that follows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.filesharing.catalog import FileCatalog
from repro.net.flooding import flood_bfs
from repro.net.topology import Topology

__all__ = ["SearchResult", "file_search"]


@dataclass
class SearchResult:
    """Candidates found for one query."""

    file_id: int
    origin: int
    candidates: list[int] = field(default_factory=list)
    query_messages: int = 0
    hit_messages: int = 0
    depths: dict[int, int] = field(default_factory=dict)

    @property
    def total_messages(self) -> int:
        return self.query_messages + self.hit_messages

    @property
    def found(self) -> bool:
        return bool(self.candidates)


def file_search(
    topology: Topology,
    origin: int,
    file_id: int,
    ttl: int,
    catalog: FileCatalog,
    *,
    online=None,
) -> SearchResult:
    """Flood a file query; every reached holder returns a query hit."""
    if ttl < 1:
        raise ConfigError(f"ttl must be >= 1, got {ttl}")
    flood = flood_bfs(topology, origin, ttl, online=online)
    result = SearchResult(file_id=file_id, origin=origin, query_messages=flood.messages)
    for node, depth in flood.visited.items():
        if node == origin:
            continue
        if catalog.has_file(node, file_id):
            result.candidates.append(node)
            result.depths[node] = depth
            result.hit_messages += depth  # hit routes back along the path
    result.candidates.sort()
    return result
