"""The full §3.6 transaction: query → candidates → trust check → download.

"The basic query process in a P2P system with hiREP is similar as the
typical query process in other P2P reputation systems … except that the
trust value request will not be broadcast to the whole system but [to the]
requestor's trusted agents.  After receiving the trust values, the
requestor computes the final estimated trust value of the potential file
providers and selects the one with the highest estimated trust value to
download the file."

:class:`FileSharingSession` runs that loop over a live
:class:`~repro.core.system.HiRepSystem` (or any baseline with the same
``run_transaction`` shape) and a :class:`FileCatalog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.filesharing.catalog import FileCatalog
from repro.filesharing.search import SearchResult, file_search

__all__ = ["DownloadOutcome", "FileSharingSession"]


@dataclass
class DownloadOutcome:
    """One complete download attempt."""

    file_id: int
    requestor: int
    provider: int | None
    clean: bool
    candidates: int
    search_messages: int
    trust_messages: int
    estimates: dict[int, float] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return self.provider is not None and self.clean


class FileSharingSession:
    """Drives downloads for one requestor over a reputation system."""

    def __init__(
        self,
        system,
        catalog: FileCatalog,
        requestor: int,
        *,
        max_candidates: int = 5,
    ) -> None:
        """``system`` needs ``topology``, ``config``, ``truth``,
        ``network.is_online`` and ``run_transaction(requestor, provider)``
        — both :class:`HiRepSystem` and the baselines qualify."""
        if max_candidates < 1:
            raise ConfigError(f"max_candidates must be >= 1, got {max_candidates}")
        self.system = system
        self.catalog = catalog
        self.requestor = requestor
        self.max_candidates = max_candidates
        self.downloads: list[DownloadOutcome] = []

    def search(self, file_id: int) -> SearchResult:
        return file_search(
            self.system.topology,
            self.requestor,
            file_id,
            self.system.config.ttl,
            self.catalog,
            online=self.system.network.is_online,
        )

    def download(self, file_id: int) -> DownloadOutcome:
        """Query, check candidate trust values, download from the best."""
        search = self.search(file_id)
        candidates = [c for c in search.candidates if c != self.requestor]
        candidates = candidates[: self.max_candidates]
        if not candidates:
            outcome = DownloadOutcome(
                file_id=file_id,
                requestor=self.requestor,
                provider=None,
                clean=False,
                candidates=0,
                search_messages=search.total_messages,
                trust_messages=0,
            )
            self.downloads.append(outcome)
            return outcome

        estimates: dict[int, float] = {}
        trust_messages = 0
        for provider in candidates:
            tx = self.system.run_transaction(
                requestor=self.requestor, provider=provider
            )
            estimates[provider] = tx.estimate
            trust_messages += getattr(tx, "trust_messages", getattr(tx, "messages", 0))
        best = max(estimates, key=estimates.get)
        outcome = DownloadOutcome(
            file_id=file_id,
            requestor=self.requestor,
            provider=best,
            clean=bool(self.system.truth[best] == 1.0),
            candidates=len(candidates),
            search_messages=search.total_messages,
            trust_messages=trust_messages,
            estimates=estimates,
        )
        self.downloads.append(outcome)
        return outcome

    # -- aggregate statistics ------------------------------------------------

    def clean_rate(self) -> float:
        """Fraction of completed downloads that were clean."""
        done = [d for d in self.downloads if d.provider is not None]
        if not done:
            return float("nan")
        return float(np.mean([d.clean for d in done]))

    def hit_rate(self) -> float:
        """Fraction of queries that found at least one provider."""
        if not self.downloads:
            return float("nan")
        return float(np.mean([d.candidates > 0 for d in self.downloads]))
