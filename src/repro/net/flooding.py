"""TTL-bounded flooding (the Gnutella query model and the pure-voting
baseline's transport).

The paper simulates "the flooding process … by deploying a Breadth First
Search based search operation" (§5.2).  :func:`flood_bfs` mirrors that: a
synchronous BFS that *accounts exactly* like per-edge flooding — every
forwarding of the query along an overlay edge is one message — and records
each visited node's hop depth, from which response latency is derived.

An event-driven variant (:func:`flood_async`) runs the same flood through
the DES engine for integration tests; experiments use the BFS form because
it is ~100× faster and produces identical counts on a static network.

Message accounting (Gnutella semantics): a node that receives the query
with remaining TTL > 0 forwards it to **all neighbours except the one it
came from**; duplicate receptions are real messages and are counted, but
duplicates are not re-forwarded.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigError
from repro.net.messages import Category
from repro.net.network import P2PNetwork
from repro.net.topology import Topology

__all__ = ["FloodResult", "flood_bfs", "flood_async"]


@dataclass
class FloodResult:
    """Outcome of one flood."""

    origin: int
    ttl: int
    visited: dict[int, int] = field(default_factory=dict)  # node -> hop depth
    parents: dict[int, int] = field(default_factory=dict)  # node -> BFS parent
    messages: int = 0

    @property
    def reach(self) -> int:
        """Number of distinct nodes that saw the query (excluding origin)."""
        return len(self.visited) - 1

    def depth_of(self, node: int) -> int:
        return self.visited[node]

    def path_to(self, node: int) -> list[int]:
        """The BFS-tree path origin → node (what a query hit routes back on)."""
        path = [node]
        while path[-1] != self.origin:
            path.append(self.parents[path[-1]])
        path.reverse()
        return path


def flood_bfs(
    topology: Topology,
    origin: int,
    ttl: int,
    *,
    online: Callable[[int], bool] | None = None,
) -> FloodResult:
    """Synchronous TTL flood with exact per-edge message accounting.

    Parameters
    ----------
    topology:
        The overlay graph.
    origin:
        Query source.
    ttl:
        Gnutella-style time-to-live; ``ttl`` hops maximum.  The paper uses
        TTL 7 for deployed Gnutella and 4 in simulation (§5.3).
    online:
        Optional liveness predicate; offline nodes receive (and are charged)
        the message but neither respond nor forward.
    """
    if ttl < 0:
        raise ConfigError(f"ttl must be >= 0, got {ttl}")
    result = FloodResult(origin=origin, ttl=ttl)
    result.visited[origin] = 0
    if ttl == 0:
        return result
    is_online = online if online is not None else (lambda _n: True)
    # queue of (node, depth, came_from)
    queue: deque[tuple[int, int, int]] = deque([(origin, 0, -1)])
    while queue:
        node, depth, came_from = queue.popleft()
        if depth >= ttl:
            continue
        for nbr in topology.neighbors(node):
            if nbr == came_from:
                continue
            result.messages += 1  # the query datagram on this edge
            if not is_online(nbr):
                continue
            if nbr in result.visited:
                continue  # duplicate: charged, not re-forwarded
            result.visited[nbr] = depth + 1
            result.parents[nbr] = node
            queue.append((nbr, depth + 1, node))
    return result


def flood_async(
    network: P2PNetwork,
    origin: int,
    ttl: int,
    on_visit: Callable[[int, int], None] | None = None,
    category: str = Category.FLOOD_QUERY,
) -> FloodResult:
    """Event-driven flood through the DES engine.

    Schedules real :class:`NetMessage` deliveries hop by hop; the network's
    counter is charged per edge exactly as in :func:`flood_bfs`.  Call
    ``network.run()`` afterwards to drain the flood.  ``on_visit(node,
    depth)`` fires at each first delivery.
    """
    if ttl < 0:
        raise ConfigError(f"ttl must be >= 0, got {ttl}")
    result = FloodResult(origin=origin, ttl=ttl)
    result.visited[origin] = 0

    def forward(node: int, depth: int, came_from: int) -> None:
        if depth >= ttl:
            return
        for nbr in network.topology.neighbors(node):
            if nbr == came_from:
                continue
            result.messages += 1
            network.counter.count(category)
            delay = network.latency.between(node, nbr)
            network.engine.schedule_in(
                delay,
                (lambda nb=nbr, d=depth + 1, frm=node: arrive(nb, d, frm)),
                label=category,
            )

    def arrive(node: int, depth: int, came_from: int) -> None:
        if not network.is_online(node):
            return
        if node in result.visited:
            return
        result.visited[node] = depth
        if on_visit is not None:
            on_visit(node, depth)
        forward(node, depth, came_from)

    forward(origin, 0, -1)
    return result
