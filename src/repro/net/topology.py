"""Overlay topology generators.

The paper generates "a P2P network with power law topology using BRITE"
(§5.2).  BRITE's router-level Barabási model is preferential attachment, so
:func:`power_law_topology` (Barabási–Albert) is a faithful substitute — the
evaluation depends only on the degree distribution and the average node
degree, which BA reproduces.  ER random graphs, Watts–Strogatz small worlds
and ring lattices are provided for sensitivity studies.

A topology is an immutable :class:`Topology`: ``n`` nodes with an adjacency
list of sorted int arrays.  All generators guarantee a connected graph
(isolated components are stitched to the giant component with single edges,
a standard BRITE-style post-pass).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "Topology",
    "power_law_topology",
    "random_topology",
    "small_world_topology",
    "ring_lattice",
    "topology_for_degree",
]


@dataclass(frozen=True)
class Topology:
    """An undirected connected overlay graph."""

    n: int
    adjacency: tuple[tuple[int, ...], ...]

    def neighbors(self, node: int) -> tuple[int, ...]:
        return self.adjacency[node]

    def degree(self, node: int) -> int:
        return len(self.adjacency[node])

    def degrees(self) -> np.ndarray:
        return np.asarray([len(a) for a in self.adjacency], dtype=np.int64)

    def average_degree(self) -> float:
        return float(self.degrees().mean())

    def edges(self) -> list[tuple[int, int]]:
        """Each undirected edge once, as (u, v) with u < v."""
        out = []
        for u, nbrs in enumerate(self.adjacency):
            for v in nbrs:
                if u < v:
                    out.append((u, v))
        return out

    def is_connected(self) -> bool:
        if self.n == 0:
            return True
        seen = np.zeros(self.n, dtype=bool)
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v in self.adjacency[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == self.n


def _finalize(n: int, adj: list[set[int]]) -> Topology:
    """Stitch disconnected components together and freeze the adjacency."""
    _connect_components(n, adj)
    return Topology(n=n, adjacency=tuple(tuple(sorted(s)) for s in adj))


def _connect_components(n: int, adj: list[set[int]]) -> None:
    if n == 0:
        return
    seen = [False] * n
    components: list[list[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        comp = [start]
        seen[start] = True
        stack = [start]
        while stack:
            u = stack.pop()
            for v in adj[u]:
                if not seen[v]:
                    seen[v] = True
                    comp.append(v)
                    stack.append(v)
        components.append(comp)
    # Chain every extra component to the first one.
    anchor = components[0][0]
    for comp in components[1:]:
        adj[anchor].add(comp[0])
        adj[comp[0]].add(anchor)


def power_law_topology(
    n: int, avg_degree: float, rng: np.random.Generator
) -> Topology:
    """Barabási–Albert preferential attachment with ⟨k⟩ ≈ ``avg_degree``.

    Each incoming node attaches ``m ≈ avg_degree / 2`` edges to existing
    nodes chosen proportionally to their degree, yielding the power-law
    degree distribution BRITE produces for router-level topologies.
    """
    if n < 2:
        raise ConfigError(f"need at least 2 nodes, got {n}")
    if avg_degree < 1:
        raise ConfigError(f"avg_degree must be >= 1, got {avg_degree}")
    # Fractional attachment: mix m_lo and m_hi edges per new node so odd
    # target degrees (e.g. 3) land between the even BA degrees 2m.
    m_target = avg_degree / 2.0
    m_lo = max(1, int(np.floor(m_target)))
    m_hi = max(1, int(np.ceil(m_target)))
    hi_prob = m_target - m_lo if m_hi > m_lo else 0.0
    if m_hi >= n:
        raise ConfigError(f"avg_degree {avg_degree} too large for {n} nodes")

    adj: list[set[int]] = [set() for _ in range(n)]
    # Seed clique of m_hi + 1 nodes.
    seed = m_hi + 1
    for u in range(seed):
        for v in range(u + 1, seed):
            adj[u].add(v)
            adj[v].add(u)
    # repeated-nodes list: preferential attachment by sampling endpoints.
    repeated: list[int] = []
    for u in range(seed):
        repeated.extend([u] * len(adj[u]))
    for u in range(seed, n):
        m = m_hi if (hi_prob > 0 and rng.random() < hi_prob) else m_lo
        targets: set[int] = set()
        while len(targets) < m:
            pick = repeated[int(rng.integers(0, len(repeated)))]
            if pick != u:
                targets.add(pick)
        for v in targets:
            adj[u].add(v)
            adj[v].add(u)
            repeated.append(u)
            repeated.append(v)
    return _finalize(n, adj)


def random_topology(n: int, avg_degree: float, rng: np.random.Generator) -> Topology:
    """Erdős–Rényi G(n, p) with p chosen for the requested average degree."""
    if n < 2:
        raise ConfigError(f"need at least 2 nodes, got {n}")
    p = min(1.0, avg_degree / (n - 1))
    adj: list[set[int]] = [set() for _ in range(n)]
    # Vectorized upper-triangle coin flips in manageable blocks.
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(iu.size) < p
    for u, v in zip(iu[mask], ju[mask]):
        adj[int(u)].add(int(v))
        adj[int(v)].add(int(u))
    return _finalize(n, adj)


def small_world_topology(
    n: int, avg_degree: float, rng: np.random.Generator, rewire: float = 0.1
) -> Topology:
    """Watts–Strogatz ring rewiring."""
    if not 0 <= rewire <= 1:
        raise ConfigError(f"rewire probability must be in [0,1], got {rewire}")
    k = max(2, int(round(avg_degree / 2)) * 2)  # even neighbour count
    if k >= n:
        raise ConfigError(f"avg_degree {avg_degree} too large for {n} nodes")
    adj: list[set[int]] = [set() for _ in range(n)]
    for u in range(n):
        for off in range(1, k // 2 + 1):
            v = (u + off) % n
            adj[u].add(v)
            adj[v].add(u)
    for u in range(n):
        for off in range(1, k // 2 + 1):
            if rng.random() < rewire:
                v_old = (u + off) % n
                if v_old not in adj[u]:
                    continue
                candidates = [
                    w for w in range(n) if w != u and w not in adj[u]
                ]
                if not candidates:
                    continue
                v_new = candidates[int(rng.integers(0, len(candidates)))]
                adj[u].discard(v_old)
                adj[v_old].discard(u)
                adj[u].add(v_new)
                adj[v_new].add(u)
    return _finalize(n, adj)


def ring_lattice(n: int, k: int = 2) -> Topology:
    """Deterministic ring where every node links to ``k`` nearest on each side."""
    if n < 3:
        raise ConfigError(f"ring needs at least 3 nodes, got {n}")
    adj: list[set[int]] = [set() for _ in range(n)]
    for u in range(n):
        for off in range(1, k + 1):
            v = (u + off) % n
            adj[u].add(v)
            adj[v].add(u)
    return _finalize(n, adj)


def topology_for_degree(
    kind: str, n: int, avg_degree: float, rng: np.random.Generator
) -> Topology:
    """Dispatch by name: ``power_law`` | ``random`` | ``small_world`` | ``ring``."""
    if kind == "power_law":
        return power_law_topology(n, avg_degree, rng)
    if kind == "random":
        return random_topology(n, avg_degree, rng)
    if kind == "small_world":
        return small_world_topology(n, avg_degree, rng)
    if kind == "ring":
        return ring_lattice(n, max(1, int(avg_degree // 2)))
    raise ConfigError(f"unknown topology kind {kind!r}")
