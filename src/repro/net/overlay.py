"""Dynamic Gnutella-style overlay membership.

The experiments run over a static topology snapshot, as the paper's do —
but the system hiREP targets is a *living* Gnutella overlay where peers
join through a bootstrap node, discover neighbours with ping/pong, and
repair their neighbour sets when peers vanish.  :class:`DynamicOverlay`
implements that membership layer (Gnutella 0.6 semantics, the spec the
paper cites for its TTL default):

* **join** — the newcomer sends a Ping through a bootstrap node; every
  node reached within the ping TTL answers with a Pong carrying its
  address; the newcomer opens connections to up to ``target_degree`` of
  the candidates.
* **leave** — connections drop; counterparties notice.
* **repair** — nodes below ``min_degree`` re-ping to top up.

Snapshots (:meth:`as_topology`) feed the same flooding/discovery code the
experiments use, so churn studies can rewire mid-run.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ConfigError, UnknownNodeError
from repro.net.topology import Topology
from repro.sim.metrics import MessageCounter

__all__ = ["DynamicOverlay"]

PING = "gnutella_ping"
PONG = "gnutella_pong"


class DynamicOverlay:
    """Mutable unstructured overlay with Gnutella join/leave/repair."""

    def __init__(
        self,
        *,
        target_degree: int = 4,
        min_degree: int = 2,
        max_degree: int = 12,
        ping_ttl: int = 3,
        counter: MessageCounter | None = None,
    ) -> None:
        if not 1 <= min_degree <= target_degree <= max_degree:
            raise ConfigError(
                f"need 1 <= min {min_degree} <= target {target_degree} <= max {max_degree}"
            )
        if ping_ttl < 1:
            raise ConfigError(f"ping_ttl must be >= 1, got {ping_ttl}")
        self.target_degree = target_degree
        self.min_degree = min_degree
        self.max_degree = max_degree
        self.ping_ttl = ping_ttl
        self.counter = counter or MessageCounter()
        self._adj: dict[int, set[int]] = {}

    # -- membership queries ---------------------------------------------------

    def __contains__(self, node: int) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def members(self) -> list[int]:
        return sorted(self._adj)

    def neighbors(self, node: int) -> set[int]:
        try:
            return set(self._adj[node])
        except KeyError:
            raise UnknownNodeError(node) from None

    def degree(self, node: int) -> int:
        return len(self._adj.get(node, ()))

    # -- edges -----------------------------------------------------------------

    def _connect(self, a: int, b: int) -> bool:
        if a == b or b in self._adj[a]:
            return False
        if len(self._adj[a]) >= self.max_degree or len(self._adj[b]) >= self.max_degree:
            return False
        self._adj[a].add(b)
        self._adj[b].add(a)
        return True

    def _disconnect(self, a: int, b: int) -> None:
        self._adj.get(a, set()).discard(b)
        self._adj.get(b, set()).discard(a)

    # -- ping/pong discovery -----------------------------------------------------

    def ping_sweep(self, origin: int) -> list[int]:
        """Flood a Ping from ``origin``; return ponging nodes by proximity.

        Charges one ``gnutella_ping`` message per edge traversal and one
        ``gnutella_pong`` per responder per hop back, exactly like the
        query accounting elsewhere.
        """
        if origin not in self._adj:
            raise UnknownNodeError(origin)
        seen = {origin: 0}
        queue: deque[tuple[int, int, int]] = deque([(origin, 0, -1)])
        order: list[int] = []
        while queue:
            node, depth, came_from = queue.popleft()
            if depth >= self.ping_ttl:
                continue
            for nbr in self._adj[node]:
                if nbr == came_from:
                    continue
                self.counter.count(PING)
                if nbr in seen:
                    continue
                seen[nbr] = depth + 1
                order.append(nbr)
                self.counter.count(PONG, depth + 1)  # pong routes back
                queue.append((nbr, depth + 1, node))
        return order

    # -- lifecycle ------------------------------------------------------------

    def seed(self, nodes: list[int]) -> None:
        """Install founding members as a connected ring (no ping traffic)."""
        if len(nodes) < 2:
            raise ConfigError("need at least two founding members")
        for node in nodes:
            self._adj.setdefault(node, set())
        for a, b in zip(nodes, nodes[1:] + nodes[:1]):
            self._connect(a, b)

    def join(self, node: int, bootstrap: int, rng: np.random.Generator) -> int:
        """Join via ``bootstrap``; returns how many connections were made."""
        if bootstrap not in self._adj:
            raise UnknownNodeError(bootstrap)
        if node in self._adj:
            raise ConfigError(f"node {node} is already a member")
        candidates = [bootstrap] + self.ping_sweep(bootstrap)
        self._adj[node] = set()
        order = np.arange(len(candidates))
        rng.shuffle(order)
        made = 0
        for i in order:
            if made >= self.target_degree:
                break
            if self._connect(node, candidates[int(i)]):
                self.counter.count("gnutella_connect")
                made += 1
        if made == 0:
            # Every pinged host was saturated: rather than strand the
            # newcomer, the least-loaded candidate drops one link to a
            # well-connected neighbour and accepts (connection churn, the
            # way saturated Gnutella hosts rotate slots).
            host = min(candidates, key=lambda c: len(self._adj[c]))
            droppable = [
                n for n in self._adj[host] if len(self._adj[n]) > self.min_degree
            ]
            if droppable:
                victim = max(droppable, key=lambda n: len(self._adj[n]))
                self._disconnect(host, victim)
            if self._connect(node, host):
                self.counter.count("gnutella_connect")
                made = 1
        return made

    def leave(self, node: int) -> list[int]:
        """Remove a member; returns its orphaned ex-neighbours."""
        nbrs = self._adj.pop(node, None)
        if nbrs is None:
            raise UnknownNodeError(node)
        for nbr in nbrs:
            self._adj[nbr].discard(node)
        return sorted(nbrs)

    def _components(self) -> list[list[int]]:
        seen: set[int] = set()
        components: list[list[int]] = []
        for start in self._adj:
            if start in seen:
                continue
            comp = [start]
            seen.add(start)
            stack = [start]
            while stack:
                node = stack.pop()
                for nbr in self._adj[node]:
                    if nbr not in seen:
                        seen.add(nbr)
                        comp.append(nbr)
                        stack.append(nbr)
            components.append(comp)
        return components

    def repair(self, rng: np.random.Generator) -> int:
        """Top up under-connected members and re-bridge partitions.

        Degree top-up alone cannot heal a partition where every node kept
        ``min_degree`` neighbours inside its own island; the second phase
        models the host-cache reconnect real Gnutella clients perform —
        each stray component links back to the largest one (with an edge
        swap if the chosen hosts are saturated).  Returns edges added.
        """
        added = 0
        added += self._bridge_partitions(rng)
        for node in list(self._adj):
            while self.degree(node) < self.min_degree and len(self._adj) > 1:
                candidates = self.ping_sweep(node)
                if not candidates:
                    # Partitioned: fall back to the host cache (a handful
                    # of random members, like a bootstrap server re-contact).
                    others = [m for m in self._adj if m != node and m not in self._adj[node]]
                    if not others:
                        break
                    idx = rng.permutation(len(others))[:10]
                    candidates = [others[int(i)] for i in idx]
                    # Prefer hosts with spare slots.
                    candidates.sort(key=lambda c: len(self._adj[c]))
                fresh = [c for c in candidates if c not in self._adj[node]]
                connected = False
                for candidate in fresh:
                    if self._connect(node, candidate):
                        self.counter.count("gnutella_connect")
                        added += 1
                        connected = True
                        break
                if not connected:
                    break  # every reachable host saturated or adjacent
        return added

    def _bridge_partitions(self, rng: np.random.Generator) -> int:
        """Link every stray component to the largest one; returns edges."""
        components = self._components()
        if len(components) <= 1:
            return 0
        components.sort(key=len, reverse=True)
        main = components[0]
        added = 0
        for stray in components[1:]:
            a = min(stray, key=lambda n: len(self._adj[n]))
            b = min(main, key=lambda n: len(self._adj[n]))
            if not self._connect(a, b):
                # Make room on the saturated side(s) by dropping one link
                # to a well-connected neighbour, then retry.
                for endpoint in (a, b):
                    if len(self._adj[endpoint]) >= self.max_degree:
                        droppable = [
                            n
                            for n in self._adj[endpoint]
                            if len(self._adj[n]) > self.min_degree
                        ]
                        if droppable:
                            victim = max(droppable, key=lambda n: len(self._adj[n]))
                            self._disconnect(endpoint, victim)
                if not self._connect(a, b):
                    continue
            self.counter.count("gnutella_connect")
            added += 1
        return added

    # -- snapshots ----------------------------------------------------------------

    def as_topology(self) -> Topology:
        """Immutable snapshot with dense 0..n-1 ids, for the flood/search code.

        Returns the topology plus nothing else; use :meth:`index_map` when
        you need to translate overlay ids to snapshot indices.
        """
        members = self.members()
        index = {m: i for i, m in enumerate(members)}
        adjacency = tuple(
            tuple(sorted(index[n] for n in self._adj[m])) for m in members
        )
        return Topology(n=len(members), adjacency=adjacency)

    def index_map(self) -> dict[int, int]:
        """Overlay node id → snapshot index (matching :meth:`as_topology`)."""
        return {m: i for i, m in enumerate(self.members())}

    def is_connected(self) -> bool:
        if not self._adj:
            return True
        start = next(iter(self._adj))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nbr in self._adj[node]:
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        return len(seen) == len(self._adj)
