"""Node churn (join/leave) model.

hiREP's backup-agent cache and list-maintenance logic (§3.4.3) exist to
tolerate churn — trusted agents that go offline with positive accuracy are
parked in the backup cache and probed again later.  :class:`ChurnModel`
drives that behaviour in experiments: between transactions it flips each
online node offline with probability ``leave_prob`` and each offline node
back online with probability ``rejoin_prob`` (an on/off Markov process whose
stationary online fraction is ``rejoin / (leave + rejoin)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import ConfigError
from repro.net.network import P2PNetwork

__all__ = ["ChurnModel", "ChurnStats"]


@dataclass
class ChurnStats:
    """Cumulative churn bookkeeping."""

    departures: int = 0
    rejoins: int = 0


class ChurnModel:
    """Two-state Markov churn applied across a network.

    Parameters
    ----------
    leave_prob:
        Per-step probability an online node goes offline.
    rejoin_prob:
        Per-step probability an offline node comes back.
    protected:
        Node indices that never churn (e.g. the node under test).
    """

    def __init__(
        self,
        leave_prob: float,
        rejoin_prob: float = 0.5,
        protected: set[int] | None = None,
    ) -> None:
        if not 0 <= leave_prob <= 1:
            raise ConfigError(f"leave_prob must be in [0,1], got {leave_prob}")
        if not 0 <= rejoin_prob <= 1:
            raise ConfigError(f"rejoin_prob must be in [0,1], got {rejoin_prob}")
        self.leave_prob = leave_prob
        self.rejoin_prob = rejoin_prob
        self.protected = protected or set()
        self.stats = ChurnStats()

    def step(
        self,
        network: P2PNetwork,
        rng: np.random.Generator,
        extra_protected: Iterable[int] = (),
    ) -> None:
        """Apply one churn round to every unprotected node.

        ``extra_protected`` shields additional nodes for *this step only*
        (e.g. the requestor of the transaction about to run) without
        growing the permanent :attr:`protected` set.
        """
        if self.leave_prob == 0 and self.rejoin_prob == 0:
            return
        extra = set(extra_protected)
        draws = rng.random(network.n)
        bulk = getattr(network, "apply_churn", None)
        if bulk is not None:
            # Array-backed networks flip the whole liveness mask in one
            # vectorized pass over the same draw vector — identical
            # trajectories to the per-node loop below.
            departures, rejoins = bulk(
                draws, self.leave_prob, self.rejoin_prob, self.protected | extra
            )
            self.stats.departures += departures
            self.stats.rejoins += rejoins
            return
        for node in network.nodes:
            idx = node.node_index
            if idx in self.protected or idx in extra:
                continue
            if node.online:
                if draws[idx] < self.leave_prob:
                    # Route through set_online so the departure also clears
                    # the node's access-link FIFO horizon.
                    network.set_online(idx, False)
                    self.stats.departures += 1
            else:
                if draws[idx] < self.rejoin_prob:
                    network.set_online(idx, True)
                    self.stats.rejoins += 1

    def expected_online_fraction(self) -> float:
        """Stationary fraction of nodes online under this model."""
        total = self.leave_prob + self.rejoin_prob
        if total == 0:
            return 1.0
        return self.rejoin_prob / total
