"""The simulated P2P network.

:class:`P2PNetwork` binds together a topology, per-node state, a latency
map, a message counter, and the discrete-event engine.  It offers two
delivery primitives:

* :meth:`send` — direct IP unicast between *any* two online nodes (the
  underlying Internet; onion relays and agents are addressed this way);
* :meth:`send_overlay` — unicast restricted to overlay neighbours (what
  flooding uses).

Upper layers register a per-node handler with :meth:`register_handler`; the
network schedules ``handler(message)`` after the sampled hop latency *plus*
the serialization time of the message on the destination's access link.
Access links are modelled as FIFO queues: back-to-back messages to the same
node queue behind each other, which is what makes flooding-based polling
slow in practice (hundreds of vote responses funnel into one downlink) and
is the congestion effect hiREP's O(C) design avoids.  Set
``model_transmission=False`` to disable and get pure propagation delay.

Messages to offline nodes are counted (the sender spent the traffic) but
silently dropped, matching how UDP-style P2P deployments behave.

An optional :class:`~repro.net.faults.FaultPlane` (``network.faults``)
intercepts every send: injected drops still pay the counter (the sender
spent the bandwidth) but never schedule a delivery, and injected latency
spikes are added before the FIFO serialization step.  Every intervention
is announced to ``network.fault_observers`` (``("drop"|"delay", msg,
extra_ms)``), which is how injected failures appear on the same telemetry
timeline as deliveries (see :func:`repro.sim.trace.tap_network` and
:mod:`repro.obs`).  With no plane installed the send path is
byte-for-byte the reliable one.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import NetworkError, NotConnectedError, UnknownNodeError
from repro.net.latency import LatencyMap, LatencyModel, UniformLatency
from repro.net.messages import Category, NetMessage
from repro.net.node import (
    BandwidthProfile,
    DEFAULT_BANDWIDTH_PROFILE,
    NetNode,
    assign_bandwidths,
)
from repro.net.topology import Topology
from repro.sim.engine import SimEngine
from repro.sim.metrics import MessageCounter

__all__ = ["P2PNetwork"]

Handler = Callable[[NetMessage], None]

#: Fault wiretap: (kind, message, extra_latency_ms); kind is "drop"/"delay".
FaultObserver = Callable[[str, NetMessage, float], None]


class P2PNetwork:
    """Simulated unstructured P2P network over a fixed topology."""

    def __init__(
        self,
        topology: Topology,
        rng: np.random.Generator,
        *,
        engine: SimEngine | None = None,
        latency_model: LatencyModel | None = None,
        bandwidth_profile: BandwidthProfile = DEFAULT_BANDWIDTH_PROFILE,
        model_transmission: bool = True,
    ) -> None:
        self.topology = topology
        self.engine = engine if engine is not None else SimEngine()
        self.rng = rng
        self.latency = LatencyMap(latency_model or UniformLatency(), rng)
        self.counter = MessageCounter()
        self.model_transmission = model_transmission
        #: Optional fault-injection plane (see repro.net.faults); installed
        #: via FaultPlane.install(network).  None = perfectly reliable.
        self.faults = None
        self._link_free_at: dict[int, float] = {}
        #: Passive wiretaps: called with every NetMessage at send time.
        #: Used by the §4.2.4 traffic-analysis adversary — observers see
        #: (src, dst, category, size), never payload plaintext.
        self.observers: list[Handler] = []
        #: Fault-plane wiretaps: called as ``(kind, msg, extra_ms)`` with
        #: kind ``"drop"`` (message never delivered; extra_ms 0) or
        #: ``"delay"`` (latency spike of extra_ms injected).  Consulted
        #: only when a fault plane is installed, so the reliable send path
        #: pays nothing for them.
        self.fault_observers: list[FaultObserver] = []
        bandwidths = assign_bandwidths(topology.n, rng, bandwidth_profile)
        self.nodes: list[NetNode] = [
            NetNode(
                node_index=i,
                bandwidth_kbps=float(bandwidths[i]),
                neighbors=topology.neighbors(i),
            )
            for i in range(topology.n)
        ]
        self._handlers: dict[int, Handler] = {}

    # -- introspection -------------------------------------------------------

    @property
    def n(self) -> int:
        return self.topology.n

    def node(self, index: int) -> NetNode:
        try:
            return self.nodes[index]
        except IndexError:
            raise UnknownNodeError(index) from None

    def online_nodes(self) -> list[int]:
        return [n.node_index for n in self.nodes if n.online]

    def agent_capable_nodes(self) -> list[int]:
        """Indices of online nodes clearing the 64 kbps agent cutoff."""
        return [n.node_index for n in self.nodes if n.online and n.can_be_agent]

    # -- liveness ------------------------------------------------------------

    def set_online(self, index: int, online: bool) -> None:
        node = self.node(index)
        node.online = online
        if not online:
            # A departing node abandons its access link: in-flight deliveries
            # are dropped on arrival, so the FIFO horizon they reserved must
            # not outlive the session — otherwise a rejoining node queues new
            # traffic behind phantom serialization of messages it never got.
            self._link_free_at.pop(index, None)

    def is_online(self, index: int) -> bool:
        return self.node(index).online

    # -- handlers ------------------------------------------------------------

    def register_handler(self, index: int, handler: Handler) -> None:
        self.node(index)  # validates the index
        self._handlers[index] = handler

    # -- delivery ------------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        *,
        category: str = Category.CONTROL,
        count: bool = True,
        size_bytes: int | None = None,
    ) -> NetMessage:
        """Direct IP unicast; returns the in-flight message envelope.

        The message is charged to the counter whether or not the destination
        is online — the sender spent the bandwidth either way.  Delivery time
        is propagation latency plus FIFO serialization on the destination's
        access link (see module docstring).
        """
        src_node = self.node(src)
        dst_node = self.node(dst)
        if not src_node.online:
            raise NetworkError(f"node {src} is offline and cannot send")
        msg = NetMessage(
            src=src,
            dst=dst,
            payload=payload,
            category=category,
            sent_at=self.engine.now,
        )
        if size_bytes is not None:
            msg.size_bytes = size_bytes
        if count:
            self.counter.count(category)
        for observer in self.observers:
            observer(msg)
        extra_latency = 0.0
        if self.faults is not None:
            verdict = self.faults.on_send(msg, self.engine.now)
            if verdict.drop:
                # Injected loss: cost charged above, no delivery scheduled.
                for fault_observer in self.fault_observers:
                    fault_observer("drop", msg, 0.0)
                return msg
            extra_latency = verdict.extra_latency_ms
            if extra_latency > 0.0:
                for fault_observer in self.fault_observers:
                    fault_observer("delay", msg, extra_latency)
        arrival = self.engine.now + self.latency.between(src, dst) + extra_latency
        if self.model_transmission:
            transmit = self.transmission_ms(dst_node.bandwidth_kbps, msg.size_bytes)
            if dst_node.online:
                start = max(arrival, self._link_free_at.get(dst, 0.0))
                done = start + transmit
                self._link_free_at[dst] = done
            else:
                # Offline destination: the message dies in the network and is
                # dropped on arrival, so it must not reserve serialization
                # time on the (absent) access link — otherwise the node
                # rejoins queued behind messages it never received.
                done = arrival + transmit
        else:
            done = arrival
        self.engine.schedule(done, lambda: self._deliver(msg), label=category)
        return msg

    @staticmethod
    def transmission_ms(bandwidth_kbps: float, size_bytes: int) -> float:
        """Serialization time of ``size_bytes`` on a ``bandwidth_kbps`` link."""
        return (size_bytes * 8.0) / bandwidth_kbps  # bits / (kbit/s) = ms

    def send_overlay(
        self,
        src: int,
        dst: int,
        payload: Any,
        *,
        category: str = Category.FLOOD_QUERY,
        count: bool = True,
    ) -> NetMessage:
        """Unicast restricted to overlay neighbours."""
        if dst not in self.topology.neighbors(src):
            raise NotConnectedError(f"{dst} is not an overlay neighbour of {src}")
        return self.send(src, dst, payload, category=category, count=count)

    def _deliver(self, msg: NetMessage) -> None:
        node = self.nodes[msg.dst]
        if not node.online:
            return  # dropped on the floor, cost already charged
        handler = self._handlers.get(msg.dst)
        if handler is not None:
            handler(msg)

    # -- convenience ---------------------------------------------------------

    def path_latency(self, path: list[int]) -> float:
        """Sum of one-way hop latencies along an explicit node path."""
        return float(
            sum(self.latency.between(u, v) for u, v in zip(path, path[1:]))
        )

    def run(self, **kwargs: Any) -> int:
        """Drain the event queue (delegates to the engine)."""
        return self.engine.run(**kwargs)
