"""Unstructured P2P network substrate."""

from repro.net.churn import ChurnModel, ChurnStats
from repro.net.faults import (
    Bisection,
    CrashSchedule,
    CrashWindow,
    FaultModel,
    FaultPlane,
    FaultStats,
    FaultVerdict,
    LatencySpike,
    LinkLoss,
    MessageLoss,
)
from repro.net.flooding import FloodResult, flood_async, flood_bfs
from repro.net.latency import (
    ConstantLatency,
    LatencyMap,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.net.messages import Category, NetMessage
from repro.net.network import P2PNetwork
from repro.net.overlay import DynamicOverlay
from repro.net.node import (
    AGENT_BANDWIDTH_CUTOFF_KBPS,
    BandwidthProfile,
    DEFAULT_BANDWIDTH_PROFILE,
    NetNode,
    assign_bandwidths,
)
from repro.net.topology import (
    Topology,
    power_law_topology,
    random_topology,
    ring_lattice,
    small_world_topology,
    topology_for_degree,
)

__all__ = [
    "DynamicOverlay",
    "ChurnModel",
    "ChurnStats",
    "Bisection",
    "CrashSchedule",
    "CrashWindow",
    "FaultModel",
    "FaultPlane",
    "FaultStats",
    "FaultVerdict",
    "LatencySpike",
    "LinkLoss",
    "MessageLoss",
    "FloodResult",
    "flood_async",
    "flood_bfs",
    "ConstantLatency",
    "LatencyMap",
    "LatencyModel",
    "LogNormalLatency",
    "UniformLatency",
    "Category",
    "NetMessage",
    "P2PNetwork",
    "AGENT_BANDWIDTH_CUTOFF_KBPS",
    "BandwidthProfile",
    "DEFAULT_BANDWIDTH_PROFILE",
    "NetNode",
    "assign_bandwidths",
    "Topology",
    "power_law_topology",
    "random_topology",
    "ring_lattice",
    "small_world_topology",
    "topology_for_degree",
]
