"""Composable, seeded fault injection for the simulated network.

The paper's resilience story (§3.4.3 backup cache, §4.2 DoS recovery)
assumes peers that *notice* failures — yet a perfectly reliable
:class:`~repro.net.network.P2PNetwork` never exercises that machinery.
This module supplies the missing failure model: a :class:`FaultPlane`
installed on a network intercepts every :meth:`~repro.net.network.P2PNetwork.send`
and lets a stack of :class:`FaultModel` instances drop the message, delay
it, or (via scheduled crash windows) take whole nodes down and bring them
back.  Everything a model does is accounted in :class:`FaultStats`, the
fault-side twin of :class:`~repro.sim.metrics.MessageCounter`.

Determinism contract:

* the plane owns its **own** ``numpy`` generator seeded at construction —
  installing faults never perturbs the topology/key/workload streams, so a
  run with faults disabled is bit-identical to one where this module was
  never imported;
* for a fixed seed, topology and workload, every drop/spike/crash decision
  is reproducible, hence ``FaultStats`` totals are too.

Models compose: the plane asks each model in order; the first drop wins
(later models never see the message), extra latencies add up.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.net.messages import NetMessage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import P2PNetwork

__all__ = [
    "FaultStats",
    "FaultVerdict",
    "FaultModel",
    "MessageLoss",
    "LinkLoss",
    "LatencySpike",
    "CrashSchedule",
    "CrashWindow",
    "Bisection",
    "FaultPlane",
    "staggered_crash_windows",
]


@dataclass
class FaultStats:
    """Cumulative accounting of everything the fault plane injected."""

    messages_seen: int = 0
    drops: int = 0
    drops_by_category: Counter = field(default_factory=Counter)
    drops_by_model: Counter = field(default_factory=Counter)
    latency_spikes: int = 0
    spike_ms_total: float = 0.0
    crashes: int = 0
    recoveries: int = 0

    def record_drop(self, model: str, category: str) -> None:
        self.drops += 1
        self.drops_by_category[category] += 1
        self.drops_by_model[model] += 1

    def record_spike(self, extra_ms: float) -> None:
        self.latency_spikes += 1
        self.spike_ms_total += extra_ms

    def as_dict(self) -> dict[str, float]:
        """Flat summary (stable keys) for experiment exports."""
        out: dict[str, float] = {
            "messages_seen": self.messages_seen,
            "drops": self.drops,
            "latency_spikes": self.latency_spikes,
            "spike_ms_total": self.spike_ms_total,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
        }
        for cat in sorted(self.drops_by_category):
            out[f"drops[{cat}]"] = self.drops_by_category[cat]
        for model in sorted(self.drops_by_model):
            out[f"drops<{model}>"] = self.drops_by_model[model]
        return out


@dataclass(frozen=True)
class FaultVerdict:
    """One model's decision about one in-flight message."""

    drop: bool = False
    extra_latency_ms: float = 0.0


#: Shared "no fault" verdict (immutable, so safe to reuse).
FaultVerdict.PASS = FaultVerdict()  # type: ignore[attr-defined]


class FaultModel:
    """Base class: inspect one message at send time, return a verdict.

    Subclasses may also override :meth:`install` to schedule time-driven
    behaviour (crashes) on the engine when the plane is attached.
    """

    #: Name used in ``FaultStats.drops_by_model`` buckets.
    name: str = "fault"

    def on_send(
        self,
        msg: NetMessage,
        now: float,
        rng: np.random.Generator,
        stats: FaultStats,
    ) -> FaultVerdict:
        return FaultVerdict.PASS

    def install(self, network: "P2PNetwork", stats: FaultStats) -> None:
        """Hook called once when the plane is installed on a network."""


def _check_prob(name: str, p: float) -> float:
    if not 0.0 <= p <= 1.0:
        raise ConfigError(f"{name} must be in [0,1], got {p}")
    return float(p)


class MessageLoss(FaultModel):
    """Uniform (or per-category) Bernoulli message loss.

    Parameters
    ----------
    prob:
        Loss probability applied to every message, or — when ``category``
        is given — only to messages of that accounting category.
    category:
        Optional :class:`~repro.net.messages.Category` constant to scope
        the loss to (e.g. only ``trust_response`` traffic).
    """

    name = "message_loss"

    def __init__(self, prob: float, category: str | None = None) -> None:
        self.prob = _check_prob("prob", prob)
        self.category = category

    def on_send(self, msg, now, rng, stats):
        if self.category is not None and msg.category != self.category:
            return FaultVerdict.PASS
        if self.prob > 0.0 and rng.random() < self.prob:
            return FaultVerdict(drop=True)
        return FaultVerdict.PASS


class LinkLoss(FaultModel):
    """Per-link Bernoulli loss: a dict of ``(src, dst) -> probability``.

    Links are directed; pass both orientations for a symmetric lossy link.
    ``default`` applies to every link not listed explicitly.
    """

    name = "link_loss"

    def __init__(
        self,
        links: dict[tuple[int, int], float] | None = None,
        *,
        default: float = 0.0,
    ) -> None:
        self.default = _check_prob("default", default)
        self.links = {
            (int(s), int(d)): _check_prob(f"links[{s},{d}]", p)
            for (s, d), p in (links or {}).items()
        }

    def on_send(self, msg, now, rng, stats):
        p = self.links.get((msg.src, msg.dst), self.default)
        if p > 0.0 and rng.random() < p:
            return FaultVerdict(drop=True)
        return FaultVerdict.PASS


class LatencySpike(FaultModel):
    """Occasional latency spikes: with ``prob``, add ``spike_ms`` of delay.

    ``jitter_ms`` adds a uniform [0, jitter_ms) component on top so spikes
    do not all land on the exact same offset.
    """

    name = "latency_spike"

    def __init__(self, prob: float, spike_ms: float, jitter_ms: float = 0.0) -> None:
        self.prob = _check_prob("prob", prob)
        if spike_ms < 0 or jitter_ms < 0:
            raise ConfigError(
                f"spike_ms/jitter_ms must be >= 0, got {spike_ms}/{jitter_ms}"
            )
        self.spike_ms = float(spike_ms)
        self.jitter_ms = float(jitter_ms)

    def on_send(self, msg, now, rng, stats):
        if self.prob > 0.0 and rng.random() < self.prob:
            extra = self.spike_ms
            if self.jitter_ms > 0.0:
                extra += float(rng.random()) * self.jitter_ms
            return FaultVerdict(extra_latency_ms=extra)
        return FaultVerdict.PASS


@dataclass(frozen=True)
class CrashWindow:
    """Node ``node`` is offline during ``[start_ms, end_ms)``.

    ``end_ms`` may be ``inf`` for a crash with no recovery.
    """

    node: int
    start_ms: float
    end_ms: float = math.inf

    def __post_init__(self) -> None:
        if self.start_ms < 0 or self.end_ms < self.start_ms:
            raise ConfigError(
                f"invalid crash window [{self.start_ms}, {self.end_ms})"
            )


class CrashSchedule(FaultModel):
    """Scheduled node crash/recovery windows, driven by the DES engine.

    At install time each window schedules a crash event (node forced
    offline) and, for finite windows, a recovery event.  Crashing is
    idempotent with churn: a node already offline at crash time still
    counts as a crash, and recovery simply sets it online.
    """

    name = "crash_schedule"

    def __init__(self, windows: Iterable[CrashWindow | tuple] = ()) -> None:
        self.windows: list[CrashWindow] = [
            w if isinstance(w, CrashWindow) else CrashWindow(*w) for w in windows
        ]

    def add(self, node: int, start_ms: float, end_ms: float = math.inf) -> None:
        self.windows.append(CrashWindow(node, start_ms, end_ms))

    def install(self, network: "P2PNetwork", stats: FaultStats) -> None:
        engine = network.engine
        for w in self.windows:

            def crash(node: int = w.node) -> None:
                network.set_online(node, False)
                stats.crashes += 1

            engine.schedule(max(w.start_ms, engine.now), crash, label="fault_crash")
            if math.isfinite(w.end_ms):

                def recover(node: int = w.node) -> None:
                    network.set_online(node, True)
                    stats.recoveries += 1

                engine.schedule(
                    max(w.end_ms, engine.now), recover, label="fault_recover"
                )


def staggered_crash_windows(
    network_size: int,
    crash_fraction: float,
    *,
    exclude: set[int] | None = None,
    stagger_ms: float = 1_000.0,
    down_ms: float = 8_000.0,
) -> list[CrashWindow]:
    """Deterministic staggered crash windows over ``crash_fraction`` nodes.

    Nodes are picked by even stride (no RNG, so sweep cells differ only in
    the knob under study); each victim crashes ``stagger_ms`` after the
    previous one and stays dead for ``down_ms`` — long enough to span
    several transactions, short enough that recovery is observable within
    a run.  Shared by the degradation sweep and the campaign engine's
    :class:`~repro.campaigns.specs.FaultSpec`.
    """
    exclude = exclude or set()
    count = int(round(crash_fraction * network_size))
    if count <= 0:
        return []
    stride = max(1, network_size // count)
    victims = [n for n in range(1, network_size, stride) if n not in exclude]
    return [
        CrashWindow(
            node=node,
            start_ms=stagger_ms * (i + 1),
            end_ms=stagger_ms * (i + 1) + down_ms,
        )
        for i, node in enumerate(victims[:count])
    ]


class Bisection(FaultModel):
    """A network partition: traffic crossing the cut is dropped.

    ``left`` is one side of the bisection; everything else is the other.
    The partition is active during ``[start_ms, end_ms)`` (defaults to
    always-on).  Messages within either side pass untouched.
    """

    name = "bisection"

    def __init__(
        self,
        left: Iterable[int],
        *,
        start_ms: float = 0.0,
        end_ms: float = math.inf,
    ) -> None:
        if start_ms < 0 or end_ms < start_ms:
            raise ConfigError(f"invalid partition window [{start_ms}, {end_ms})")
        self.left = frozenset(int(i) for i in left)
        self.start_ms = float(start_ms)
        self.end_ms = float(end_ms)

    def on_send(self, msg, now, rng, stats):
        if not (self.start_ms <= now < self.end_ms):
            return FaultVerdict.PASS
        if (msg.src in self.left) != (msg.dst in self.left):
            return FaultVerdict(drop=True)
        return FaultVerdict.PASS


class FaultPlane:
    """A seeded stack of fault models attached to one network.

    Usage::

        plane = FaultPlane([MessageLoss(0.2)], seed=7)
        plane.install(network)        # or HiRepSystem(cfg, faults=plane)
        ...
        plane.stats.drops             # deterministic for a fixed seed

    The plane draws from its own generator so the rest of the simulation's
    RNG streams are untouched — disabling faults reproduces the fault-free
    run bit for bit.
    """

    def __init__(
        self,
        models: Sequence[FaultModel],
        *,
        seed: int = 0,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.models = list(models)
        for model in self.models:
            if not isinstance(model, FaultModel):
                raise ConfigError(f"not a FaultModel: {model!r}")
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.stats = FaultStats()
        self._installed_on: "P2PNetwork | None" = None

    def install(self, network: "P2PNetwork") -> "FaultPlane":
        """Attach to ``network`` (idempotent on the same network)."""
        if self._installed_on is network:
            return self
        if self._installed_on is not None:
            raise ConfigError("FaultPlane is already installed on another network")
        network.faults = self
        self._installed_on = network
        for model in self.models:
            model.install(network, self.stats)
        return self

    def on_send(self, msg: NetMessage, now: float) -> FaultVerdict:
        """Combined verdict for one message (first drop wins)."""
        self.stats.messages_seen += 1
        extra = 0.0
        for model in self.models:
            verdict = model.on_send(msg, now, self.rng, self.stats)
            if verdict.drop:
                self.stats.record_drop(model.name, msg.category)
                return FaultVerdict(drop=True, extra_latency_ms=extra)
            if verdict.extra_latency_ms > 0.0:
                self.stats.record_spike(verdict.extra_latency_ms)
                extra += verdict.extra_latency_ms
        return FaultVerdict(extra_latency_ms=extra)
