"""Network nodes and bandwidth assignment.

Bandwidth matters in hiREP only through the 64 kbps cutoff: "any peer with a
bandwidth greater than 64k can choose to function as a reputation agent"
(§1, §3.2).  The default bandwidth profile follows the classic Gnutella
host-capacity measurements (roughly a third of hosts on sub-64k dialup, the
rest broadband), and is configurable for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "AGENT_BANDWIDTH_CUTOFF_KBPS",
    "BandwidthProfile",
    "DEFAULT_BANDWIDTH_PROFILE",
    "NetNode",
    "assign_bandwidths",
]

#: §1: "Any peer with a bandwidth greater than 64k can choose to function as
#: a reputation agent".
AGENT_BANDWIDTH_CUTOFF_KBPS = 64.0


@dataclass(frozen=True)
class BandwidthProfile:
    """Discrete distribution over access-link speeds (kbps)."""

    speeds_kbps: tuple[float, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.speeds_kbps) != len(self.weights):
            raise ConfigError("speeds and weights must have equal length")
        if not self.speeds_kbps:
            raise ConfigError("bandwidth profile cannot be empty")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ConfigError("weights must be non-negative and sum > 0")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        probs = np.asarray(self.weights, dtype=np.float64)
        probs /= probs.sum()
        return rng.choice(np.asarray(self.speeds_kbps), size=n, p=probs)


#: ~30% of hosts below the 64k agent cutoff, the rest broadband — in line
#: with Gnutella-era host measurements.
DEFAULT_BANDWIDTH_PROFILE = BandwidthProfile(
    speeds_kbps=(28.8, 56.0, 128.0, 512.0, 1500.0, 3000.0),
    weights=(0.10, 0.20, 0.25, 0.20, 0.15, 0.10),
)


@dataclass
class NetNode:
    """One overlay participant at the network layer.

    The network layer knows nothing about reputations; it tracks identity
    (``node_index`` doubles as the simulated IP address), connectivity,
    capacity and liveness.
    """

    node_index: int
    bandwidth_kbps: float
    neighbors: tuple[int, ...] = ()
    online: bool = True
    extra: dict = field(default_factory=dict)

    @property
    def can_be_agent(self) -> bool:
        """Whether this node clears the 64 kbps reputation-agent cutoff."""
        return self.bandwidth_kbps > AGENT_BANDWIDTH_CUTOFF_KBPS

    @property
    def ip_address(self) -> int:
        """Simulated IP address (the node index; unique and routable)."""
        return self.node_index


def assign_bandwidths(
    n: int,
    rng: np.random.Generator,
    profile: BandwidthProfile = DEFAULT_BANDWIDTH_PROFILE,
    min_agent_fraction: float = 0.2,
) -> np.ndarray:
    """Sample per-node bandwidths, guaranteeing enough agent-capable nodes.

    If fewer than ``min_agent_fraction`` of nodes clear the 64k cutoff
    (possible for tiny n), random nodes are upgraded so the reputation agent
    community can exist at all.
    """
    if n < 1:
        raise ConfigError(f"need at least one node, got {n}")
    if not 0 <= min_agent_fraction <= 1:
        raise ConfigError(f"min_agent_fraction must be in [0,1], got {min_agent_fraction}")
    bw = profile.sample(rng, n).astype(np.float64)
    need = int(np.ceil(min_agent_fraction * n))
    capable = bw > AGENT_BANDWIDTH_CUTOFF_KBPS
    deficit = need - int(capable.sum())
    if deficit > 0:
        slow = np.nonzero(~capable)[0]
        upgrade = rng.choice(slow, size=min(deficit, slow.size), replace=False)
        bw[upgrade] = 128.0
    return bw
