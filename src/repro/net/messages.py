"""Network-layer message envelope.

The envelope is what the network delivers: source/destination *IP* (node
index), an opaque payload owned by the upper layer, and an accounting
category so the :class:`~repro.sim.metrics.MessageCounter` can attribute
traffic to protocol phases (trust query, onion relay, agent discovery, …).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["NetMessage", "Category", "DEFAULT_MESSAGE_BYTES"]

_msg_ids = itertools.count(1)


class Category:
    """Accounting categories used across the library (plain constants)."""

    TRUST_QUERY = "trust_query"
    TRUST_RESPONSE = "trust_response"
    TRANSACTION_REPORT = "transaction_report"
    ONION_RELAY = "onion_relay"
    AGENT_DISCOVERY = "agent_discovery"
    AGENT_DISCOVERY_REPLY = "agent_discovery_reply"
    KEY_EXCHANGE = "key_exchange"
    FLOOD_QUERY = "flood_query"
    FLOOD_RESPONSE = "flood_response"
    CONTROL = "control"


#: Nominal datagram size when the sender does not specify one (bytes).
DEFAULT_MESSAGE_BYTES = 512


@dataclass
class NetMessage:
    """One network-layer datagram."""

    src: int
    dst: int
    payload: Any
    category: str = Category.CONTROL
    size_bytes: int = DEFAULT_MESSAGE_BYTES
    hops: int = 0
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    sent_at: float = 0.0
