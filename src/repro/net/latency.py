"""Link latency models.

Fig. 8 reports response time in milliseconds; the paper "ignores the
individual bandwidth and the length of links" for traffic cost but needs a
latency model for response time.  We attach a latency to every *hop* (an
overlay edge, or a direct IP path between arbitrary nodes for onion relays)
drawn once per ordered pair from a configurable model, so repeated traversals
of the same path cost the same — consistent with a static underlay.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "LatencyMap",
]


class LatencyModel(abc.ABC):
    """Strategy for sampling a one-way hop latency in milliseconds."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one latency (must be > 0)."""


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """Every hop costs the same; handy for analytic checks in tests."""

    ms: float = 50.0

    def __post_init__(self) -> None:
        if self.ms <= 0:
            raise ConfigError(f"latency must be positive, got {self.ms}")

    def sample(self, rng: np.random.Generator) -> float:
        return self.ms


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Uniform in [lo, hi] — the library default (10–150 ms, WAN-ish)."""

    lo: float = 10.0
    hi: float = 150.0

    def __post_init__(self) -> None:
        if self.lo <= 0 or self.hi < self.lo:
            raise ConfigError(f"invalid latency range [{self.lo}, {self.hi}]")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.lo, self.hi))


@dataclass(frozen=True)
class LogNormalLatency(LatencyModel):
    """Heavy-tailed latencies; median ≈ exp(mu) ms."""

    mu: float = 3.9  # median ≈ 50 ms
    sigma: float = 0.5
    cap_ms: float = 2000.0

    def __post_init__(self) -> None:
        if self.sigma <= 0 or self.cap_ms <= 0:
            raise ConfigError("sigma and cap_ms must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        return float(min(rng.lognormal(self.mu, self.sigma), self.cap_ms))


class LatencyMap:
    """Memoized symmetric pairwise latencies.

    Latencies are sampled lazily on first use of a pair and cached, so a
    1000-node network does not materialize a 10⁶-entry matrix.
    """

    def __init__(self, model: LatencyModel, rng: np.random.Generator) -> None:
        self._model = model
        self._rng = rng
        self._cache: dict[tuple[int, int], float] = {}

    def between(self, u: int, v: int) -> float:
        """One-way latency between nodes ``u`` and ``v`` (symmetric)."""
        if u == v:
            return 0.0
        key = (u, v) if u < v else (v, u)
        value = self._cache.get(key)
        if value is None:
            value = self._model.sample(self._rng)
            self._cache[key] = value
        return value

    def __len__(self) -> int:
        return len(self._cache)
