"""Relay-side state: anonymity keys learned via handshake.

:class:`AnonymityKeyStore` is a peer's view of other nodes' anonymity public
keys (AP), populated exclusively through the Fig. 3 handshake — nothing in
the library hands out APs by fiat, so the key-distribution story of the
paper is exercised on every onion build.
"""

from __future__ import annotations

from repro.crypto.backend import CipherBackend, PublicKey
from repro.errors import UnknownNodeError
from repro.net.network import P2PNetwork
from repro.onion.handshake import (
    HandshakeInitiator,
    HandshakeResponder,
    perform_handshake,
)

__all__ = ["AnonymityKeyStore", "RelayRegistry"]


class RelayRegistry:
    """Directory of handshake responders, one per node.

    This models each node's listening side of the key exchange.  It lives at
    the simulation-orchestration level (it is how the simulated network
    "reaches" node K's responder when P sends to IP_k).
    """

    def __init__(self) -> None:
        self._responders: dict[int, HandshakeResponder] = {}

    def register(self, ip: int, responder: HandshakeResponder) -> None:
        self._responders[ip] = responder

    def responder(self, ip: int) -> HandshakeResponder:
        try:
            return self._responders[ip]
        except KeyError:
            raise UnknownNodeError(ip) from None


class AnonymityKeyStore:
    """One peer's cache of verified anonymity public keys."""

    def __init__(
        self,
        owner_ip: int,
        backend: CipherBackend,
        initiator_factory,
    ) -> None:
        """``initiator_factory()`` must return a fresh HandshakeInitiator."""
        self._owner_ip = owner_ip
        self._backend = backend
        self._initiator_factory = initiator_factory
        self._keys: dict[int, PublicKey] = {}
        self.handshakes_performed = 0

    def known(self, ip: int) -> bool:
        return ip in self._keys

    def get(self, ip: int) -> PublicKey:
        try:
            return self._keys[ip]
        except KeyError:
            raise UnknownNodeError(ip) from None

    def learn(
        self,
        network: P2PNetwork,
        registry: RelayRegistry,
        ip: int,
    ) -> PublicKey:
        """Fetch (and verify) node ``ip``'s AP via the 4-message handshake.

        Cached keys are returned without touching the network.
        """
        cached = self._keys.get(ip)
        if cached is not None:
            return cached
        initiator: HandshakeInitiator = self._initiator_factory()
        key = perform_handshake(
            network,
            self._backend,
            initiator,
            registry.responder(ip),
            self._owner_ip,
            ip,
        )
        self._keys[ip] = key
        self.handshakes_performed += 1
        return key

    def forget(self, ip: int) -> None:
        """Drop a cached key (e.g. the node rotated keys or left)."""
        self._keys.pop(ip, None)

    def __len__(self) -> int:
        return len(self._keys)
