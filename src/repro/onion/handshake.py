"""Anonymity-key exchange with a prospective onion relay (Fig. 3).

When peer P picks node K as an onion-routing relay it must learn K's
anonymity public key AP_k without a certificate authority.  The four-message
handshake of the paper:

1. ``P → K``: ``(R_o, AP_p, IP_p)`` — relay request, in the clear.
2. ``K → P``: ``AP_p(AP_k, IP_k, nonce)`` — K's key, sealed to P.
3. ``P → K``: ``AP_k(AP_p, IP_p, nonce)`` — verification probe sealed to the
   claimed AP_k, echoing the nonce.
4. ``K → P``: ``AP_p(confirmed, IP_k, nonce)`` — confirmation.  "If P cannot
   receive the confirmation, it knows AP_k is invalid."

The handshake defeats a man-in-the-middle who substitutes its own key for
AP_k in message 2: the MITM cannot decrypt message 3 re-sealed to the *real*
AP_k, so no valid confirmation comes back.  The nonce defends against
replays of old confirmations.

The state machine is pure (no I/O) so it can be unit-tested exhaustively;
:func:`perform_handshake` drives it over a :class:`~repro.net.network.P2PNetwork`
with correct message accounting (4 messages, category ``key_exchange``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crypto.backend import CipherBackend, PrivateKey, PublicKey
from repro.crypto.nonce import NonceRegistry
from repro.errors import CryptoError, KeyMismatchError, ProtocolError
from repro.net.messages import Category
from repro.net.network import P2PNetwork

__all__ = [
    "RelayRequest",
    "KeyResponse",
    "VerifyProbe",
    "Confirmation",
    "HandshakeInitiator",
    "HandshakeResponder",
    "perform_handshake",
    "HANDSHAKE_MESSAGES",
]

#: Messages on the wire per completed handshake.
HANDSHAKE_MESSAGES = 4


@dataclass(frozen=True)
class RelayRequest:
    """Message 1: ``(R_o, AP_p, IP_p)``."""

    ap_initiator: PublicKey
    ip_initiator: int


@dataclass(frozen=True)
class KeyResponse:
    """Message 2 payload (sealed to AP_p): ``(AP_k, IP_k, nonce)``."""

    ap_relay: PublicKey
    ip_relay: int
    nonce: int


@dataclass(frozen=True)
class VerifyProbe:
    """Message 3 payload (sealed to the claimed AP_k): ``(AP_p, IP_p, nonce)``."""

    ap_initiator: PublicKey
    ip_initiator: int
    nonce: int


@dataclass(frozen=True)
class Confirmation:
    """Message 4 payload (sealed to AP_p): ``("confirmed", IP_k, nonce)``."""

    confirmed: bool
    ip_relay: int
    nonce: int


class HandshakeInitiator:
    """P's side of the exchange."""

    def __init__(
        self,
        backend: CipherBackend,
        ap: PublicKey,
        ar: PrivateKey,
        ip: int,
    ) -> None:
        self._backend = backend
        self._ap = ap
        self._ar = ar
        self._ip = ip
        self._expected_nonce: int | None = None
        self._claimed_key: PublicKey | None = None
        self._claimed_ip: int | None = None

    def request(self) -> RelayRequest:
        """Produce message 1."""
        return RelayRequest(ap_initiator=self._ap, ip_initiator=self._ip)

    def on_key_response(self, sealed: Any) -> VerifyProbe | None:
        """Consume message 2; emit the sealed probe of message 3.

        Returns ``None`` (abort) if the response cannot be opened or is
        malformed — e.g. it was sealed to someone else's key.
        """
        try:
            payload = self._backend.decrypt(self._ar, sealed)
        except CryptoError:
            return None
        if not isinstance(payload, KeyResponse):
            return None
        self._expected_nonce = payload.nonce
        self._claimed_key = payload.ap_relay
        self._claimed_ip = payload.ip_relay
        return VerifyProbe(
            ap_initiator=self._ap, ip_initiator=self._ip, nonce=payload.nonce
        )

    def seal_probe(self, probe: VerifyProbe) -> Any:
        """Seal message 3 to the claimed relay key."""
        if self._claimed_key is None:
            raise ProtocolError("no key response processed yet")
        return self._backend.encrypt(self._claimed_key, probe)

    def on_confirmation(self, sealed: Any) -> PublicKey:
        """Consume message 4; return the now-verified AP_k.

        Raises
        ------
        KeyMismatchError
            If no valid confirmation can be opened (the claimed key was a
            MITM substitute, or the nonce does not match).
        """
        if self._expected_nonce is None or self._claimed_key is None:
            raise ProtocolError("handshake not in the confirmation state")
        try:
            payload = self._backend.decrypt(self._ar, sealed)
        except CryptoError as exc:
            raise KeyMismatchError("confirmation unreadable: relay key invalid") from exc
        if (
            not isinstance(payload, Confirmation)
            or not payload.confirmed
            or payload.nonce != self._expected_nonce
            or payload.ip_relay != self._claimed_ip
        ):
            raise KeyMismatchError("confirmation invalid: relay key rejected")
        return self._claimed_key


class HandshakeResponder:
    """K's side of the exchange."""

    def __init__(
        self,
        backend: CipherBackend,
        ap: PublicKey,
        ar: PrivateKey,
        ip: int,
        nonces: NonceRegistry,
    ) -> None:
        self._backend = backend
        self._ap = ap
        self._ar = ar
        self._ip = ip
        self._nonces = nonces
        self._pending: dict[int, PublicKey] = {}  # nonce -> initiator AP

    def on_request(self, request: RelayRequest) -> Any:
        """Consume message 1; emit sealed message 2."""
        nonce = self._nonces.issue()
        self._pending[nonce] = request.ap_initiator
        response = KeyResponse(ap_relay=self._ap, ip_relay=self._ip, nonce=nonce)
        return self._backend.encrypt(request.ap_initiator, response)

    def on_probe(self, sealed: Any) -> Any | None:
        """Consume message 3; emit sealed message 4 (or None to stay silent).

        Staying silent on any failure is deliberate: an invalid probe must
        not leak whether decryption worked.
        """
        try:
            probe = self._backend.decrypt(self._ar, sealed)
        except CryptoError:
            return None
        if not isinstance(probe, VerifyProbe):
            return None
        initiator_ap = self._pending.pop(probe.nonce, None)
        if initiator_ap is None:
            return None  # unknown or replayed nonce
        confirmation = Confirmation(confirmed=True, ip_relay=self._ip, nonce=probe.nonce)
        return self._backend.encrypt(initiator_ap, confirmation)


def perform_handshake(
    network: P2PNetwork,
    backend: CipherBackend,
    initiator: HandshakeInitiator,
    responder: HandshakeResponder,
    initiator_ip: int,
    responder_ip: int,
) -> PublicKey:
    """Run the 4-message exchange, charging 4 ``key_exchange`` messages.

    The exchange is driven synchronously (the latency cost shows up in
    response-time experiments through the returned elapsed estimate, not the
    engine clock) — key exchange happens during list maintenance, off the
    transaction critical path.
    """
    request = initiator.request()
    network.counter.count(Category.KEY_EXCHANGE)
    sealed_key = responder.on_request(request)
    network.counter.count(Category.KEY_EXCHANGE)
    probe = initiator.on_key_response(sealed_key)
    if probe is None:
        raise KeyMismatchError(f"relay {responder_ip} sent an unreadable key response")
    network.counter.count(Category.KEY_EXCHANGE)
    confirmation = responder.on_probe(initiator.seal_probe(probe))
    network.counter.count(Category.KEY_EXCHANGE)
    if confirmation is None:
        raise KeyMismatchError(f"relay {responder_ip} failed probe verification")
    return initiator.on_confirmation(confirmation)
