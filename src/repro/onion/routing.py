"""Onion-routed message delivery over the simulated network.

:class:`OnionRouter` is the transport glue: it owns, per node, the anonymity
private key needed to peel layers and the upper-layer delivery callback.
``send`` injects an :class:`OnionPacket` at the onion's entry relay; each
relay peels one layer and forwards; the owner's peel yields the fake-onion
core, at which point the inner protocol message is handed to the endpoint.

Every hop is a real :class:`~repro.net.messages.NetMessage` through the DES
engine, charged to the original protocol category — so Fig. 5's traffic
numbers include relay forwarding, and Fig. 8's response times accumulate
per-hop latency, exactly as deployed onion routing would behave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.crypto.backend import CipherBackend, PrivateKey
from repro.errors import OnionError, OnionPeelError
from repro.net.messages import NetMessage
from repro.net.network import P2PNetwork
from repro.onion.onion import Onion, peel

__all__ = ["OnionPacket", "OnionRouter"]

Endpoint = Callable[[Any, float], None]  # (message, sent_at) -> None


@dataclass
class OnionPacket:
    """What travels hop to hop: remaining blob + the protocol message."""

    blob: Any
    message: Any
    category: str
    sent_at: float


class OnionRouter:
    """Per-network onion transport."""

    def __init__(self, network: P2PNetwork, backend: CipherBackend) -> None:
        self.network = network
        self.backend = backend
        self._keys: dict[int, PrivateKey] = {}
        self._endpoints: dict[int, Endpoint] = {}
        self.delivered = 0
        self.dropped = 0

    def register_node(
        self, ip: int, ar: PrivateKey, endpoint: Endpoint | None = None
    ) -> None:
        """Attach a node's anonymity private key and delivery callback."""
        self._keys[ip] = ar
        if endpoint is not None:
            self._endpoints[ip] = endpoint

    def set_endpoint(self, ip: int, endpoint: Endpoint) -> None:
        self._endpoints[ip] = endpoint

    # -- sending ---------------------------------------------------------

    def send(
        self,
        sender_ip: int,
        onion: Onion,
        message: Any,
        *,
        category: str,
    ) -> None:
        """Route ``message`` along ``onion``'s path.

        The sender does not know (and never learns) the owner's IP: it only
        ever addresses the entry relay.
        """
        packet = OnionPacket(
            blob=onion.blob,
            message=message,
            category=category,
            sent_at=self.network.engine.now,
        )
        self.network.send(
            sender_ip,
            onion.first_hop,
            packet,
            category=category,
            size_bytes=self._size_of(packet),
        )

    # -- receiving (wired into node dispatchers) ---------------------------

    def handle(self, msg: NetMessage) -> bool:
        """Process a delivered network message if it is an onion packet.

        Returns True when consumed (so node dispatchers can fall through to
        other protocol handlers otherwise).
        """
        if not isinstance(msg.payload, OnionPacket):
            return False
        packet = msg.payload
        here = msg.dst
        ar = self._keys.get(here)
        if ar is None:
            self.dropped += 1
            return True
        try:
            outcome = peel(self.backend, ar, packet.blob)
        except OnionPeelError:
            # Misrouted or tampered onion: silently dropped, like a relay
            # that cannot decrypt would do.
            self.dropped += 1
            return True
        if outcome.delivered:
            self.delivered += 1
            endpoint = self._endpoints.get(here)
            if endpoint is not None:
                endpoint(packet.message, packet.sent_at)
            return True
        # Forward the peeled packet one hop inward.
        inner = OnionPacket(
            blob=outcome.inner,
            message=packet.message,
            category=packet.category,
            sent_at=packet.sent_at,
        )
        if not self.network.is_online(here):
            self.dropped += 1
            return True
        self.network.send(
            here,
            int(outcome.next_ip),
            inner,
            category=packet.category,
            size_bytes=self._size_of(inner),
        )
        return True

    # -- diagnostics -------------------------------------------------------

    @staticmethod
    def _size_of(packet: "OnionPacket") -> int:
        """Wire size of an in-flight packet (core.wire model)."""
        from repro.core.wire import wire_size

        return wire_size(packet)

    def knows_key(self, ip: int) -> bool:
        return ip in self._keys


def expected_onion_messages(n_relays: int) -> int:
    """Hops consumed delivering one message via an onion of ``n_relays``.

    sender → entry relay, relay→relay (n-1 times), last relay → owner:
    ``n_relays + 1`` messages (== 1 when the onion has no relays).
    """
    if n_relays < 0:
        raise OnionError(f"negative relay count {n_relays}")
    return n_relays + 1
