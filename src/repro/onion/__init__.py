"""Onion routing: key handshake, onion build/peel, routed delivery."""

from repro.onion.handshake import (
    Confirmation,
    HANDSHAKE_MESSAGES,
    HandshakeInitiator,
    HandshakeResponder,
    KeyResponse,
    RelayRequest,
    VerifyProbe,
    perform_handshake,
)
from repro.onion.onion import (
    Onion,
    OnionLayer,
    PeelOutcome,
    build_onion,
    peel,
    random_relay_path,
)
from repro.onion.relay import AnonymityKeyStore, RelayRegistry
from repro.onion.routing import OnionPacket, OnionRouter, expected_onion_messages

__all__ = [
    "Confirmation",
    "HANDSHAKE_MESSAGES",
    "HandshakeInitiator",
    "HandshakeResponder",
    "KeyResponse",
    "RelayRequest",
    "VerifyProbe",
    "perform_handshake",
    "Onion",
    "OnionLayer",
    "PeelOutcome",
    "build_onion",
    "peel",
    "random_relay_path",
    "AnonymityKeyStore",
    "RelayRegistry",
    "OnionPacket",
    "OnionRouter",
    "expected_onion_messages",
]
