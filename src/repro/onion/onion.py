"""Onion construction and peeling (§3.3).

Paper format::

    (((((((fakeonion)AP_p)IP_p)AP_1)IP_1) … AP_k)IP_k, sq) SR_p

Reading inside-out: the core is a *fake onion* sealed to the owner P's own
anonymity key; each enclosing layer is sealed to one relay's anonymity key
and names the IP of the *next* hop inward.  The outermost layer names IP_k,
the entry relay.  ``sq`` is a non-decreasing sequence number indicating the
onion's age, and the whole structure is signed with the owner's signature
private key SR_p so holders can verify authenticity against SP_p.

A relay peels one layer with its AR, learns only the next IP, and forwards.
Because every relay (and the owner) receives a structurally identical blob,
"even the relay next to P does not know P is the receiver": the owner's
peel yields the fake-onion marker, telling *it alone* that the message has
arrived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crypto.backend import CipherBackend, PrivateKey, PublicKey
from repro.errors import OnionPeelError
from repro.sim.rng import make_rng

__all__ = [
    "Onion",
    "OnionLayer",
    "PeelOutcome",
    "build_onion",
    "peel",
    "random_relay_path",
]

#: Marker object at the onion core; only the owner ever sees it.
_FAKE_ONION = "__fake_onion__"


@dataclass(frozen=True)
class OnionLayer:
    """Plaintext of one peeled layer: the next hop and the inner blob."""

    next_ip: int
    inner: Any


@dataclass(frozen=True)
class Onion:
    """A complete, signed onion as stored in trusted-agent lists."""

    first_hop: int
    blob: Any
    seq: int
    signature: Any

    def verify(self, backend: CipherBackend, owner_sp: PublicKey) -> bool:
        """Check the SR_p signature over (blob identity, seq)."""
        return backend.verify(owner_sp, ("onion", self.seq, self.first_hop), self.signature)


@dataclass(frozen=True)
class PeelOutcome:
    """Result of peeling one layer at a relay or the owner."""

    delivered: bool          # True ⇒ this node is the owner; message arrived
    next_ip: int | None      # set when delivered is False
    inner: Any | None        # remaining blob to forward


def build_onion(
    backend: CipherBackend,
    owner_ap: PublicKey,
    owner_sr: PrivateKey,
    owner_ip: int,
    relay_keys: list[tuple[int, PublicKey]],
    seq: int,
) -> Onion:
    """Construct an onion whose path runs entry-relay → … → owner.

    Parameters
    ----------
    relay_keys:
        ``[(ip, AP), …]`` ordered from the relay *closest to the owner*
        (innermost layer) to the entry relay (outermost).  May be empty, in
        which case the onion is a single self-layer (no anonymity, useful
        for tests and the o=0 ablation).
    seq:
        Non-decreasing onion age; receivers drop onions older than the
        newest they have seen from the same owner.
    """
    # Core: fake onion sealed to the owner.
    blob: Any = backend.encrypt(owner_ap, OnionLayer(next_ip=-1, inner=_FAKE_ONION))
    prev_ip = owner_ip
    for ip, ap in relay_keys:
        blob = backend.encrypt(ap, OnionLayer(next_ip=prev_ip, inner=blob))
        prev_ip = ip
    first_hop = prev_ip  # entry relay (or the owner itself when no relays)
    signature = backend.sign(owner_sr, ("onion", seq, first_hop))
    return Onion(first_hop=first_hop, blob=blob, seq=seq, signature=signature)


def peel(backend: CipherBackend, ar: PrivateKey, blob: Any) -> PeelOutcome:
    """Peel one layer with this node's anonymity private key.

    Raises
    ------
    OnionPeelError
        If the blob is not sealed to this node's key — the defining failure
        of a misrouted or tampered onion.
    """
    try:
        layer = backend.decrypt(ar, blob)
    except Exception as exc:
        raise OnionPeelError(f"cannot peel onion layer: {exc}") from exc
    if not isinstance(layer, OnionLayer):
        raise OnionPeelError("peeled data is not an onion layer")
    if layer.inner == _FAKE_ONION or layer.next_ip < 0:
        return PeelOutcome(delivered=True, next_ip=None, inner=None)
    return PeelOutcome(delivered=False, next_ip=layer.next_ip, inner=layer.inner)


def random_relay_path(
    candidates: list[int],
    owner_ip: int,
    n_relays: int,
    rng: Any = None,
) -> list[int]:
    """Pick ``n_relays`` distinct relay IPs, never including the owner.

    Returned inner-to-outer (the order :func:`build_onion` expects once the
    caller attaches each relay's AP).
    """
    rng = make_rng(rng)
    pool = [c for c in candidates if c != owner_ip]
    if n_relays <= 0 or not pool:
        return []
    if n_relays >= len(pool):
        picked = list(pool)
        rng.shuffle(picked)
        return picked
    idx = rng.choice(len(pool), size=n_relays, replace=False)
    return [pool[int(i)] for i in idx]
