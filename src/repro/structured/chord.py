"""A Chord DHT ring — the structured-overlay substrate of §2's comparators.

The paper files EigenTrust (and PeerTrust, TrustGuard, …) under systems
that "utilize topology information and specific search/routing algorithm
of the structured P2P systems to distribute the trust value messages".
To make that distribution *cost* measurable (instead of hand-waving
"traffic n/a"), this module implements the Chord primitives those systems
assume:

* consistent hashing of node ids onto a 2^m ring;
* successor lists and O(log n) finger tables;
* iterative ``lookup(key)`` returning the responsible node *and* the hop
  count (each hop is one routed message);
* a :class:`DHTStore` mapping keys to values at their successor nodes,
  with put/get traffic accounting.

This is a static-membership Chord (built once over the simulated peer
population, like the paper's one-shot topologies); stabilization under
churn is out of scope for the comparators that use it.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError, UnknownNodeError
from repro.sim.metrics import MessageCounter

__all__ = ["ChordRing", "DHTStore", "LookupResult"]

M_BITS = 32
RING = 1 << M_BITS


def _hash_to_ring(data: bytes) -> int:
    return int.from_bytes(hashlib.sha1(data).digest()[:8], "big") % RING


@dataclass
class LookupResult:
    """Outcome of one iterative lookup."""

    key: int
    owner: int           # node index owning the key
    hops: int            # routed messages spent
    path: list[int] = field(default_factory=list)


class ChordRing:
    """Chord ring over ``n`` nodes with full finger tables."""

    def __init__(self, n: int, *, counter: MessageCounter | None = None) -> None:
        if n < 1:
            raise ConfigError(f"need at least one node, got {n}")
        self.n = n
        self.counter = counter or MessageCounter()
        # node index -> ring id (deterministic, collision-free by construction)
        ids = {}
        used = set()
        for node in range(n):
            rid = _hash_to_ring(b"chord-node-%d" % node)
            while rid in used:
                rid = (rid + 1) % RING
            used.add(rid)
            ids[node] = rid
        self.node_id = ids
        # sorted ring: list of (ring id, node index)
        self._ring = sorted((rid, node) for node, rid in ids.items())
        self._ring_ids = [rid for rid, _node in self._ring]
        # finger tables: node -> [successor of (id + 2^k)]
        self._fingers: dict[int, list[int]] = {}
        for node in range(n):
            base = self.node_id[node]
            fingers = []
            for k in range(M_BITS):
                target = (base + (1 << k)) % RING
                fingers.append(self._successor_of(target))
            self._fingers[node] = fingers

    # -- ring arithmetic ------------------------------------------------------

    def _successor_of(self, ring_point: int) -> int:
        """The node owning ``ring_point`` (first node at or after it)."""
        idx = bisect_left(self._ring_ids, ring_point)
        if idx == len(self._ring_ids):
            idx = 0
        return self._ring[idx][1]

    @staticmethod
    def _in_interval(x: int, lo: int, hi: int) -> bool:
        """x in (lo, hi] on the ring."""
        if lo < hi:
            return lo < x <= hi
        return x > lo or x <= hi

    def key_for(self, data: bytes) -> int:
        return _hash_to_ring(data)

    def owner_of(self, key: int) -> int:
        return self._successor_of(key % RING)

    def successor(self, node: int) -> int:
        if node not in self.node_id:
            raise UnknownNodeError(node)
        return self._fingers[node][0]

    def fingers(self, node: int) -> list[int]:
        try:
            return list(self._fingers[node])
        except KeyError:
            raise UnknownNodeError(node) from None

    # -- routing -----------------------------------------------------------------

    def lookup(self, origin: int, key: int, *, count: bool = True) -> LookupResult:
        """Iterative Chord lookup; each hop costs one routed message."""
        if origin not in self.node_id:
            raise UnknownNodeError(origin)
        key %= RING
        owner = self.owner_of(key)
        current = origin
        path = [origin]
        hops = 0
        while current != owner:
            current_id = self.node_id[current]
            succ = self._fingers[current][0]
            if self._in_interval(key, current_id, self.node_id[succ]):
                nxt = succ
            else:
                # Closest preceding finger.
                nxt = succ
                for finger in reversed(self._fingers[current]):
                    if finger == current:
                        continue
                    if self._in_interval(self.node_id[finger], current_id, key):
                        nxt = finger
                        break
            if nxt == current:  # safety: fall back to linear walk
                nxt = succ
            hops += 1
            if count:
                self.counter.count("dht_route")
            current = nxt
            path.append(current)
            if hops > self.n:
                raise ConfigError("lookup failed to converge (ring corrupt)")
        return LookupResult(key=key, owner=owner, hops=hops, path=path)


class DHTStore:
    """Key/value storage at Chord successors, with traffic accounting."""

    def __init__(self, ring: ChordRing) -> None:
        self.ring = ring
        self._stores: dict[int, dict[int, Any]] = {}

    def put(self, origin: int, key_data: bytes, value: Any) -> LookupResult:
        """Route to the owner and store; one extra message for the PUT."""
        key = self.ring.key_for(key_data)
        result = self.ring.lookup(origin, key)
        self.ring.counter.count("dht_put")
        self._stores.setdefault(result.owner, {})[key] = value
        return result

    def get(self, origin: int, key_data: bytes) -> tuple[Any, LookupResult]:
        """Route to the owner and fetch; one extra message for the reply."""
        key = self.ring.key_for(key_data)
        result = self.ring.lookup(origin, key)
        self.ring.counter.count("dht_get")
        value = self._stores.get(result.owner, {}).get(key)
        return value, result

    def stored_at(self, node: int) -> dict[int, Any]:
        return dict(self._stores.get(node, {}))
