"""Structured-overlay (Chord DHT) substrate for §2's comparators."""

from repro.structured.chord import ChordRing, DHTStore, LookupResult

__all__ = ["ChordRing", "DHTStore", "LookupResult"]
