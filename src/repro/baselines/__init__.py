"""Baseline reputation systems compared against hiREP."""

from repro.baselines.base import BaselineOutcome, BaselineSystem, draw_vote
from repro.baselines.eigentrust import (
    EigenTrustSystem,
    eigentrust,
    normalize_local_trust,
)
from repro.baselines.credibility import CredibilityVotingSystem
from repro.baselines.gossip import GossipSystem
from repro.baselines.local import LocalReputationSystem
from repro.baselines.trustme import TrustMeSystem
from repro.baselines.voting import PureVotingSystem

__all__ = [
    "CredibilityVotingSystem",
    "GossipSystem",
    "LocalReputationSystem",
    "BaselineOutcome",
    "BaselineSystem",
    "draw_vote",
    "EigenTrustSystem",
    "eigentrust",
    "normalize_local_trust",
    "TrustMeSystem",
    "PureVotingSystem",
]
