"""The pure-voting (polling) baseline — the paper's comparator (§5.2).

P2PREP-style: trust values live in every peer's local experience, so a
requestor must poll the whole system.  Simulated exactly as the paper does:
a TTL-bounded BFS flood carries the trust query; *every* reached node
computes a vote and returns it to the requestor; the estimate is the plain
mean of all votes ("the trust value provided by each node is treated
equally", §5.3 — which is why malicious voters hurt so much, Fig. 7).

Accounting:

* **messages** — one per flood edge traversed, plus ``depth`` messages per
  vote (query hits route back along the BFS reverse path);
* **response time** — each vote's arrival is the two-way propagation along
  its BFS path; arrivals then serialize FIFO on the requestor's access
  link.  The query completes when the last vote lands (the requestor cannot
  know it is done earlier — it polled everyone).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineOutcome, BaselineSystem, draw_vote
from repro.net.flooding import flood_bfs
from repro.net.messages import Category

__all__ = ["PureVotingSystem"]


class PureVotingSystem(BaselineSystem):
    """Flooding-based polling reputation system."""

    def run_transaction(
        self, requestor: int | None = None, provider: int | None = None
    ) -> BaselineOutcome:
        req, prov = self.pick_pair(requestor)
        if provider is not None:
            prov = provider
        truth = float(self.truth[prov])

        flood = flood_bfs(
            self.topology, req, self.config.ttl, online=self.network.is_online
        )
        self.counter.count(Category.FLOOD_QUERY, flood.messages)

        votes: list[float] = []
        vote_messages = 0
        arrivals: list[float] = []
        for node, depth in flood.visited.items():
            if node == req or node == prov:
                continue
            honest = not bool(self.malicious[node])
            votes.append(
                draw_vote(
                    honest,
                    truth,
                    self.rng,
                    self.config.good_rating,
                    self.config.bad_rating,
                )
            )
            vote_messages += depth
            path = flood.path_to(node)
            one_way = self.network.path_latency(path)
            arrivals.append(2.0 * one_way)
        self.counter.count(Category.FLOOD_RESPONSE, vote_messages)

        estimate = float(np.mean(votes)) if votes else 0.5
        response_time = self._serialize_at(req, arrivals)
        outcome = BaselineOutcome(
            index=self.transactions_run,
            requestor=req,
            provider=prov,
            estimate=estimate,
            truth=truth,
            squared_error=(estimate - truth) ** 2,
            response_time_ms=response_time,
            messages=flood.messages + vote_messages,
            voters=len(votes),
        )
        return self._record(outcome)
