"""EigenTrust (Kamvar et al., WWW'03) — extension comparator.

EigenTrust aggregates *local* trust values into a global trust vector by
power iteration over the normalized local-trust matrix, damped toward a
pre-trusted set:

    t ← (1 − a) · Cᵀ t + a · p

It targets structured overlays (the paper's §2 files it under systems that
"utilize topology information … of the structured P2P systems"), so it is
not one of the paper's measured baselines — we include it to position
hiREP's accuracy against the canonical global-reputation algorithm in the
extension experiments.

The implementation is pure numpy (vectorized per the HPC guides) and a thin
:class:`EigenTrustSystem` adapter runs it over the shared :class:`World`
with the same transaction workload.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineOutcome, BaselineSystem, draw_vote
from repro.errors import ConfigError

__all__ = ["eigentrust", "normalize_local_trust", "EigenTrustSystem"]


def normalize_local_trust(local: np.ndarray) -> np.ndarray:
    """Row-normalize max(local, 0) into the stochastic matrix C.

    Rows with no positive opinion become uniform (the standard EigenTrust
    fallback so the matrix stays stochastic).
    """
    if local.ndim != 2 or local.shape[0] != local.shape[1]:
        raise ConfigError(f"local trust must be square, got {local.shape}")
    c = np.maximum(local, 0.0)
    sums = c.sum(axis=1, keepdims=True)
    n = c.shape[0]
    uniform = np.full(n, 1.0 / n)
    out = np.where(sums > 0, c / np.where(sums > 0, sums, 1.0), uniform)
    return out


def eigentrust(
    local: np.ndarray,
    pretrusted: np.ndarray | None = None,
    *,
    alpha: float = 0.15,
    eps: float = 1e-10,
    max_iter: int = 1000,
) -> np.ndarray:
    """Compute the global trust vector by damped power iteration.

    Parameters
    ----------
    local:
        n×n local trust values (``local[i, j]`` = i's opinion of j).
    pretrusted:
        Boolean or weight vector of pre-trusted peers; defaults to uniform.
    alpha:
        Damping toward the pre-trusted distribution (break-out defence).
    """
    if not 0.0 <= alpha < 1.0:
        raise ConfigError(f"alpha must be in [0,1), got {alpha}")
    c = normalize_local_trust(local)
    n = c.shape[0]
    if pretrusted is None:
        p = np.full(n, 1.0 / n)
    else:
        p = np.asarray(pretrusted, dtype=np.float64)
        total = p.sum()
        p = np.full(n, 1.0 / n) if total <= 0 else p / total
    t = p.copy()
    ct = c.T  # iterate t ← (1-a)·Cᵀt + a·p
    for _ in range(max_iter):
        t_next = (1.0 - alpha) * (ct @ t) + alpha * p
        if np.abs(t_next - t).sum() < eps:
            return t_next
        t = t_next
    return t


class EigenTrustSystem(BaselineSystem):
    """EigenTrust over the shared world, fed by the same workload.

    Each transaction deposits a local-trust observation (honest raters rate
    the provider's truth, malicious raters invert), and the estimate for a
    provider is its global trust score rescaled against the current maximum
    so it is comparable to [0, 1] trust values.

    Score distribution runs over a real Chord DHT
    (:mod:`repro.structured.chord`) following the EigenTrust paper's
    score-manager placement: peer *i*'s global score lives at the successor
    of ``hash(i)``, recomputations PUT every score (O(n · log n) routed
    messages), and each trust check is a GET (O(log n)) — so this baseline's
    traffic is measured, not asserted.
    """

    RECOMPUTE_EVERY = 10

    def _lazy_init(self) -> None:
        from repro.structured.chord import ChordRing, DHTStore

        n = self.config.network_size
        self._local = np.zeros((n, n))
        self._global = np.full(n, 1.0 / n)
        self._ring = ChordRing(n, counter=self.counter)
        self._dht = DHTStore(self._ring)

    @staticmethod
    def _score_key(peer: int) -> bytes:
        return b"eigentrust-score-%d" % peer

    def _publish_scores(self) -> None:
        """PUT every peer's score at its score manager."""
        for peer in range(self.config.network_size):
            self._dht.put(peer, self._score_key(peer), float(self._global[peer]))

    def run_transaction(
        self, requestor: int | None = None, provider: int | None = None
    ) -> BaselineOutcome:
        if not hasattr(self, "_local"):
            self._lazy_init()
        req, prov = self.pick_pair(requestor)
        if provider is not None:
            prov = provider
        truth = float(self.truth[prov])

        before = self.counter.total
        if self.transactions_run % self.RECOMPUTE_EVERY == 0:
            pre = (~self.malicious).astype(np.float64)
            self._global = eigentrust(self._local, pre)
            self._publish_scores()

        # Trust check: fetch the provider's score from its score manager.
        stored, _lookup = self._dht.get(req, self._score_key(prov))
        score = stored if stored is not None else float(self._global[prov])
        top = float(self._global.max())
        estimate = float(score / top) if top > 0 else 0.5
        estimate = min(max(estimate, 0.0), 1.0)

        honest = not bool(self.malicious[req])
        rating = draw_vote(
            honest, truth, self.rng, self.config.good_rating, self.config.bad_rating
        )
        self._local[req, prov] += rating

        outcome = BaselineOutcome(
            index=self.transactions_run,
            requestor=req,
            provider=prov,
            estimate=estimate,
            truth=truth,
            squared_error=(estimate - truth) ** 2,
            response_time_ms=float("nan"),
            messages=self.counter.total - before,
            voters=0,
        )
        return self._record(outcome)
