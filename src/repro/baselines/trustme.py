"""TrustMe baseline (Singh & Liu, P2P'03) — §2's closest relative of hiREP.

TrustMe also stores trust values away from their subject, at *trust-holding
agents* (THAs), but differs from hiREP in every dimension the paper calls
out:

* THAs are **assigned randomly at bootstrap** (by the bootstrap server),
  not chosen and curated by each peer;
* the trust query is a **broadcast** to the whole system (the requestor
  does not know who the THAs are — that is TrustMe's anonymity trick);
* after each transaction the report is **broadcast** again so the partner's
  THAs can store it — two floods per transaction.

Trust values at a THA are the running mean of the (honest or malicious)
reports it has stored.  This baseline exists to show where hiREP's wins
come from: remote storage alone (TrustMe) fixes accuracy poisoning less
than agent *curation* does, and broadcasting twice costs even more than
polling once.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineOutcome, BaselineSystem, draw_vote
from repro.core.config import HiRepConfig
from repro.net.flooding import flood_bfs
from repro.net.latency import LatencyModel
from repro.net.messages import Category

__all__ = ["TrustMeSystem"]


class TrustMeSystem(BaselineSystem):
    """Broadcast-based THA reputation system."""

    def __init__(
        self,
        config: HiRepConfig | None = None,
        *,
        latency_model: LatencyModel | None = None,
        thas_per_peer: int = 3,
    ) -> None:
        super().__init__(config, latency_model=latency_model)
        if thas_per_peer < 1:
            raise ValueError(f"thas_per_peer must be >= 1, got {thas_per_peer}")
        self.thas_per_peer = thas_per_peer
        n = self.config.network_size
        # Bootstrap-server assignment: uniform random THAs per peer (never
        # the peer itself).
        self.thas: list[list[int]] = []
        for ip in range(n):
            candidates = [c for c in range(n) if c != ip]
            idx = self.world.rng_agents.choice(
                len(candidates), size=min(thas_per_peer, len(candidates)), replace=False
            )
            self.thas.append([candidates[int(i)] for i in idx])
        # THA report stores: tha -> subject -> [outcomes]
        self._stores: list[dict[int, list[float]]] = [dict() for _ in range(n)]

    # -- protocol ----------------------------------------------------------

    def run_transaction(
        self, requestor: int | None = None, provider: int | None = None
    ) -> BaselineOutcome:
        req, prov = self.pick_pair(requestor)
        if provider is not None:
            prov = provider
        truth = float(self.truth[prov])

        # 1. Broadcast trust query; THAs of the provider respond.
        flood = flood_bfs(
            self.topology, req, self.config.ttl, online=self.network.is_online
        )
        self.counter.count(Category.FLOOD_QUERY, flood.messages)
        responses: list[float] = []
        arrivals: list[float] = []
        response_messages = 0
        for tha in self.thas[prov]:
            if tha not in flood.visited or tha == req:
                continue
            value = self._tha_value(tha, prov)
            if value is None:
                continue
            responses.append(value)
            depth = flood.depth_of(tha)
            response_messages += depth
            arrivals.append(2.0 * self.network.path_latency(flood.path_to(tha)))
        self.counter.count(Category.FLOOD_RESPONSE, response_messages)
        estimate = float(np.mean(responses)) if responses else 0.5

        # 2. Transaction, then broadcast the report so THAs can store it.
        report_flood = flood_bfs(
            self.topology, req, self.config.ttl, online=self.network.is_online
        )
        self.counter.count(Category.TRANSACTION_REPORT, report_flood.messages)
        honest = not bool(self.malicious[req])
        reported = draw_vote(
            honest, truth, self.rng, self.config.good_rating, self.config.bad_rating
        )
        for tha in self.thas[prov]:
            if tha in report_flood.visited:
                self._stores[tha].setdefault(prov, []).append(reported)

        response_time = self._serialize_at(req, arrivals)
        outcome = BaselineOutcome(
            index=self.transactions_run,
            requestor=req,
            provider=prov,
            estimate=estimate,
            truth=truth,
            squared_error=(estimate - truth) ** 2,
            response_time_ms=response_time,
            messages=flood.messages + response_messages + report_flood.messages,
            voters=len(responses),
        )
        return self._record(outcome)

    def _tha_value(self, tha: int, subject: int) -> float | None:
        reports = self._stores[tha].get(subject)
        if not reports:
            return None
        return float(np.mean(reports))
