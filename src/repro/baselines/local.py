"""Limited reputation sharing baseline (Marti & Garcia-Molina, EC'04 — the
paper's ref [6]).

The opposite extreme from flooding: a peer trusts only its *own* past
experience with a provider (optionally widened to a small fixed friend
set), so a trust check costs zero network messages — but coverage is
terrible, because in a large network the requestor has usually never met a
given provider.  Including it brackets hiREP from below on traffic just as
pure voting brackets it from above, which is the interesting comparison
for the extension experiments:

    local (0 msgs, no coverage)  <  hiREP (O(c), high coverage)
                                 <  voting (O(n), full coverage)
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineOutcome, BaselineSystem, draw_vote
from repro.core.config import HiRepConfig
from repro.net.latency import LatencyModel

__all__ = ["LocalReputationSystem"]


class LocalReputationSystem(BaselineSystem):
    """Trust from first-hand (plus optional friend-set) history only."""

    def __init__(
        self,
        config: HiRepConfig | None = None,
        *,
        latency_model: LatencyModel | None = None,
        friends_per_peer: int = 0,
    ) -> None:
        super().__init__(config, latency_model=latency_model)
        if friends_per_peer < 0:
            raise ValueError(f"friends_per_peer must be >= 0, got {friends_per_peer}")
        n = self.config.network_size
        # history[peer][provider] -> list of observed outcomes
        self._history: list[dict[int, list[float]]] = [dict() for _ in range(n)]
        self.friends: list[list[int]] = []
        for ip in range(n):
            if friends_per_peer == 0:
                self.friends.append([])
                continue
            pool = [c for c in range(n) if c != ip]
            idx = self.world.rng_agents.choice(
                len(pool), size=min(friends_per_peer, len(pool)), replace=False
            )
            self.friends.append([pool[int(i)] for i in idx])
        self.coverage_hits = 0
        self.coverage_misses = 0

    def _estimate(self, requestor: int, provider: int) -> tuple[float, int]:
        """(estimate, friend messages): own history, then friends' history."""
        own = self._history[requestor].get(provider)
        if own:
            self.coverage_hits += 1
            return float(np.mean(own)), 0
        shared: list[float] = []
        messages = 0
        for friend in self.friends[requestor]:
            messages += 2  # ask + answer, direct unicast
            theirs = self._history[friend].get(provider)
            if theirs:
                shared.extend(theirs)
        if shared:
            self.coverage_hits += 1
            return float(np.mean(shared)), messages
        self.coverage_misses += 1
        return 0.5, messages  # never met: uninformative prior

    def run_transaction(
        self, requestor: int | None = None, provider: int | None = None
    ) -> BaselineOutcome:
        req, prov = self.pick_pair(requestor)
        if provider is not None:
            prov = provider
        truth = float(self.truth[prov])
        estimate, messages = self._estimate(req, prov)
        self.counter.count("control", messages)

        # The transaction happens; the requestor records what it observed
        # (malicious peers poison their own books deliberately so their
        # *shared* history misleads friends).
        honest = not bool(self.malicious[req])
        observed = draw_vote(
            honest, truth, self.rng, self.config.good_rating, self.config.bad_rating
        )
        self._history[req].setdefault(prov, []).append(observed)

        outcome = BaselineOutcome(
            index=self.transactions_run,
            requestor=req,
            provider=prov,
            estimate=estimate,
            truth=truth,
            squared_error=(estimate - truth) ** 2,
            response_time_ms=float("nan") if messages == 0 else float(messages),
            messages=messages,
            voters=0,
        )
        return self._record(outcome)

    def coverage(self) -> float:
        """Fraction of trust checks answered by any first/second-hand data."""
        total = self.coverage_hits + self.coverage_misses
        if total == 0:
            return float("nan")
        return self.coverage_hits / total
