"""Gossip-sampling baseline (Differential-Gossip-style aggregation).

The reputation-aggregation follow-ups to polling (e.g. *Differential
Gossip* by Gupta & Singh) replace the full broadcast with randomized
gossip: a trust check contacts a small random sample of the overlay and
weights nearer (fresher) opinions more than ones relayed from far away.
This baseline implements that middle ground between the repo's two
traffic extremes:

    local (0 msgs)  <  gossip (O(fanout^rounds))  <  hiREP (O(c))
                                                  <  voting (O(n))

Mechanics per transaction: the requestor seeds a gossip tree — each
frontier node forwards the query to ``fanout`` random online overlay
neighbours, ``rounds`` hops deep.  Every contacted node votes via the
shared §5.2 rating model; votes return along the tree's reverse path and
are weighted ``1/depth`` (the *differential* part: opinion weight decays
with relay distance).  Arrivals FIFO-serialize on the requestor's access
link like every other flooding baseline.

It is also the kernel's reference "new backend" — a ~100-line plugin
registered with :mod:`repro.core.registry` (see ``docs/architecture.md``
for the recipe it follows).
"""

from __future__ import annotations

from repro.baselines.base import BaselineOutcome, BaselineSystem, draw_vote
from repro.core.config import HiRepConfig
from repro.net.latency import LatencyModel
from repro.net.messages import Category

__all__ = ["GossipSystem"]


class GossipSystem(BaselineSystem):
    """Randomized-gossip polling with distance-discounted votes."""

    def __init__(
        self,
        config: HiRepConfig | None = None,
        *,
        latency_model: LatencyModel | None = None,
        fanout: int = 3,
        rounds: int = 2,
    ) -> None:
        super().__init__(config, latency_model=latency_model)
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        self.fanout = fanout
        self.rounds = rounds

    def _gossip_tree(self, root: int) -> dict[int, int]:
        """Sample the gossip tree; returns node -> parent (root excluded)."""
        parent: dict[int, int] = {}
        frontier = [root]
        for _ in range(self.rounds):
            next_frontier: list[int] = []
            for node in frontier:
                fresh = [
                    n
                    for n in self.topology.neighbors(node)
                    if n != root
                    and n not in parent
                    and self.network.is_online(n)
                ]
                if not fresh:
                    continue
                take = min(self.fanout, len(fresh))
                picked = self.rng.choice(len(fresh), size=take, replace=False)
                for i in sorted(int(p) for p in picked):
                    child = fresh[i]
                    if child in parent:
                        continue
                    parent[child] = node
                    next_frontier.append(child)
            frontier = next_frontier
        return parent

    def _path_to(self, node: int, parent: dict[int, int], root: int) -> list[int]:
        path = [node]
        while path[-1] != root:
            path.append(parent[path[-1]])
        path.reverse()
        return path

    def run_transaction(
        self, requestor: int | None = None, provider: int | None = None
    ) -> BaselineOutcome:
        req, prov = self.pick_pair(requestor)
        if provider is not None:
            prov = provider
        truth = float(self.truth[prov])

        parent = self._gossip_tree(req)
        query_messages = len(parent)  # one forward per tree edge
        self.counter.count(Category.FLOOD_QUERY, query_messages)

        num = den = 0.0
        voters = 0
        vote_messages = 0
        arrivals: list[float] = []
        for node in parent:
            if node == prov:
                continue
            path = self._path_to(node, parent, req)
            depth = len(path) - 1
            honest = not bool(self.malicious[node])
            vote = draw_vote(
                honest,
                truth,
                self.rng,
                self.config.good_rating,
                self.config.bad_rating,
            )
            weight = 1.0 / depth
            num += weight * vote
            den += weight
            voters += 1
            vote_messages += depth  # the vote retraces the gossip path
            arrivals.append(2.0 * self.network.path_latency(path))
        self.counter.count(Category.FLOOD_RESPONSE, vote_messages)

        estimate = num / den if den > 0 else 0.5
        outcome = BaselineOutcome(
            index=self.transactions_run,
            requestor=req,
            provider=prov,
            estimate=estimate,
            truth=truth,
            squared_error=(estimate - truth) ** 2,
            response_time_ms=self._serialize_at(req, arrivals),
            messages=query_messages + vote_messages,
            voters=voters,
        )
        return self._record(outcome)
