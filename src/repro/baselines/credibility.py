"""Credibility-weighted polling (P2PREP's enhanced direction).

Pure voting treats every vote equally — that is exactly what Fig. 7
punishes.  The P2PREP line of work (Cornelli et al., the paper's ref [16])
proposed weighting votes by the *credibility* of the voter, learned from
past transactions.  This baseline implements that fix while keeping the
flooding transport, which cleanly separates hiREP's two ideas:

* **curation** (weighting/evicting unreliable opinion sources) — shared by
  this system, and responsible for the accuracy win;
* **hierarchy** (a small agent community instead of polling everyone) —
  unique to hiREP, and responsible for the O(C) traffic and anonymity.

With credibility, voting's MSE converges like hiREP's — but it still pays
O(network) messages per query and exposes every voter's identity, which is
precisely the gap the paper's design targets.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineOutcome, BaselineSystem, draw_vote
from repro.core.config import HiRepConfig
from repro.core.expertise import consistent
from repro.net.flooding import flood_bfs
from repro.net.latency import LatencyModel
from repro.net.messages import Category

__all__ = ["CredibilityVotingSystem"]


class CredibilityVotingSystem(BaselineSystem):
    """Flooding poll with per-voter credibility EWMA at each requestor."""

    def __init__(
        self,
        config: HiRepConfig | None = None,
        *,
        latency_model: LatencyModel | None = None,
        alpha: float | None = None,
    ) -> None:
        super().__init__(config, latency_model=latency_model)
        self.alpha = alpha if alpha is not None else self.config.expertise_alpha
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must be in (0,1), got {self.alpha}")
        # credibility[requestor][voter] — learned independently per peer,
        # like hiREP's expertise; prior 1.0 mirrors the paper's initial
        # expertise assignment.
        self._credibility: list[dict[int, float]] = [
            dict() for _ in range(self.config.network_size)
        ]
        # Track-record counts drive the same confidence discount hiREP's
        # estimator uses, so the comparison is apples to apples.
        self._updates: list[dict[int, int]] = [
            dict() for _ in range(self.config.network_size)
        ]

    def credibility_of(self, requestor: int, voter: int) -> float:
        return self._credibility[requestor].get(voter, 1.0)

    def run_transaction(
        self, requestor: int | None = None, provider: int | None = None
    ) -> BaselineOutcome:
        req, prov = self.pick_pair(requestor)
        if provider is not None:
            prov = provider
        truth = float(self.truth[prov])

        flood = flood_bfs(
            self.topology, req, self.config.ttl, online=self.network.is_online
        )
        self.counter.count(Category.FLOOD_QUERY, flood.messages)

        votes: list[tuple[int, float]] = []
        vote_messages = 0
        arrivals: list[float] = []
        for node, depth in flood.visited.items():
            if node == req or node == prov:
                continue
            honest = not bool(self.malicious[node])
            votes.append(
                (
                    node,
                    draw_vote(
                        honest,
                        truth,
                        self.rng,
                        self.config.good_rating,
                        self.config.bad_rating,
                    ),
                )
            )
            vote_messages += depth
            arrivals.append(2.0 * self.network.path_latency(flood.path_to(node)))
        self.counter.count(Category.FLOOD_RESPONSE, vote_messages)

        cred = self._credibility[req]
        counts = self._updates[req]
        num = den = 0.0
        for voter, value in votes:
            n = counts.get(voter, 0)
            weight = cred.get(voter, 1.0) * (n / (n + 1.0))
            num += weight * value
            den += weight
        if den > 0:
            estimate = num / den
        elif votes:
            estimate = float(np.mean([v for _n, v in votes]))
        else:
            estimate = 0.5

        # Observe the download, update each voter's credibility.
        for voter, value in votes:
            a_c = 1.0 if consistent(value, truth) else 0.0
            prev = cred.get(voter, 1.0)
            cred[voter] = self.alpha * a_c + (1.0 - self.alpha) * prev
            counts[voter] = counts.get(voter, 0) + 1

        response_time = self._serialize_at(req, arrivals)
        outcome = BaselineOutcome(
            index=self.transactions_run,
            requestor=req,
            provider=prov,
            estimate=estimate,
            truth=truth,
            squared_error=(estimate - truth) ** 2,
            response_time_ms=response_time,
            messages=flood.messages + vote_messages,
            voters=len(votes),
        )
        return self._record(outcome)
