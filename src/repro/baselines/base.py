"""Common scaffolding for baseline reputation systems.

Each baseline runs over a :class:`~repro.core.world.World` derived from the
same :class:`~repro.core.config.HiRepConfig` (and seed) as the hiREP system
it is compared against, and records the same three metrics through the
shared :class:`~repro.core.runtime.TransactionRuntime`, so experiment code
treats hiREP and every baseline uniformly (they all satisfy
:class:`~repro.core.interface.ReputationSystem`).
"""

from __future__ import annotations

from repro.core.config import HiRepConfig
from repro.core.interface import Outcome
from repro.core.runtime import TransactionRuntime, draw_vote
from repro.core.world import World
from repro.net.latency import LatencyModel

__all__ = ["BaselineOutcome", "BaselineSystem", "draw_vote"]

#: Historical alias — baseline outcomes now use the unified kernel record.
BaselineOutcome = Outcome


class BaselineSystem(TransactionRuntime):
    """Base class for baselines: world construction over the shared runtime."""

    def __init__(
        self,
        config: HiRepConfig | None = None,
        *,
        latency_model: LatencyModel | None = None,
    ) -> None:
        config = config or HiRepConfig()
        super().__init__(config, World.from_config(config, latency_model))
        self.malicious = self.world.malicious_peer
