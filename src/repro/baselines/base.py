"""Common scaffolding for baseline reputation systems.

Each baseline runs over a :class:`~repro.core.world.World` derived from the
same :class:`~repro.core.config.HiRepConfig` (and seed) as the hiREP system
it is compared against, and records the same three metrics, so experiment
code can treat hiREP and every baseline uniformly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.config import HiRepConfig
from repro.core.world import World
from repro.errors import SimulationError
from repro.net.latency import LatencyModel
from repro.sim.metrics import MSETracker, ResponseTimeTracker

__all__ = ["BaselineOutcome", "BaselineSystem", "draw_vote"]


@dataclass
class BaselineOutcome:
    """Per-transaction record mirroring hiREP's TransactionOutcome."""

    index: int
    requestor: int
    provider: int
    estimate: float
    truth: float
    squared_error: float
    response_time_ms: float
    messages: int
    voters: int


def draw_vote(
    honest: bool,
    truth: float,
    rng: np.random.Generator,
    good_range: tuple[float, float],
    bad_range: tuple[float, float],
) -> float:
    """One peer's vote about a subject (§5.2 rating model).

    Honest peers rate consistently with the truth; malicious peers invert.
    """
    trustable = truth >= 0.5
    use_good = trustable if honest else not trustable
    lo, hi = good_range if use_good else bad_range
    return float(rng.uniform(lo, hi))


class BaselineSystem(abc.ABC):
    """Base class: world construction, metric plumbing, run loop."""

    def __init__(
        self,
        config: HiRepConfig | None = None,
        *,
        latency_model: LatencyModel | None = None,
    ) -> None:
        self.config = config or HiRepConfig()
        self.world = World.from_config(self.config, latency_model)
        self.network = self.world.network
        self.topology = self.world.topology
        self.truth = self.world.truth
        self.malicious = self.world.malicious_peer
        self.rng = self.world.rng_workload
        self.mse = MSETracker()
        self.response_times = ResponseTimeTracker()
        self.outcomes: list[BaselineOutcome] = []
        self.transactions_run = 0

    @property
    def counter(self):
        return self.network.counter

    def pick_pair(self, requestor: int | None = None) -> tuple[int, int]:
        online = self.network.online_nodes()
        if len(online) < 2:
            raise SimulationError("fewer than two online nodes")
        if requestor is None:
            requestor = online[int(self.rng.integers(0, len(online)))]
        provider = requestor
        while provider == requestor:
            provider = online[int(self.rng.integers(0, len(online)))]
        return requestor, provider

    @abc.abstractmethod
    def run_transaction(
        self, requestor: int | None = None, provider: int | None = None
    ) -> BaselineOutcome:
        """Execute one transaction cycle."""

    def run(
        self, transactions: int, requestor: int | None = None
    ) -> list[BaselineOutcome]:
        return [self.run_transaction(requestor) for _ in range(transactions)]

    def reset_metrics(self) -> None:
        self.counter.reset()
        self.mse.reset()
        self.response_times.reset()
        self.outcomes.clear()
        self.transactions_run = 0

    def _record(self, outcome: BaselineOutcome) -> BaselineOutcome:
        self.mse.record(outcome.estimate, outcome.truth)
        if not np.isnan(outcome.response_time_ms):
            self.response_times.record(outcome.response_time_ms)
        self.counter.snapshot()
        self.outcomes.append(outcome)
        self.transactions_run += 1
        return outcome
