"""Campaign execution + deterministic scorecard reports.

:func:`run_campaign` compiles a :class:`~repro.campaigns.specs.Campaign`
to orchestrator jobs, runs them through a
:class:`~repro.exec.scheduler.SweepScheduler` (cache, retries, pool
fan-out, telemetry all inherited), and folds the cell payloads into a
**report**: one :class:`~repro.campaigns.scorecard.RobustnessScorecard`
per (scenario, system) pair, plus degradation deltas of every attacked
card against the same system's clean reference card.

Reports are byte-deterministic on purpose: no timestamps, host paths,
elapsed times or cache statistics appear in the JSON — two runs of the
same campaign (on any ``PYTHONHASHSEED``, cached or not) must serialise
identically, which is what lets CI diff against a committed golden file.
Run-dependent facts (cache hits, wall time) belong to the manifest and
the CLI's stderr, not the report.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.campaigns.scorecard import (
    RobustnessScorecard,
    aggregate_cells,
    degradation_deltas,
)
from repro.campaigns.specs import Campaign
from repro.exec.cache import ResultCache
from repro.exec.job import canonical_json
from repro.exec.manifest import RunManifest
from repro.exec.scheduler import JobOutcome, SweepScheduler

__all__ = [
    "build_report",
    "diff_reports",
    "load_report",
    "render_markdown",
    "run_campaign",
    "write_report",
]


def run_campaign(
    campaign: Campaign,
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    manifest: RunManifest | None = None,
    timeout_s: float | None = None,
    retries: int = 1,
    progress: Any = None,
    telemetry_dir: str | None = None,
) -> tuple[dict, list[JobOutcome]]:
    """Run every campaign cell and build the report.

    Returns ``(report, outcomes)`` — outcomes ride along for callers that
    want run-dependent facts (cache hits, elapsed) the report excludes.
    """
    scheduler = SweepScheduler(
        jobs=jobs,
        cache=cache,
        manifest=manifest,
        timeout_s=timeout_s,
        retries=retries,
        progress=progress,
        telemetry_dir=telemetry_dir,
    )
    outcomes = scheduler.run(campaign.compile())
    return build_report(campaign, outcomes), outcomes


def _cell_payloads(campaign: Campaign, outcomes: list[JobOutcome]) -> list[dict]:
    """One cell payload per compiled job, scheduler failures included.

    A job the scheduler gave up on (worker died, retries exhausted) never
    produced a payload; it becomes a structured ``cell_error`` with stage
    ``job`` so the scorecard degrades instead of the report crashing.
    """
    cells: list[dict] = []
    for (scenario, system, seed), outcome in zip(campaign.cells(), outcomes):
        if outcome.ok:
            # Reattach the display name: compiled kwargs carry a fixed
            # placeholder so renaming a scenario keeps its cache key.
            cells.append({**outcome.value(), "scenario": scenario.name})
        else:
            cells.append(
                {
                    "scenario": scenario.name,
                    "scenario_hash": scenario.hash(),
                    "system": system,
                    "seed": seed,
                    "clean": scenario.is_clean(),
                    "scorecard": None,
                    "cell_error": {
                        "stage": "job",
                        "type": "JobFailure",
                        "message": outcome.error or "job failed",
                    },
                }
            )
    return cells


def build_report(campaign: Campaign, outcomes: list[JobOutcome]) -> dict:
    """Fold one outcome per compiled cell into the campaign report."""
    expected = len(campaign.cells())
    if len(outcomes) != expected:
        raise ValueError(
            f"campaign {campaign.name!r} compiled {expected} cells "
            f"but got {len(outcomes)} outcomes"
        )
    cells = _cell_payloads(campaign, outcomes)

    # Group cells per (scenario, system) in compile order: seeds are the
    # innermost loop, so each pair's cells are contiguous.
    per_pair: dict[tuple[str, str], list[dict]] = {}
    for cell in cells:
        per_pair.setdefault((cell["scenario"], cell["system"]), []).append(cell)

    cards: list[RobustnessScorecard] = []
    clean_by_system: dict[str, dict] = {}
    for scenario in campaign.scenarios:
        for system in campaign.systems:
            card = aggregate_cells(
                scenario.name, system, per_pair[(scenario.name, system)]
            )
            cards.append(card)
            if scenario.is_clean() and card.metrics and system not in clean_by_system:
                clean_by_system[system] = card.metrics

    for scenario in campaign.scenarios:
        if scenario.is_clean():
            continue
        for card in cards:
            if card.scenario != scenario.name:
                continue
            clean = clean_by_system.get(card.system)
            if clean and card.metrics:
                card.deltas = degradation_deltas(card.metrics, clean)

    degraded = sorted(
        {(c.scenario, c.system) for c in cards if c.degraded}
    )
    return {
        "campaign": campaign.name,
        "campaign_hash": campaign.hash(),
        "description": campaign.description,
        "systems": list(campaign.systems),
        "seeds": list(campaign.seeds),
        "scenarios": [
            {"name": s.name, "hash": s.hash(), "clean": s.is_clean()}
            for s in campaign.scenarios
        ],
        "scorecards": [c.to_dict() for c in cards],
        "summary": {
            "cells": expected,
            "cells_ok": sum(c.cells_ok for c in cards),
            "degraded_pairs": [list(p) for p in degraded],
        },
    }


# -- serialisation -----------------------------------------------------------


def write_report(report: dict, path: str | Path) -> Path:
    """Canonical-JSON the report to ``path`` (parent dirs created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(canonical_json(report) + "\n", encoding="utf-8")
    return path


def load_report(path: str | Path) -> dict:
    import json

    return json.loads(Path(path).read_text(encoding="utf-8"))


# -- rendering ---------------------------------------------------------------

_COLUMNS = (
    ("mse", "MSE", "{:.4f}"),
    ("detect_tx", "detect@tx", "{:.1f}"),
    ("success_rate", "success", "{:.2f}"),
    ("mean_response_ms", "rt(ms)", "{:.1f}"),
    ("msgs_per_tx", "msgs/tx", "{:.1f}"),
    ("retries_per_tx", "retries/tx", "{:.2f}"),
    ("drops_per_tx", "drops/tx", "{:.2f}"),
    ("churn_events_per_tx", "churn/tx", "{:.2f}"),
)


def _fmt(metrics: dict, key: str, fmt: str) -> str:
    value = metrics.get(key)
    if value is None:
        return "—"
    return fmt.format(value)


def render_markdown(report: dict) -> str:
    """The report as a deterministic markdown scorecard table."""
    lines = [f"# Campaign `{report['campaign']}`", ""]
    if report.get("description"):
        lines += [report["description"], ""]
    lines += [
        f"- hash: `{report['campaign_hash'][:16]}`",
        f"- systems: {', '.join(report['systems'])}",
        f"- seeds: {', '.join(str(s) for s in report['seeds'])}",
        f"- cells: {report['summary']['cells_ok']}/{report['summary']['cells']} ok",
        "",
        "| scenario | system | level | "
        + " | ".join(title for _, title, _ in _COLUMNS)
        + " | ΔMSE |",
        "|" + "---|" * (len(_COLUMNS) + 4),
    ]
    for card in report["scorecards"]:
        metrics = card["metrics"]
        if not metrics:
            row = [card["scenario"], card["system"], "failed"]
            row += ["—"] * (len(_COLUMNS) + 1)
        else:
            row = [card["scenario"], card["system"], metrics.get("attack_level", "?")]
            row += [_fmt(metrics, key, fmt) for key, _, fmt in _COLUMNS]
            deltas = card.get("deltas") or {}
            row.append(
                "—" if "mse_delta" not in deltas else f"{deltas['mse_delta']:+.4f}"
            )
        marker = " ⚠" if card["degraded"] else ""
        row[0] += marker
        lines.append("| " + " | ".join(row) + " |")
    degraded = report["summary"]["degraded_pairs"]
    if degraded:
        lines += ["", "## Degraded cells", ""]
        for card in report["scorecards"]:
            if not card["degraded"]:
                continue
            for err in card["errors"]:
                lines.append(
                    f"- `{card['scenario']}`/`{card['system']}` seed {err['seed']}: "
                    f"[{err['stage']}] {err['type']}: {err['message']}"
                )
    lines.append("")
    return "\n".join(lines)


# -- diffing -----------------------------------------------------------------


def diff_reports(a: dict, b: dict, *, tolerance: float = 0.0) -> list[str]:
    """Human-readable differences between two reports (empty = identical).

    ``tolerance`` allows absolute float drift in scorecard metrics/deltas
    (0.0 = exact, the golden-file default since reports are supposed to be
    byte-deterministic).
    """
    diffs: list[str] = []
    for key in ("campaign", "campaign_hash", "systems", "seeds"):
        if a.get(key) != b.get(key):
            diffs.append(f"{key}: {a.get(key)!r} != {b.get(key)!r}")

    cards_a = {(c["scenario"], c["system"]): c for c in a.get("scorecards", [])}
    cards_b = {(c["scenario"], c["system"]): c for c in b.get("scorecards", [])}
    for pair in sorted(set(cards_a) | set(cards_b)):
        label = f"{pair[0]}/{pair[1]}"
        if pair not in cards_a:
            diffs.append(f"{label}: only in second report")
            continue
        if pair not in cards_b:
            diffs.append(f"{label}: only in first report")
            continue
        ca, cb = cards_a[pair], cards_b[pair]
        if ca["degraded"] != cb["degraded"]:
            diffs.append(f"{label}: degraded {ca['degraded']} != {cb['degraded']}")
        for section in ("metrics", "deltas"):
            ma, mb = ca.get(section) or {}, cb.get(section) or {}
            for key in sorted(set(ma) | set(mb)):
                va, vb = ma.get(key), mb.get(key)
                if va == vb:
                    continue
                if (
                    isinstance(va, (int, float))
                    and isinstance(vb, (int, float))
                    and abs(va - vb) <= tolerance
                ):
                    continue
                diffs.append(f"{label}: {section}.{key} {va!r} != {vb!r}")
    return diffs
