"""Adversarial campaign engine: declarative attack x fault x churn
scenarios, compiled to orchestrator jobs, scored as per-system robustness
scorecards.

Layers (each importable on its own):

* :mod:`repro.campaigns.specs` — the frozen, canonically-hashable DSL
  (``AttackSpec``/``FaultSpec``/``ChurnSpec``/``TopologySpec``/
  ``WorkloadSpec`` -> ``ScenarioSpec`` -> ``Campaign``);
* :mod:`repro.campaigns.attach` — the one way to attach an attack to a
  registry-built system, protocol-level where the hooks exist and
  population-level elsewhere;
* :mod:`repro.campaigns.cells` — the picklable per-(scenario, system,
  seed) worker, with structured ``cell_error`` degradation;
* :mod:`repro.campaigns.scorecard` — metric extraction + aggregation;
* :mod:`repro.campaigns.catalogue` — curated named campaigns;
* :mod:`repro.campaigns.report` — deterministic JSON/markdown reports
  and golden-file diffing (the ``hirep-campaign`` CLI front-end is
  :mod:`repro.campaigns.cli`).
"""

from repro.campaigns.catalogue import (
    CAMPAIGNS,
    campaign_names,
    get_campaign,
    register_campaign,
)
from repro.campaigns.report import (
    build_report,
    diff_reports,
    load_report,
    render_markdown,
    run_campaign,
    write_report,
)
from repro.campaigns.scorecard import RobustnessScorecard
from repro.campaigns.specs import (
    ATTACK_KINDS,
    AttackSpec,
    Campaign,
    ChurnSpec,
    FaultSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    spec_hash,
)

__all__ = [
    "ATTACK_KINDS",
    "AttackSpec",
    "CAMPAIGNS",
    "Campaign",
    "ChurnSpec",
    "FaultSpec",
    "RobustnessScorecard",
    "ScenarioSpec",
    "TopologySpec",
    "WorkloadSpec",
    "build_report",
    "campaign_names",
    "diff_reports",
    "get_campaign",
    "load_report",
    "register_campaign",
    "render_markdown",
    "run_campaign",
    "spec_hash",
    "write_report",
]
