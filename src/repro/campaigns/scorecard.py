"""Robustness scorecard: what one campaign cell measures, and how cells
aggregate into per-(scenario, system) cards.

Cell metrics (all plain floats so payloads survive the job-cache JSON
round-trip):

* ``mse`` — tail MSE of the trust estimates under the scenario;
* ``detect_tx`` — time-to-detect: the first transaction index from which
  a ``window``-wide rolling MSE stays below ``threshold`` (``None`` when
  the system never pins the malicious population down);
* ``success_rate`` — fraction of transactions that got an answer;
* ``msgs_per_tx`` / ``retries_per_tx`` / ``drops_per_tx`` /
  ``churn_events_per_tx`` — overhead accounting;
* ``attack_level`` — ``protocol`` / ``config`` / ``none`` (see
  :mod:`repro.campaigns.attach`).

:func:`aggregate_cells` averages per-seed cells; the report layer then
adds degradation deltas against the campaign's clean reference cells.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = [
    "DETECT_THRESHOLD",
    "DETECT_WINDOW",
    "RobustnessScorecard",
    "aggregate_cells",
    "cell_metrics",
    "degradation_deltas",
    "success_rate",
    "time_to_detect",
]

#: rolling-MSE detection defaults: "the trust estimates are back under
#: control" means a 10-transaction window averaging below 0.05.
DETECT_THRESHOLD = 0.05
DETECT_WINDOW = 10

#: metric keys that participate in degradation deltas vs the clean cell.
DELTA_METRICS = ("mse", "success_rate", "msgs_per_tx", "retries_per_tx")


def time_to_detect(
    squared_errors: Sequence[float],
    *,
    threshold: float = DETECT_THRESHOLD,
    window: int = DETECT_WINDOW,
) -> int | None:
    """First index from which the rolling MSE stays below ``threshold``.

    Detection is *sustained*: every ``window``-wide mean from the returned
    index to the end of the run must sit below the threshold — a single
    lucky window during an oscillation's honest phase does not count.
    Returns ``None`` when no such index exists (including runs shorter
    than ``window``).
    """
    sq = [float(v) for v in squared_errors]
    n = len(sq)
    if n < window or window < 1:
        return None
    # Rolling means via a prefix sum, then scan from the right for the
    # earliest index where every later window is under threshold.
    prefix = [0.0]
    for v in sq:
        prefix.append(prefix[-1] + v)
    means = [
        (prefix[i + window] - prefix[i]) / window for i in range(n - window + 1)
    ]
    earliest: int | None = None
    for i in range(len(means) - 1, -1, -1):
        if means[i] < threshold:
            earliest = i
        else:
            break
    return earliest


def success_rate(outcomes: Sequence[Any]) -> float:
    """Fraction of transactions that produced a usable answer.

    hiREP outcomes carry ``answered`` (agents that responded), poll-style
    baselines carry ``voters``; systems with neither (purely local
    history) count a transaction as successful when it produced a real
    estimate.
    """
    if not outcomes:
        return 0.0
    hits = 0
    for o in outcomes:
        if o.answered > 0 or o.voters > 0:
            hits += 1
        elif o.asked == 0 and o.voters == 0 and not math.isnan(o.estimate):
            hits += 1
    return hits / len(outcomes)


def cell_metrics(
    system: Any,
    transactions: int,
    *,
    fault_plane: Any = None,
    churn_model: Any = None,
    attack_level: str = "none",
    detect_threshold: float = DETECT_THRESHOLD,
    detect_window: int = DETECT_WINDOW,
) -> dict:
    """Read one finished run's scorecard metrics off a live system."""
    tail = max(transactions // 3, min(5, transactions))
    sq = [float(v) for v in system.mse.squared_errors]
    retries = 0.0
    if hasattr(system, "retry_stats"):
        retries = system.retry_stats()["retries_sent"] / transactions
    drops = 0.0
    if fault_plane is not None:
        drops = fault_plane.stats.drops / transactions
    churn_events = 0.0
    if churn_model is not None:
        churn_events = (
            churn_model.stats.departures + churn_model.stats.rejoins
        ) / transactions
    mean_rt = system.response_times.mean()
    return {
        "mean_response_ms": None if math.isnan(mean_rt) else float(mean_rt),
        "attack_level": attack_level,
        "transactions": int(transactions),
        "mse": float(system.mse.tail_mse(tail)),
        "detect_tx": time_to_detect(
            sq, threshold=detect_threshold, window=detect_window
        ),
        "success_rate": success_rate(system.outcomes),
        "msgs_per_tx": system.counter.total / transactions,
        "retries_per_tx": float(retries),
        "drops_per_tx": float(drops),
        "churn_events_per_tx": float(churn_events),
    }


@dataclass
class RobustnessScorecard:
    """Aggregated robustness of one system under one scenario.

    ``metrics`` holds seed-averaged values; ``deltas`` (set by the report
    layer) holds attacked-minus-clean differences for
    :data:`DELTA_METRICS`.  ``degraded`` is true when any seed's cell
    failed — its structured error rides in ``errors``.
    """

    scenario: str
    system: str
    seeds: list[int] = field(default_factory=list)
    cells_ok: int = 0
    metrics: dict = field(default_factory=dict)
    deltas: dict | None = None
    degraded: bool = False
    errors: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "system": self.system,
            "seeds": list(self.seeds),
            "cells_ok": self.cells_ok,
            "metrics": dict(self.metrics),
            "deltas": None if self.deltas is None else dict(self.deltas),
            "degraded": self.degraded,
            "errors": list(self.errors),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RobustnessScorecard":
        return cls(
            scenario=d["scenario"],
            system=d["system"],
            seeds=list(d.get("seeds", [])),
            cells_ok=int(d.get("cells_ok", 0)),
            metrics=dict(d.get("metrics", {})),
            deltas=None if d.get("deltas") is None else dict(d["deltas"]),
            degraded=bool(d.get("degraded", False)),
            errors=list(d.get("errors", [])),
        )


def _mean(values: list[float]) -> float:
    return sum(values) / len(values)


def aggregate_cells(
    scenario: str, system: str, cells: list[dict]
) -> RobustnessScorecard:
    """Fold per-seed cell payloads into one scorecard.

    ``cells`` are ``campaign_cell`` payloads (in seed order).  Cells that
    carry a ``cell_error`` mark the card degraded and are excluded from
    the averages; ``detect_tx`` averages over detected seeds only, with
    ``detect_rate`` recording how many seeds detected at all.
    """
    card = RobustnessScorecard(scenario=scenario, system=system)
    ok: list[dict] = []
    for cell in cells:
        card.seeds.append(cell["seed"])
        error = cell.get("cell_error")
        if error is not None:
            card.degraded = True
            card.errors.append({"seed": cell["seed"], **error})
        else:
            ok.append(cell["scorecard"])
    card.cells_ok = len(ok)
    if not ok:
        return card

    metrics: dict = {}
    for key in (
        "mse",
        "success_rate",
        "msgs_per_tx",
        "retries_per_tx",
        "drops_per_tx",
        "churn_events_per_tx",
    ):
        metrics[key] = _mean([c[key] for c in ok])
    detected = [c["detect_tx"] for c in ok if c["detect_tx"] is not None]
    metrics["detect_tx"] = _mean([float(d) for d in detected]) if detected else None
    metrics["detect_rate"] = len(detected) / len(ok)
    timed = [c["mean_response_ms"] for c in ok if c.get("mean_response_ms") is not None]
    metrics["mean_response_ms"] = _mean(timed) if timed else None
    metrics["transactions"] = ok[0]["transactions"]
    levels = sorted({c["attack_level"] for c in ok})
    metrics["attack_level"] = levels[0] if len(levels) == 1 else "/".join(levels)
    card.metrics = metrics
    return card


def degradation_deltas(attacked: dict, clean: dict) -> dict:
    """Attacked-minus-clean metric deltas (the robustness headline)."""
    deltas: dict = {}
    for key in DELTA_METRICS:
        if key in attacked and key in clean:
            deltas[f"{key}_delta"] = attacked[key] - clean[key]
    return deltas
