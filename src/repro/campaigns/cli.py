"""``hirep-campaign`` — plan, run, render and diff robustness campaigns.

Usage::

    hirep-campaign list                      # catalogue with cell counts
    hirep-campaign plan mini                 # compiled cells + job keys
    hirep-campaign run mini --out out/mini   # run; writes report.json/.md
    hirep-campaign report out/mini/report.json
    hirep-campaign diff golden.json out/mini/report.json --exit-code

``run`` separates deterministic output from run-dependent chatter: the
report (JSON and markdown) contains no timestamps, paths, cache counts or
elapsed times — two runs of the same campaign write byte-identical files,
which is what ``diff --exit-code`` against a committed golden report
checks in CI.  Cache hits and wall time go to stderr only.

Exit codes: ``0`` success; ``1`` reports differ (``diff --exit-code``);
``2`` degraded cells under ``run --strict``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.campaigns.catalogue import campaign_names, get_campaign
from repro.campaigns.report import (
    diff_reports,
    load_report,
    render_markdown,
    run_campaign,
    write_report,
)
from repro.exec.cache import ResultCache
from repro.exec.job import job_key
from repro.exec.manifest import RunManifest

__all__ = ["main"]


class _StderrProgress:
    """Per-cell progress lines on stderr (never in deterministic output)."""

    def update(self, outcome, done: int, total: int) -> None:
        status = "cached" if outcome.cached else ("ok" if outcome.ok else "FAILED")
        print(
            f"[{done}/{total}] {outcome.spec.display()}: {status}",
            file=sys.stderr,
            flush=True,
        )


def _resolve(args: argparse.Namespace):
    campaign = get_campaign(args.campaign)
    if getattr(args, "systems", None):
        campaign = campaign.with_(systems=tuple(args.systems.split(",")))
    if getattr(args, "seeds", None):
        campaign = campaign.with_(
            seeds=tuple(int(s) for s in args.seeds.split(","))
        )
    return campaign


# -- list --------------------------------------------------------------------


def cmd_list(args: argparse.Namespace) -> int:
    names = campaign_names()
    width = max(len(n) for n in names)
    for name in names:
        campaign = get_campaign(name)
        cells = len(campaign.cells())
        print(
            f"{name:<{width}}  {len(campaign.scenarios)} scenario(s) x "
            f"{len(campaign.systems)} system(s) x {len(campaign.seeds)} seed(s)"
            f" = {cells} cells"
        )
        if args.verbose and campaign.description:
            print(f"{'':<{width}}  {campaign.description}")
    return 0


# -- plan --------------------------------------------------------------------


def cmd_plan(args: argparse.Namespace) -> int:
    campaign = _resolve(args)
    if args.json:
        from repro.exec.job import canonical_json

        print(canonical_json(campaign.to_dict()))
        return 0
    print(f"campaign {campaign.name} ({campaign.hash()[:16]})")
    if campaign.description:
        print(f"  {campaign.description}")
    for spec in campaign.compile():
        print(f"  {job_key(spec)[:16]}  {spec.display()}")
    return 0


# -- run ---------------------------------------------------------------------


def cmd_run(args: argparse.Namespace) -> int:
    campaign = _resolve(args)
    out = Path(args.out or f"results/campaigns/{campaign.name}")
    out.mkdir(parents=True, exist_ok=True)

    cache = None if args.no_cache else ResultCache(args.cache or out / "cache")
    progress = _StderrProgress() if args.progress else None
    # wall time goes through the one audited bridge (TNT001): elapsed time
    # is stderr-only operator telemetry, never part of the report artifact
    from repro.obs.clock import WallClock

    stopwatch = WallClock()
    with RunManifest(out / "manifest.jsonl") as manifest:
        manifest.append(
            "campaign",
            name=campaign.name,
            hash=campaign.hash(),
            cells=len(campaign.cells()),
        )
        report, outcomes = run_campaign(
            campaign,
            jobs=args.jobs,
            cache=cache,
            manifest=manifest,
            timeout_s=args.timeout,
            retries=args.retries,
            progress=progress,
            telemetry_dir=args.telemetry,
        )
    elapsed = stopwatch.now / 1000.0

    report_path = write_report(report, out / "report.json")
    md = render_markdown(report)
    (out / "report.md").write_text(md, encoding="utf-8")
    print(md, end="")

    cached = sum(1 for o in outcomes if o.cached)
    failed = sum(1 for o in outcomes if not o.ok)
    print(
        f"{len(outcomes)} cells ({cached} cached, {failed} failed) "
        f"in {elapsed:.1f}s -> {report_path}",
        file=sys.stderr,
    )
    degraded = report["summary"]["degraded_pairs"]
    if degraded:
        pairs = ", ".join("/".join(p) for p in degraded)
        print(f"degraded cells: {pairs}", file=sys.stderr)
        if args.strict:
            return 2
    return 0


# -- report ------------------------------------------------------------------


def cmd_report(args: argparse.Namespace) -> int:
    print(render_markdown(load_report(args.report)), end="")
    return 0


# -- diff --------------------------------------------------------------------


def cmd_diff(args: argparse.Namespace) -> int:
    a = load_report(args.report_a)
    b = load_report(args.report_b)
    diffs = diff_reports(a, b, tolerance=args.tolerance)
    if not diffs:
        print("reports are identical")
        return 0
    for line in diffs:
        print(line)
    return 1 if args.exit_code else 0


# -- entry point -------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hirep-campaign",
        description="adversarial robustness campaigns with per-system scorecards",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="the campaign catalogue")
    p_list.add_argument("-v", "--verbose", action="store_true", help="descriptions too")
    p_list.set_defaults(func=cmd_list)

    def add_selection(p: argparse.ArgumentParser) -> None:
        p.add_argument("campaign", help="catalogue campaign name")
        p.add_argument("--systems", help="override systems (comma-separated)")
        p.add_argument("--seeds", help="override seeds (comma-separated)")

    p_plan = sub.add_parser("plan", help="show the compiled cells")
    add_selection(p_plan)
    p_plan.add_argument("--json", action="store_true", help="canonical campaign JSON")
    p_plan.set_defaults(func=cmd_plan)

    p_run = sub.add_parser("run", help="run a campaign and write its report")
    add_selection(p_run)
    p_run.add_argument("--out", help="output directory (default results/campaigns/NAME)")
    p_run.add_argument("-j", "--jobs", type=int, default=1, help="worker processes")
    p_run.add_argument("--cache", help="result cache directory (default OUT/cache)")
    p_run.add_argument("--no-cache", action="store_true", help="disable the result cache")
    p_run.add_argument("--timeout", type=float, help="per-cell timeout (s, pool mode)")
    p_run.add_argument("--retries", type=int, default=1, help="retries per failed cell")
    p_run.add_argument("--telemetry", help="capture per-cell telemetry bundles here")
    p_run.add_argument("--progress", action="store_true", help="per-cell stderr progress")
    p_run.add_argument(
        "--strict",
        action="store_true",
        help="exit 2 when any cell is degraded (structured cell_error)",
    )
    p_run.set_defaults(func=cmd_run)

    p_rep = sub.add_parser("report", help="render a saved report as markdown")
    p_rep.add_argument("report", help="report.json path")
    p_rep.set_defaults(func=cmd_report)

    p_diff = sub.add_parser("diff", help="compare two saved reports")
    p_diff.add_argument("report_a", help="baseline report.json (e.g. the golden file)")
    p_diff.add_argument("report_b", help="comparison report.json")
    p_diff.add_argument(
        "--tolerance", type=float, default=0.0, help="absolute float drift allowed"
    )
    p_diff.add_argument(
        "--exit-code", action="store_true", help="exit 1 when the reports differ"
    )
    p_diff.set_defaults(func=cmd_diff)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
