"""The campaign cell: one (scenario, system, seed) run as a picklable job.

:func:`campaign_cell` is the ``module.func`` every compiled campaign
:class:`~repro.exec.job.JobSpec` names, so it follows the worker
contract: scalar/JSON arguments in, JSON-able payload out, everything
built from scratch inside the call.  The scenario attaches to a
registry-built system **from the outside** (the same pattern as
:mod:`repro.obs`): faults install on the network post-build, churn is
stepped externally between transactions, and attacks go through
:mod:`repro.campaigns.attach` — protocol code is never scenario-aware.

Failure contract (the sweep must survive a broken cell): any exception
during config construction, world build, attachment, or the run itself is
caught and returned as a structured ``cell_error`` with the stage it
died in — the scheduler records a *successful* job whose payload says the
cell is degraded, ``hirep-campaign run --strict`` turns that into a
non-zero exit, and the scorecard marks the (scenario, system) pair
degraded instead of the whole campaign crashing.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.campaigns.scorecard import cell_metrics
from repro.campaigns.specs import ScenarioSpec

__all__ = ["campaign_cell"]


def _cell_error(stage: str, exc: BaseException) -> dict:
    return {
        "stage": stage,
        "type": type(exc).__name__,
        "message": str(exc),
    }


def _run_span(
    system: Any,
    transactions: int,
    requestor: int | None,
    churn_model: Any,
    churn_rng: np.random.Generator | None,
) -> None:
    """Run ``transactions`` with churn stepped externally between them."""
    protect = () if requestor is None else (requestor,)
    for _ in range(transactions):
        if churn_model is not None:
            churn_model.step(system.network, churn_rng, extra_protected=protect)
        system.run_transaction(requestor)


def campaign_cell(scenario: dict, system: str, seed: int) -> dict:
    """Run one campaign cell; returns its scorecard (or structured error).

    ``scenario`` is a ``ScenarioSpec.to_dict()`` payload — plain data, so
    the spec's canonical hash, not any live object, is what crossed the
    process boundary.
    """
    spec = ScenarioSpec.from_dict(scenario)
    base = {
        "scenario": spec.name,
        "scenario_hash": spec.hash(),
        "system": system,
        "seed": int(seed),
        "clean": spec.is_clean(),
    }

    from repro.campaigns.attach import (
        attack_build_opts,
        attack_config,
        attack_rng,
        attach_attack,
        supports_protocol_attacks,
    )
    from repro.core.registry import build_system
    from repro.net.faults import FaultPlane

    workload = spec.workload
    requestor = workload.requestor
    exclude = set() if requestor is None else {requestor}

    # -- config -------------------------------------------------------------
    try:
        cfg = workload.build_config(int(seed), spec.topology)
        # The attack's config component depends on whether protocol-level
        # hooks will also attach; that capability is static per system
        # kind, so decide it from the name and let attach_attack's own
        # runtime probe be the guard for foreign "hirep" registrations.
        protocol = system == "hirep"
        attacked_cfg = attack_config(spec.attack, cfg, protocol=protocol)
        build_opts = attack_build_opts(spec.attack, protocol=protocol)
    except Exception as exc:
        return {**base, "scorecard": None, "cell_error": _cell_error("config", exc)}

    # -- build + attach ------------------------------------------------------
    try:
        instance = build_system(system, attacked_cfg, **build_opts)
        if protocol and not supports_protocol_attacks(instance):
            # A registry kind named "hirep" without the hooks — rebuild
            # under the population-level interpretation instead.
            attacked_cfg = attack_config(spec.attack, cfg, protocol=False)
            instance = build_system(system, attacked_cfg)

        models = spec.fault.build_models(workload.network_size, exclude=exclude)
        plane = FaultPlane(models, seed=int(seed) + 17) if models else None
        if plane is not None:
            plane.install(instance.network)

        churn_model = spec.churn.build(protected=exclude)
        churn_rng = (
            np.random.default_rng(int(seed) + 101) if churn_model is not None else None
        )

        handle = attach_attack(instance, spec.attack, attack_rng(spec.attack, int(seed)))
    except Exception as exc:
        return {**base, "scorecard": None, "cell_error": _cell_error("attach", exc)}

    # -- run -----------------------------------------------------------------
    try:
        if hasattr(instance, "bootstrap"):
            instance.bootstrap()
        instance.reset_metrics()
        transactions = workload.transactions
        done = 0
        for at, action in sorted(handle.events, key=lambda e: e[0]):
            at = min(max(at, done), transactions)
            _run_span(instance, at - done, requestor, churn_model, churn_rng)
            done = at
            action(instance)
        _run_span(instance, transactions - done, requestor, churn_model, churn_rng)
    except Exception as exc:
        return {**base, "scorecard": None, "cell_error": _cell_error("run", exc)}

    metrics = cell_metrics(
        instance,
        workload.transactions,
        fault_plane=plane,
        churn_model=churn_model,
        attack_level=handle.level,
    )
    return {**base, "scorecard": metrics, "cell_error": None}
