"""The one way to attach an attack to a reputation system.

Before the campaign engine, every experiment wired attacks by hand —
robustness built its own ``SybilOperator``, picked its own compromised
sets, and the collusion sweep rewrote config fields inline.  This module
centralises that policy behind three entry points keyed on an
:class:`~repro.campaigns.specs.AttackSpec`:

* :func:`attack_config` — the config-level component of the attack
  (attacker ratios, turncoat fractions, population-level fallbacks);
* :func:`attack_build_opts` — build-time options for the registry
  (currently: the oscillating model factory for hiREP);
* :func:`attach_attack` — post-build installation on a live system
  (sybil operator, forged-discovery hook, scheduled identity resets),
  returning an :class:`AttackHandle` describing what actually attached.

Attachment degrades by capability, not by crashing: systems without the
hiREP hooks (``discovery_list_hook``, peer key material) get the
population-level interpretation of the same attack — ``fraction`` of the
participants malicious, the reading Fig. 7 already uses for the voting
baseline — and the handle records ``level="config"`` so scorecards can
tell protocol-level pressure from the fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.campaigns.specs import AttackSpec
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import HiRepConfig

__all__ = [
    "AttackHandle",
    "attach_attack",
    "attack_build_opts",
    "attack_config",
    "compromised_nodes",
    "supports_protocol_attacks",
]

#: seed offset for the attack plane's own generator — like the fault
#: plane, attacks draw from a private stream so attaching one never
#: perturbs the topology/key/workload streams.
ATTACK_SEED_OFFSET = 7717


@dataclass
class AttackHandle:
    """What :func:`attach_attack` actually installed.

    ``events`` schedules mid-run actions for the cell driver: each entry
    is ``(transaction_index, action)`` where ``action(system)`` runs after
    that many transactions have completed (whitewash waves re-key their
    providers this way).  ``detail`` carries attack-specific bookkeeping
    (sybil identity count, compromised node count, reset provider ips).
    """

    spec: AttackSpec
    level: str = "none"  # "protocol" | "config" | "none"
    events: list[tuple[int, Callable[[Any], None]]] = field(default_factory=list)
    detail: dict = field(default_factory=dict)


def supports_protocol_attacks(system: Any) -> bool:
    """Does ``system`` expose the hiREP hooks protocol attacks need?"""
    return hasattr(system, "discovery_list_hook") and hasattr(system, "peers")


def compromised_nodes(
    network_size: int, fraction: float, rng: np.random.Generator
) -> set[int]:
    """A random ``fraction`` of node indices (the attacker's foothold)."""
    if not 0.0 <= fraction <= 1.0:
        raise ConfigError(f"fraction must be in [0,1], got {fraction}")
    count = min(int(round(fraction * network_size)), network_size)
    if count == 0:
        return set()
    return {int(i) for i in rng.choice(network_size, size=count, replace=False)}


def attack_rng(spec: AttackSpec, seed: int) -> np.random.Generator:
    """The attack's private generator for ``seed`` (stream-isolated)."""
    return np.random.default_rng(seed + ATTACK_SEED_OFFSET)


def attack_config(
    spec: AttackSpec, config: "HiRepConfig", *, protocol: bool
) -> "HiRepConfig":
    """The config-level component of ``spec`` (see the module docstring)."""
    return spec.transform_config(config, protocol=protocol)


def attack_build_opts(spec: AttackSpec, *, protocol: bool) -> dict:
    """Build-time registry options the attack needs (may be empty)."""
    if not protocol or spec.kind != "oscillation":
        return {}

    def factory(good: bool, rng: np.random.Generator):
        from repro.attacks.oscillation import OscillatingModel
        from repro.core.trust_models import QualityDrivenModel

        if good:
            return QualityDrivenModel(True)
        return OscillatingModel(
            honest_evaluations=spec.start, period=spec.period
        )

    return {"model_factory": factory}


def _whitewash_providers(system: Any, fraction: float) -> list[int]:
    """Even-stride provider picks (deterministic, requestor 0 excluded)."""
    n = system.config.network_size
    count = max(1, int(round(fraction * n)))
    stride = max(1, n // count)
    return [ip for ip in range(1, n, stride)][:count]


def _whitewash_wave(system: Any, providers: list[int]) -> None:
    from repro.attacks.whitewash import whitewash_provider

    for provider in providers:
        whitewash_provider(system, provider)


def attach_attack(
    system: Any, spec: AttackSpec, rng: np.random.Generator
) -> AttackHandle:
    """Install ``spec`` on a live, registry-built system.

    Must run *before* ``bootstrap()``/traffic so discovery sees the forged
    world from the first message.  Returns the handle describing the
    attachment level and any mid-run events the caller must drive.
    """
    if not spec.active:
        return AttackHandle(spec=spec, level="none")
    if spec.kind == "collusion":
        # Collusion lives entirely in the config (attacker ratios); by the
        # time a system exists the colluders are already in place.
        return AttackHandle(spec=spec, level="protocol", detail={"mechanism": "config"})
    if not supports_protocol_attacks(system):
        return AttackHandle(
            spec=spec,
            level="config",
            detail={"mechanism": "population-level malicious fraction"},
        )

    n = system.config.network_size
    if spec.kind == "sybil":
        from repro.attacks.sybil import SybilOperator

        # A system can expose the protocol hooks yet have no reputation
        # agents to hijack (tiny configs, degenerate bandwidth draws);
        # degrade to the population-level reading instead of crashing.
        agents = getattr(system, "agents", None)
        if not agents:
            return AttackHandle(
                spec=spec,
                level="config",
                detail={"mechanism": "population-level malicious fraction"},
            )
        host = next(iter(agents))
        operator = SybilOperator(system, host, count=spec.count, rng=rng)
        compromised = compromised_nodes(n, spec.fraction, rng)
        operator.install(compromised=compromised)
        return AttackHandle(
            spec=spec,
            level="protocol",
            detail={
                "host": host,
                "identities": len(operator.identities),
                "compromised": len(compromised),
            },
        )

    if spec.kind == "recommendation":
        from repro.attacks.models import install_recommendation_attack

        attacker = install_recommendation_attack(system, spec.fraction, rng)
        return AttackHandle(
            spec=spec,
            level="protocol",
            detail={"compromised": len(attacker.compromised)},
        )

    if spec.kind == "whitewash":
        from functools import partial

        providers = _whitewash_providers(system, spec.fraction)
        # Waves fire at start, start+gap, ... — evenly staggered so the
        # tail of the run still measures recovery after the final wave.
        events = [
            (
                spec.start + wave * max(spec.start, 1),
                partial(_whitewash_wave, providers=providers),
            )
            for wave in range(spec.count)
        ]
        return AttackHandle(
            spec=spec,
            level="protocol",
            events=events,
            detail={"providers": providers, "waves": spec.count},
        )

    if spec.kind == "oscillation":
        # The oscillating models were installed at build time via
        # attack_build_opts; nothing to attach post-build.
        return AttackHandle(
            spec=spec, level="protocol", detail={"mechanism": "model factory"}
        )

    raise ConfigError(f"unattachable attack kind {spec.kind!r}")  # pragma: no cover
