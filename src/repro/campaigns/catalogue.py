"""The curated campaign catalogue.

Each named campaign is a reproducible sweep: scenarios x systems x seeds,
with a clean reference scenario first so every scorecard gets
degradation-vs-clean deltas.  Sizes are chosen so a whole campaign runs
in seconds on a laptop — these are robustness *scorecards*, not the
paper-scale figure sweeps (:mod:`repro.experiments` keeps those).

Downstream code registers additional campaigns with
:func:`register_campaign`; factories must be module-level picklable
callables (lint rule ``CMP001``) because compiled cells cross process
boundaries.
"""

from __future__ import annotations

from typing import Callable

from repro.campaigns.specs import (
    AttackSpec,
    Campaign,
    ChurnSpec,
    FaultSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.errors import ConfigError

__all__ = [
    "CAMPAIGNS",
    "campaign_names",
    "get_campaign",
    "register_campaign",
]

#: default cell sizing for catalogue campaigns — big enough for the
#: attacks to bite, small enough that a 2x2 sweep finishes in seconds.
_WORKLOAD = WorkloadSpec(network_size=80, transactions=30)
_MINI_WORKLOAD = WorkloadSpec(network_size=40, transactions=20)


def _clean(workload: WorkloadSpec = _WORKLOAD) -> ScenarioSpec:
    return ScenarioSpec(name="clean", workload=workload)


def sybil_wave_campaign() -> Campaign:
    """Sybil pressure at two intensities, then crossed with loss + churn."""
    return Campaign(
        name="sybil-wave",
        description=(
            "Sybil identities flood discovery at rising intensity; the "
            "hardest cell adds message loss and churn on top."
        ),
        scenarios=(
            _clean(),
            ScenarioSpec(
                name="sybil-10",
                workload=_WORKLOAD,
                attack=AttackSpec.sybil(count=10, compromised_fraction=0.10),
            ),
            ScenarioSpec(
                name="sybil-25",
                workload=_WORKLOAD,
                attack=AttackSpec.sybil(count=25, compromised_fraction=0.25),
            ),
            ScenarioSpec(
                name="sybil-25+loss+churn",
                workload=_WORKLOAD,
                attack=AttackSpec.sybil(count=25, compromised_fraction=0.25),
                fault=FaultSpec(loss=0.10),
                churn=ChurnSpec(leave_prob=0.05, rejoin_prob=0.5),
            ),
        ),
    )


def whitewash_wave_campaign() -> Campaign:
    """Providers shed bad history in waves, alone and under churn."""
    return Campaign(
        name="whitewash-wave",
        description=(
            "Waves of providers re-enter under fresh identities; the "
            "crossed cell makes the re-entry blend into natural churn."
        ),
        scenarios=(
            _clean(),
            ScenarioSpec(
                name="whitewash-3waves",
                workload=_WORKLOAD,
                attack=AttackSpec.whitewash(fraction=0.15, waves=3, start=8),
            ),
            ScenarioSpec(
                name="whitewash+churn",
                workload=_WORKLOAD,
                attack=AttackSpec.whitewash(fraction=0.15, waves=3, start=8),
                churn=ChurnSpec(leave_prob=0.05, rejoin_prob=0.5),
            ),
        ),
    )


def collusion_clique_campaign() -> Campaign:
    """Colluding cliques at rising attacker ratios, then under loss."""
    return Campaign(
        name="collusion-clique",
        description=(
            "Attacker ratio sweep in campaign form (the paper's Fig. 7 "
            "pressure), with a lossy-network cross."
        ),
        scenarios=(
            _clean(),
            ScenarioSpec(
                name="collude-20",
                workload=_WORKLOAD,
                attack=AttackSpec.collusion(0.20),
            ),
            ScenarioSpec(
                name="collude-40",
                workload=_WORKLOAD,
                attack=AttackSpec.collusion(0.40),
            ),
            ScenarioSpec(
                name="collude-40+loss",
                workload=_WORKLOAD,
                attack=AttackSpec.collusion(0.40),
                fault=FaultSpec(loss=0.15),
            ),
        ),
    )


def oscillation_campaign() -> Campaign:
    """Build-then-betray peers: permanent turn vs duty-cycle oscillation."""
    return Campaign(
        name="oscillation",
        description=(
            "Agents build trust honestly then turn — once, or on a duty "
            "cycle; the crossed cell adds latency spikes."
        ),
        scenarios=(
            _clean(),
            ScenarioSpec(
                name="betray-once",
                workload=_WORKLOAD,
                attack=AttackSpec.oscillation(fraction=0.3, build=10),
            ),
            ScenarioSpec(
                name="oscillate-p5",
                workload=_WORKLOAD,
                attack=AttackSpec.oscillation(fraction=0.3, build=10, period=5),
            ),
            ScenarioSpec(
                name="oscillate+latency",
                workload=_WORKLOAD,
                attack=AttackSpec.oscillation(fraction=0.3, build=10, period=5),
                fault=FaultSpec(latency_prob=0.2, latency_ms=80.0, latency_jitter_ms=20.0),
            ),
        ),
    )


def faultline_campaign() -> Campaign:
    """Pure fault/churn pressure (no attack) — the infrastructure baseline."""
    return Campaign(
        name="faultline",
        description=(
            "No adversary, only infrastructure pain: loss, crash windows, "
            "a temporary bisection, and churn."
        ),
        scenarios=(
            _clean(),
            ScenarioSpec(
                name="lossy",
                workload=_WORKLOAD,
                fault=FaultSpec(loss=0.15),
            ),
            ScenarioSpec(
                name="crash+bisect",
                workload=_WORKLOAD,
                fault=FaultSpec(
                    crash_fraction=0.15,
                    bisection_fraction=0.25,
                    bisection_start_ms=2_000.0,
                    bisection_end_ms=10_000.0,
                ),
            ),
            ScenarioSpec(
                name="heavy-churn",
                workload=_WORKLOAD,
                churn=ChurnSpec(leave_prob=0.10, rejoin_prob=0.4),
            ),
        ),
    )


def mini_campaign() -> Campaign:
    """The CI-sized campaign: 3 scenarios x 2 systems x 2 seeds, tiny cells."""
    return Campaign(
        name="mini",
        description=(
            "Smoke-test sweep for CI and the byte-determinism golden "
            "report: clean, one sybil cell, one collusion cell."
        ),
        scenarios=(
            _clean(_MINI_WORKLOAD),
            ScenarioSpec(
                name="sybil-8",
                workload=_MINI_WORKLOAD,
                attack=AttackSpec.sybil(count=8, compromised_fraction=0.2),
            ),
            ScenarioSpec(
                name="collude-30",
                workload=_MINI_WORKLOAD,
                attack=AttackSpec.collusion(0.30),
            ),
        ),
        systems=("hirep", "voting"),
        seeds=(2006, 2007),
    )


#: name -> module-level factory.  Factories (not instances) so importing
#: the catalogue stays cheap and every lookup gets a fresh Campaign.
CAMPAIGNS: dict[str, Callable[[], Campaign]] = {}


def register_campaign(factory: Callable[[], Campaign], name: str | None = None) -> None:
    """Register a campaign factory under ``name`` (or the campaign's own).

    The factory must be a module-level callable (rule ``CMP001``): compiled
    cells are executed by worker processes, and a factory hidden in a
    closure or lambda cannot be re-imported there.
    """
    campaign = factory()
    key = name or campaign.name
    if key in CAMPAIGNS:
        raise ConfigError(f"campaign {key!r} is already registered")
    CAMPAIGNS[key] = factory


def campaign_names() -> list[str]:
    return sorted(CAMPAIGNS)


def get_campaign(name: str) -> Campaign:
    try:
        factory = CAMPAIGNS[name]
    except KeyError:
        known = ", ".join(campaign_names())
        raise ConfigError(f"unknown campaign {name!r} (known: {known})") from None
    return factory()


for _factory in (
    sybil_wave_campaign,
    whitewash_wave_campaign,
    collusion_clique_campaign,
    oscillation_campaign,
    faultline_campaign,
    mini_campaign,
):
    register_campaign(_factory)
