"""The scenario DSL: frozen, canonically-hashable adversarial specs.

A scenario composes five orthogonal planes the repo already implements —
attacks (:mod:`repro.attacks`), faults (:mod:`repro.net.faults`), churn
(:mod:`repro.net.churn`), topology (:mod:`repro.net.topology` via the
config), and workload — into one declarative record:

    ScenarioSpec = AttackSpec x FaultSpec x ChurnSpec x TopologySpec
                   x WorkloadSpec

A :class:`Campaign` is a named sweep over scenarios x systems x seeds that
compiles (:meth:`Campaign.compile`) into plain
:class:`~repro.exec.job.JobSpec` lists, so campaign cells inherit the
orchestrator's canonical hashing, content-addressed result cache,
process-pool fan-out, retry/timeout and ``--telemetry`` capture for free.

Every spec is a frozen dataclass of JSON-primitive fields with
``to_dict``/``from_dict`` round-trips and a :func:`spec_hash` content
address built on the same canonical JSON encoding the job layer uses —
two specs that would run the same cell hash identically, across processes
and ``PYTHONHASHSEED`` values.  Display-only ``name`` fields are excluded
from the hash (the same rule as ``JobSpec.label``), so renaming a
scenario never invalidates its cached cells.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import asdict, dataclass, field, replace
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import ConfigError
from repro.exec.job import JobSpec, canonical_json

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import HiRepConfig
    from repro.net.churn import ChurnModel
    from repro.net.faults import FaultModel

__all__ = [
    "AttackSpec",
    "ATTACK_KINDS",
    "Campaign",
    "ChurnSpec",
    "FaultSpec",
    "ScenarioSpec",
    "TopologySpec",
    "WorkloadSpec",
    "spec_hash",
]

#: module/function every compiled campaign cell executes.
CELL_MODULE = "repro.campaigns.cells"
CELL_FUNC = "campaign_cell"

#: attack classes the DSL can express (``none`` = clean cell).
ATTACK_KINDS = (
    "none",
    "sybil",
    "whitewash",
    "collusion",
    "oscillation",
    "recommendation",
)


def spec_hash(identity: dict) -> str:
    """SHA-256 content address of a spec's hashed identity dict."""
    return hashlib.sha256(canonical_json(identity).encode()).hexdigest()


def _check_fraction(name: str, value: float, upper: float = 1.0) -> None:
    if not 0.0 <= value <= upper:
        raise ConfigError(f"{name} must be in [0,{upper:g}], got {value}")


@dataclass(frozen=True)
class AttackSpec:
    """One attack class plus its intensity knobs.

    Field meaning depends on ``kind``:

    * ``sybil`` — ``count`` sybil identities on one host; ``fraction`` of
      nodes serve the sybil list during discovery.
    * ``whitewash`` — ``fraction`` of providers re-enter under fresh
      identities, in ``count`` waves starting after ``start`` transactions.
    * ``collusion`` — ``fraction`` of agents/voters collude (the paper's
      attacker-ratio interpretation: poor agents for hiREP, malicious
      voters for the baselines).
    * ``oscillation`` — ``fraction`` of agents build trust honestly for
      ``start`` evaluations and then turn; ``period`` makes the turn a
      duty cycle instead of permanent.
    * ``recommendation`` — ``fraction`` of nodes forge discovery replies
      (bad-mouth good agents, ballot-stuff poor ones).

    Protocol-level attachment exists for hiREP (see
    :mod:`repro.campaigns.attach`); on systems without the hooks the spec
    falls back to the population-level interpretation (``fraction`` of
    participants malicious) — the same reading Fig. 7 uses for voting.
    """

    kind: str = "none"
    fraction: float = 0.0
    count: int = 0
    start: int = 0
    period: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ATTACK_KINDS:
            raise ConfigError(
                f"unknown attack kind {self.kind!r} (known: {', '.join(ATTACK_KINDS)})"
            )
        _check_fraction("fraction", self.fraction)
        if self.count < 0:
            raise ConfigError(f"count must be >= 0, got {self.count}")
        if self.start < 0:
            raise ConfigError(f"start must be >= 0, got {self.start}")
        if self.period is not None and self.period < 1:
            raise ConfigError(f"period must be >= 1, got {self.period}")
        if self.kind == "sybil" and self.count < 1:
            raise ConfigError("sybil attack needs count >= 1 identities")
        if self.kind == "whitewash" and (self.count < 1 or self.fraction <= 0):
            raise ConfigError("whitewash attack needs count >= 1 waves and fraction > 0")
        if self.kind in ("oscillation", "recommendation") and self.fraction <= 0:
            raise ConfigError(f"{self.kind} attack needs fraction > 0")
        # collusion allows fraction == 0: attacker-ratio sweeps include the
        # zero point, which still pins the config's attacker fields to 0.

    # -- constructors --------------------------------------------------------

    @classmethod
    def none(cls) -> "AttackSpec":
        return cls()

    @classmethod
    def sybil(cls, count: int = 15, compromised_fraction: float = 0.15) -> "AttackSpec":
        return cls(kind="sybil", count=count, fraction=compromised_fraction)

    @classmethod
    def whitewash(cls, fraction: float = 0.1, waves: int = 3, start: int = 10) -> "AttackSpec":
        return cls(kind="whitewash", fraction=fraction, count=waves, start=start)

    @classmethod
    def collusion(cls, ratio: float) -> "AttackSpec":
        return cls(kind="collusion", fraction=ratio)

    @classmethod
    def oscillation(
        cls, fraction: float = 0.3, build: int = 20, period: int | None = None
    ) -> "AttackSpec":
        return cls(kind="oscillation", fraction=fraction, start=build, period=period)

    @classmethod
    def recommendation(cls, fraction: float = 0.3) -> "AttackSpec":
        return cls(kind="recommendation", fraction=fraction)

    # -- semantics -----------------------------------------------------------

    @property
    def active(self) -> bool:
        return self.kind != "none"

    def transform_config(self, config: "HiRepConfig", *, protocol: bool) -> "HiRepConfig":
        """Apply the attack's population-level pressure to a config.

        ``protocol=True`` means the caller will *also* attach the
        protocol-level mechanism (sybil operator, discovery hook, model
        factory, identity resets), so only the knobs that mechanism needs
        are set.  ``protocol=False`` is the fallback interpretation for
        systems without the hooks: the attack degenerates to "``fraction``
        of the population is malicious" — exactly how Fig. 7 maps the
        attacker ratio onto the voting baseline.
        """
        if self.kind == "none":
            return config
        if self.kind == "collusion":
            # Collusion IS a population-level attack for every system.
            return config.with_(
                poor_agent_fraction=self.fraction, malicious_fraction=self.fraction
            )
        if self.kind == "oscillation" and protocol:
            # The turncoat fraction; the oscillating model itself arrives
            # via the build-time model factory.
            return config.with_(poor_agent_fraction=self.fraction)
        if not protocol:
            equivalent = self.fraction
            if self.kind == "sybil":
                equivalent = min(1.0, self.count / max(config.network_size, 1))
            return config.with_(
                malicious_fraction=max(config.malicious_fraction, equivalent)
            )
        return config

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "AttackSpec":
        return cls(
            kind=d.get("kind", "none"),
            fraction=float(d.get("fraction", 0.0)),
            count=int(d.get("count", 0)),
            start=int(d.get("start", 0)),
            period=None if d.get("period") is None else int(d["period"]),
        )


@dataclass(frozen=True)
class FaultSpec:
    """Declarative network-fault pressure, compiled to a ``FaultPlane``.

    * ``loss`` — uniform Bernoulli message-loss probability;
    * ``latency_prob``/``latency_ms``/``latency_jitter_ms`` — occasional
      latency spikes;
    * ``crash_fraction`` — staggered crash windows over that fraction of
      nodes (even stride, the degradation sweep's schedule);
    * ``bisection_fraction`` — partition the first ``fraction`` of node
      indices away from the rest during ``[bisection_start_ms,
      bisection_end_ms)``.
    """

    loss: float = 0.0
    latency_prob: float = 0.0
    latency_ms: float = 0.0
    latency_jitter_ms: float = 0.0
    crash_fraction: float = 0.0
    bisection_fraction: float = 0.0
    bisection_start_ms: float = 0.0
    bisection_end_ms: float | None = None

    def __post_init__(self) -> None:
        _check_fraction("loss", self.loss)
        _check_fraction("latency_prob", self.latency_prob)
        _check_fraction("crash_fraction", self.crash_fraction)
        _check_fraction("bisection_fraction", self.bisection_fraction)
        if self.latency_ms < 0 or self.latency_jitter_ms < 0:
            raise ConfigError("latency_ms/latency_jitter_ms must be >= 0")
        end = math.inf if self.bisection_end_ms is None else self.bisection_end_ms
        if self.bisection_start_ms < 0 or end < self.bisection_start_ms:
            raise ConfigError(
                f"invalid bisection window [{self.bisection_start_ms}, {end})"
            )

    @classmethod
    def clean(cls) -> "FaultSpec":
        return cls()

    @property
    def active(self) -> bool:
        return (
            self.loss > 0
            or self.latency_prob > 0
            or self.crash_fraction > 0
            or self.bisection_fraction > 0
        )

    def build_models(
        self, network_size: int, *, exclude: Sequence[int] = ()
    ) -> "list[FaultModel]":
        """The fault-model stack this spec describes (may be empty)."""
        from repro.net.faults import (
            Bisection,
            CrashSchedule,
            LatencySpike,
            MessageLoss,
            staggered_crash_windows,
        )

        models: list[FaultModel] = []
        if self.loss > 0:
            models.append(MessageLoss(self.loss))
        if self.latency_prob > 0:
            models.append(
                LatencySpike(self.latency_prob, self.latency_ms, self.latency_jitter_ms)
            )
        if self.crash_fraction > 0:
            windows = staggered_crash_windows(
                network_size, self.crash_fraction, exclude=set(exclude)
            )
            if windows:
                models.append(CrashSchedule(windows))
        if self.bisection_fraction > 0:
            left = range(int(round(self.bisection_fraction * network_size)))
            end = math.inf if self.bisection_end_ms is None else self.bisection_end_ms
            models.append(
                Bisection(left, start_ms=self.bisection_start_ms, end_ms=end)
            )
        return models

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSpec":
        return cls(
            loss=float(d.get("loss", 0.0)),
            latency_prob=float(d.get("latency_prob", 0.0)),
            latency_ms=float(d.get("latency_ms", 0.0)),
            latency_jitter_ms=float(d.get("latency_jitter_ms", 0.0)),
            crash_fraction=float(d.get("crash_fraction", 0.0)),
            bisection_fraction=float(d.get("bisection_fraction", 0.0)),
            bisection_start_ms=float(d.get("bisection_start_ms", 0.0)),
            bisection_end_ms=(
                None if d.get("bisection_end_ms") is None else float(d["bisection_end_ms"])
            ),
        )


@dataclass(frozen=True)
class ChurnSpec:
    """Two-state Markov churn (see :class:`repro.net.churn.ChurnModel`)."""

    leave_prob: float = 0.0
    rejoin_prob: float = 0.5

    def __post_init__(self) -> None:
        _check_fraction("leave_prob", self.leave_prob)
        _check_fraction("rejoin_prob", self.rejoin_prob)

    @classmethod
    def none(cls) -> "ChurnSpec":
        return cls()

    @property
    def active(self) -> bool:
        return self.leave_prob > 0

    def build(self, *, protected: Sequence[int] = ()) -> "ChurnModel | None":
        if not self.active:
            return None
        from repro.net.churn import ChurnModel

        return ChurnModel(
            leave_prob=self.leave_prob,
            rejoin_prob=self.rejoin_prob,
            protected=set(protected),
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "ChurnSpec":
        return cls(
            leave_prob=float(d.get("leave_prob", 0.0)),
            rejoin_prob=float(d.get("rejoin_prob", 0.5)),
        )


@dataclass(frozen=True)
class TopologySpec:
    """Overlay shape, expressed as the config knobs that generate it."""

    kind: str = "power_law"
    avg_neighbors: float = 4.0

    _KINDS = ("power_law", "random", "small_world")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigError(
                f"unknown topology kind {self.kind!r} (known: {', '.join(self._KINDS)})"
            )
        if self.avg_neighbors <= 0:
            raise ConfigError(f"avg_neighbors must be > 0, got {self.avg_neighbors}")

    @classmethod
    def default(cls) -> "TopologySpec":
        return cls()

    def config_overrides(self) -> dict:
        return {"topology_kind": self.kind, "avg_neighbors": self.avg_neighbors}

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "TopologySpec":
        return cls(
            kind=d.get("kind", "power_law"),
            avg_neighbors=float(d.get("avg_neighbors", 4.0)),
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """Transaction workload plus the system parameters it runs under.

    ``overrides`` holds extra :class:`~repro.core.config.HiRepConfig`
    fields (validated at config-build time), so a scenario can pin any
    protocol knob without the DSL growing a field per knob.
    """

    network_size: int = 120
    transactions: int = 40
    requestor: int | None = 0
    overrides: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.network_size < 2:
            raise ConfigError(f"network_size must be >= 2, got {self.network_size}")
        if self.transactions < 1:
            raise ConfigError(f"transactions must be >= 1, got {self.transactions}")
        try:
            canonical_json(self.overrides)
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"workload overrides are not JSON-encodable: {exc}") from exc

    def build_config(self, seed: int, topology: TopologySpec) -> "HiRepConfig":
        from repro.workloads.scenarios import default_config

        overrides = {**topology.config_overrides(), **self.overrides}
        # JSON round-trips turn tuples into lists; HiRepConfig fields like
        # good_rating are tuples — restore them so validation passes.
        overrides = {
            k: tuple(v) if isinstance(v, list) else v for k, v in overrides.items()
        }
        return default_config(network_size=self.network_size, seed=seed).with_(
            **overrides
        )

    def to_dict(self) -> dict:
        return {
            "network_size": self.network_size,
            "transactions": self.transactions,
            "requestor": self.requestor,
            "overrides": dict(self.overrides),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WorkloadSpec":
        requestor = d.get("requestor", 0)
        return cls(
            network_size=int(d.get("network_size", 120)),
            transactions=int(d.get("transactions", 40)),
            requestor=None if requestor is None else int(requestor),
            overrides=dict(d.get("overrides", {})),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One adversarial cell: attack x fault x churn x topology x workload."""

    name: str
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    attack: AttackSpec = field(default_factory=AttackSpec)
    fault: FaultSpec = field(default_factory=FaultSpec)
    churn: ChurnSpec = field(default_factory=ChurnSpec)
    topology: TopologySpec = field(default_factory=TopologySpec)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("a scenario needs a non-empty name")

    def is_clean(self) -> bool:
        """No adversarial pressure at all — the degradation reference cell."""
        return not (self.attack.active or self.fault.active or self.churn.active)

    def identity(self) -> dict:
        """The hashed portion of the spec (``name`` is display-only)."""
        d = self.to_dict()
        del d["name"]
        return d

    def hash(self) -> str:
        return spec_hash(self.identity())

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "workload": self.workload.to_dict(),
            "attack": self.attack.to_dict(),
            "fault": self.fault.to_dict(),
            "churn": self.churn.to_dict(),
            "topology": self.topology.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ScenarioSpec":
        return cls(
            name=d["name"],
            workload=WorkloadSpec.from_dict(d.get("workload", {})),
            attack=AttackSpec.from_dict(d.get("attack", {})),
            fault=FaultSpec.from_dict(d.get("fault", {})),
            churn=ChurnSpec.from_dict(d.get("churn", {})),
            topology=TopologySpec.from_dict(d.get("topology", {})),
        )


@dataclass(frozen=True)
class Campaign:
    """A named sweep over scenarios x systems x seeds.

    ``compile()`` turns the cross-product into orchestrator job specs in a
    deterministic order (scenario-major, then system, then seed), which is
    also the order :mod:`repro.campaigns.report` consumes payloads in.
    """

    name: str
    scenarios: tuple[ScenarioSpec, ...]
    systems: tuple[str, ...] = ("hirep", "voting")
    seeds: tuple[int, ...] = (2006, 2007)
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "systems", tuple(self.systems))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        if not self.name:
            raise ConfigError("a campaign needs a non-empty name")
        if not self.scenarios:
            raise ConfigError("a campaign needs at least one scenario")
        if not self.systems:
            raise ConfigError("a campaign needs at least one system")
        if not self.seeds:
            raise ConfigError("a campaign needs at least one seed")
        names = [s.name for s in self.scenarios]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise ConfigError(f"duplicate scenario names: {', '.join(dupes)}")

    def with_(self, **overrides: Any) -> "Campaign":
        """A copy with the given fields replaced (validated)."""
        return replace(self, **overrides)

    def cells(self) -> list[tuple[ScenarioSpec, str, int]]:
        """The cross-product, in compile order."""
        return [
            (scenario, system, seed)
            for scenario in self.scenarios
            for system in self.systems
            for seed in self.seeds
        ]

    def compile(self) -> list[JobSpec]:
        """One orchestrator job per campaign cell, in :meth:`cells` order.

        The scenario's display name is replaced by a fixed placeholder in
        the job kwargs (it rides on the label instead), so renaming a
        scenario — like relabelling a job — never changes the job key or
        invalidates its cached cell; the report layer reattaches names
        positionally.
        """
        return [
            JobSpec(
                module=CELL_MODULE,
                func=CELL_FUNC,
                kwargs={
                    "scenario": {**scenario.to_dict(), "name": "cell"},
                    "system": system,
                    "seed": seed,
                },
                label=f"{self.name}/{scenario.name}[{system},seed={seed}]",
            )
            for scenario, system, seed in self.cells()
        ]

    def identity(self) -> dict:
        return {
            "scenarios": [s.identity() for s in self.scenarios],
            "systems": list(self.systems),
            "seeds": list(self.seeds),
        }

    def hash(self) -> str:
        return spec_hash(self.identity())

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "scenarios": [s.to_dict() for s in self.scenarios],
            "systems": list(self.systems),
            "seeds": list(self.seeds),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Campaign":
        return cls(
            name=d["name"],
            description=d.get("description", ""),
            scenarios=tuple(ScenarioSpec.from_dict(s) for s in d.get("scenarios", [])),
            systems=tuple(d.get("systems", ("hirep", "voting"))),
            seeds=tuple(d.get("seeds", (2006, 2007))),
        )
