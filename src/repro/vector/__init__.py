"""The array kernel: hiREP on struct-of-arrays state (100k–1M peers).

``repro.vector`` is the second execution backend behind the
:class:`~repro.core.interface.ReputationSystem` interface, registered as
``hirep-array``.  Where the object kernel (``repro.core``) keeps one
Python object per peer, trust row and protocol message, this kernel keeps
every piece of per-peer state in flat numpy arrays
(:class:`~repro.vector.state.VectorTrustState`) and replaces the
discrete-event message exchange with closed-form hop accounting over a
vectorized liveness mask (:class:`~repro.vector.network.ArrayNetwork`).

Both kernels execute the *same* protocol semantics — the shared update
rules live in :mod:`repro.core.semantics` — and the array kernel mirrors
the object kernel's RNG stream discipline draw for draw, so
churn-free runs agree outcome-for-outcome (see
``tests/integration/test_kernel_parity.py`` and ``docs/scaling.md``).
"""

from repro.vector.network import ArrayNetwork
from repro.vector.state import VectorTrustState
from repro.vector.system import ArrayHiRepSystem

__all__ = ["ArrayHiRepSystem", "ArrayNetwork", "VectorTrustState"]
