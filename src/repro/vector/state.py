"""Struct-of-arrays trust state: every peer's trusted-agent list in flat arrays.

The object kernel stores one :class:`~repro.core.agent_list.TrustedAgentList`
per peer — a dict of row objects.  At 100k+ peers that is hundreds of
megabytes of Python objects and pointer chasing.  This module packs the
same state into a handful of dense numpy arrays indexed ``[peer, row]``:

=================  =========  =====================================================
array              shape      meaning
=================  =========  =====================================================
``live_ip``        (n, C)     agent host ip per live row (-1 = empty)
``live_val``       (n, C)     expertise EWMA value per live row
``live_upd``       (n, C)     expertise update count per live row
``live_len``       (n,)       number of live rows
``back_ip/...``    (n, B)     same triple for the backup cache
``back_len``       (n,)       number of backup rows
``live_path``      (n, C, R)  onion relay snapshot per live row (lazy)
``live_plen``      (n, C)     relay count per live row (lazy)
=================  =========  =====================================================

Row discipline mirrors :class:`~repro.core.agent_list.TrustedAgentList`
*exactly* — this is what makes kernel parity possible:

* live rows keep **insertion order**; removals compact order-preservingly
  (dict deletion order semantics);
* the backup cache is **most-recently-parked first**: parking front-inserts
  and trims the tail, a failed restore (live list full) moves the row to
  the back of the cache, re-adding a live agent purges its backup row;
* parking keeps value and update count; restoring does not reset them.

The per-row onion *snapshot* arrays are materialized lazily: while every
node has been online since bootstrap, a peer's snapshot of an agent's
onion provably equals the agent's current onion (rebuilds only happen when
a relay dies), so the kernel stores nothing and resolves paths through the
owner's current onion.  The first offline transition triggers
:meth:`materialize_paths`, which backfills the snapshot arrays from the
owners' current paths — exact by the same argument — and from then on
snapshots are tracked per row like the object kernel's entries.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.semantics import eviction_mask
from repro.errors import ConfigError

__all__ = ["VectorTrustState"]


class VectorTrustState:
    """All peers' trusted-agent lists and backup caches, as arrays."""

    def __init__(
        self,
        n: int,
        capacity: int,
        backup_capacity: int,
        max_relays: int,
        initial_expertise: float = 1.0,
    ) -> None:
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        if backup_capacity < 0:
            raise ConfigError(f"backup_capacity must be >= 0, got {backup_capacity}")
        self.n = n
        self.capacity = capacity
        self.backup_capacity = backup_capacity
        self.max_relays = max_relays
        self.initial_expertise = initial_expertise

        self.live_ip = np.full((n, capacity), -1, dtype=np.int32)
        self.live_val = np.zeros((n, capacity), dtype=np.float64)
        self.live_upd = np.zeros((n, capacity), dtype=np.int32)
        self.live_len = np.zeros(n, dtype=np.int32)

        self.back_ip = np.full((n, backup_capacity), -1, dtype=np.int32)
        self.back_val = np.zeros((n, backup_capacity), dtype=np.float64)
        self.back_upd = np.zeros((n, backup_capacity), dtype=np.int32)
        self.back_len = np.zeros(n, dtype=np.int32)

        # Per-row onion snapshots, allocated on the first offline event.
        self.live_path: np.ndarray | None = None
        self.live_plen: np.ndarray | None = None
        self.back_path: np.ndarray | None = None
        self.back_plen: np.ndarray | None = None
        self.paths_tracked = False

        # Aggregate counters (sum over all peers; the object kernel keeps
        # them per list, experiments only ever read totals).
        self.evictions = 0
        self.backups_parked = 0
        self.backups_restored = 0

    # -- queries -------------------------------------------------------------

    def row_of(self, p: int, ip: int) -> int:
        """Live row index of agent ``ip`` in peer ``p``'s list (-1 if absent)."""
        m = int(self.live_len[p])
        if m == 0:
            return -1
        hits = np.flatnonzero(self.live_ip[p, :m] == ip)
        return int(hits[0]) if hits.size else -1

    def back_row_of(self, p: int, ip: int) -> int:
        """Backup row index of agent ``ip`` for peer ``p`` (-1 if absent)."""
        b = int(self.back_len[p])
        if b == 0:
            return -1
        hits = np.flatnonzero(self.back_ip[p, :b] == ip)
        return int(hits[0]) if hits.size else -1

    def live_hosts(self, p: int) -> list[int]:
        """Agent host ips of peer ``p``'s live rows, in row order."""
        return [int(ip) for ip in self.live_ip[p, : int(self.live_len[p])]]

    def backup_hosts(self, p: int) -> list[int]:
        """Agent host ips of peer ``p``'s backup rows, most recent first."""
        return [int(ip) for ip in self.back_ip[p, : int(self.back_len[p])]]

    def total_rows(self) -> int:
        """Live rows across every peer (sanity/bench metric)."""
        return int(self.live_len.sum())

    # -- mutation ------------------------------------------------------------

    def add(
        self,
        p: int,
        ip: int,
        value: float,
        relays: Sequence[int] | None = None,
    ) -> bool:
        """Insert an agent row; False when already present or list full.

        ``relays`` is the onion snapshot carried by the adopted entry; it
        is only stored once snapshots are tracked (before that, every
        snapshot equals the owner's current onion by construction).
        """
        if self.row_of(p, ip) >= 0:
            return False
        m = int(self.live_len[p])
        if m >= self.capacity:
            return False
        self.live_ip[p, m] = ip
        self.live_val[p, m] = value
        self.live_upd[p, m] = 0
        if self.paths_tracked:
            assert self.live_path is not None and self.live_plen is not None
            k = 0 if relays is None else len(relays)
            self.live_plen[p, m] = k
            self.live_path[p, m, :] = -1
            if k:
                self.live_path[p, m, :k] = np.asarray(relays, dtype=np.int32)
        self.live_len[p] = m + 1
        # A re-added agent must not linger in backup.
        brow = self.back_row_of(p, ip)
        if brow >= 0:
            self._remove_backup_row(p, brow)
        return True

    def _remove_live_row(self, p: int, row: int) -> None:
        """Order-preserving removal (shift-left compaction)."""
        m = int(self.live_len[p])
        if not 0 <= row < m:
            return
        # Shift-left copies read ahead of writes, so in-place is safe.
        self.live_ip[p, row : m - 1] = self.live_ip[p, row + 1 : m]
        self.live_val[p, row : m - 1] = self.live_val[p, row + 1 : m]
        self.live_upd[p, row : m - 1] = self.live_upd[p, row + 1 : m]
        if self.paths_tracked:
            assert self.live_path is not None and self.live_plen is not None
            self.live_plen[p, row : m - 1] = self.live_plen[p, row + 1 : m]
            self.live_path[p, row : m - 1] = self.live_path[p, row + 1 : m]
        self.live_ip[p, m - 1] = -1
        self.live_len[p] = m - 1

    def _remove_backup_row(self, p: int, row: int) -> None:
        b = int(self.back_len[p])
        if not 0 <= row < b:
            return
        self.back_ip[p, row : b - 1] = self.back_ip[p, row + 1 : b]
        self.back_val[p, row : b - 1] = self.back_val[p, row + 1 : b]
        self.back_upd[p, row : b - 1] = self.back_upd[p, row + 1 : b]
        if self.paths_tracked:
            assert self.back_path is not None and self.back_plen is not None
            self.back_plen[p, row : b - 1] = self.back_plen[p, row + 1 : b]
            self.back_path[p, row : b - 1] = self.back_path[p, row + 1 : b]
        self.back_ip[p, b - 1] = -1
        self.back_len[p] = b - 1

    def evict_below(self, p: int, threshold: float) -> int:
        """Apply the hirep-θ rule to peer ``p``; returns the eviction count."""
        m = int(self.live_len[p])
        if m == 0:
            return 0
        mask = eviction_mask(self.live_val[p, :m], threshold)
        count = int(mask.sum())
        if count == 0:
            return 0
        keep = ~mask
        kept = m - count
        self.live_ip[p, :kept] = self.live_ip[p, :m][keep]
        self.live_val[p, :kept] = self.live_val[p, :m][keep]
        self.live_upd[p, :kept] = self.live_upd[p, :m][keep]
        if self.paths_tracked:
            assert self.live_path is not None and self.live_plen is not None
            self.live_plen[p, :kept] = self.live_plen[p, :m][keep]
            self.live_path[p, :kept] = self.live_path[p, :m][keep]
        self.live_ip[p, kept:m] = -1
        self.live_len[p] = kept
        self.evictions += count
        return count

    def park(self, p: int, ip: int) -> bool:
        """§3.4.3: offline agent with positive expertise → backup cache.

        True when parked; False when removed outright (non-positive
        expertise or no backup cache) or not present.
        """
        row = self.row_of(p, ip)
        if row < 0:
            return False
        value = float(self.live_val[p, row])
        upd = int(self.live_upd[p, row])
        k = 0
        path: np.ndarray | None = None
        if self.paths_tracked:
            assert self.live_path is not None and self.live_plen is not None
            k = int(self.live_plen[p, row])
            path = self.live_path[p, row, :k].copy()
        self._remove_live_row(p, row)
        if value <= 0.0 or self.backup_capacity == 0:
            return False
        b = int(self.back_len[p])
        # Most-recently-first: shift right and front-insert; a full cache
        # drops its oldest (last) row.  .copy() — shift-right overlaps.
        shift = min(b, self.backup_capacity - 1)
        if shift:
            self.back_ip[p, 1 : shift + 1] = self.back_ip[p, :shift].copy()
            self.back_val[p, 1 : shift + 1] = self.back_val[p, :shift].copy()
            self.back_upd[p, 1 : shift + 1] = self.back_upd[p, :shift].copy()
            if self.paths_tracked:
                assert self.back_path is not None and self.back_plen is not None
                self.back_plen[p, 1 : shift + 1] = self.back_plen[p, :shift].copy()
                self.back_path[p, 1 : shift + 1] = self.back_path[p, :shift].copy()
        self.back_ip[p, 0] = ip
        self.back_val[p, 0] = value
        self.back_upd[p, 0] = upd
        if self.paths_tracked:
            assert self.back_path is not None and self.back_plen is not None
            self.back_plen[p, 0] = k
            self.back_path[p, 0, :] = -1
            if k:
                assert path is not None
                self.back_path[p, 0, :k] = path
        self.back_len[p] = min(b + 1, self.backup_capacity)
        self.backups_parked += 1
        return True

    def restore(self, p: int, ip: int) -> bool:
        """Probe succeeded: move a backup row back to the live list.

        When the live list is full the row stays in backup but moves to
        the *end* of the cache (mirroring the object kernel's re-insert).
        """
        brow = self.back_row_of(p, ip)
        if brow < 0:
            return False
        m = int(self.live_len[p])
        if m >= self.capacity:
            self._move_backup_to_end(p, brow)
            return False
        value = float(self.back_val[p, brow])
        upd = int(self.back_upd[p, brow])
        k = 0
        path: np.ndarray | None = None
        if self.paths_tracked:
            assert self.back_path is not None and self.back_plen is not None
            k = int(self.back_plen[p, brow])
            path = self.back_path[p, brow, :k].copy()
        self._remove_backup_row(p, brow)
        self.live_ip[p, m] = ip
        self.live_val[p, m] = value
        self.live_upd[p, m] = upd
        if self.paths_tracked:
            assert self.live_path is not None and self.live_plen is not None
            self.live_plen[p, m] = k
            self.live_path[p, m, :] = -1
            if k:
                assert path is not None
                self.live_path[p, m, :k] = path
        self.live_len[p] = m + 1
        self.backups_restored += 1
        return True

    def _move_backup_to_end(self, p: int, row: int) -> None:
        ip = int(self.back_ip[p, row])
        value = float(self.back_val[p, row])
        upd = int(self.back_upd[p, row])
        k = 0
        path: np.ndarray | None = None
        if self.paths_tracked:
            assert self.back_path is not None and self.back_plen is not None
            k = int(self.back_plen[p, row])
            path = self.back_path[p, row, :k].copy()
        self._remove_backup_row(p, row)
        b = int(self.back_len[p])
        self.back_ip[p, b] = ip
        self.back_val[p, b] = value
        self.back_upd[p, b] = upd
        if self.paths_tracked:
            assert self.back_path is not None and self.back_plen is not None
            self.back_plen[p, b] = k
            self.back_path[p, b, :] = -1
            if k:
                assert path is not None
                self.back_path[p, b, :k] = path
        self.back_len[p] = b + 1

    def drop_backup(self, p: int, ip: int) -> None:
        brow = self.back_row_of(p, ip)
        if brow >= 0:
            self._remove_backup_row(p, brow)

    # -- lazy onion snapshots ------------------------------------------------

    def materialize_paths(self, own_path: np.ndarray, own_plen: np.ndarray) -> None:
        """Start tracking per-row onion snapshots.

        Called once, immediately before the first node ever goes offline.
        Up to that point no onion has ever been rebuilt (rebuilds are
        triggered only by dead relays), so every stored snapshot equals
        the owner's *current* onion — backfilling from ``own_path`` /
        ``own_plen`` is exact, not an approximation.
        """
        if self.paths_tracked:
            return
        n, cap = self.live_ip.shape
        rel = self.max_relays
        self.live_path = np.full((n, cap, rel), -1, dtype=np.int32)
        self.live_plen = np.zeros((n, cap), dtype=np.int32)
        self.back_path = np.full((n, self.backup_capacity, rel), -1, dtype=np.int32)
        self.back_plen = np.zeros((n, self.backup_capacity), dtype=np.int32)
        # Rows beyond live_len/back_len index owner 0's path harmlessly —
        # they are never read before being overwritten by add/park.
        hosts = np.clip(self.live_ip, 0, None)
        self.live_path[:] = own_path[hosts]
        self.live_plen[:] = own_plen[hosts]
        if self.backup_capacity:
            bhosts = np.clip(self.back_ip, 0, None)
            self.back_path[:] = own_path[bhosts]
            self.back_plen[:] = own_plen[bhosts]
        self.paths_tracked = True

    # -- introspection -------------------------------------------------------

    def nbytes(self) -> int:
        """Resident bytes across all state arrays (for docs/benchmarks)."""
        arrays = [
            self.live_ip, self.live_val, self.live_upd, self.live_len,
            self.back_ip, self.back_val, self.back_upd, self.back_len,
        ]
        if self.paths_tracked:
            assert self.live_path is not None and self.live_plen is not None
            assert self.back_path is not None and self.back_plen is not None
            arrays += [self.live_path, self.live_plen, self.back_path, self.back_plen]
        return int(sum(a.nbytes for a in arrays))
