"""The array kernel's system façade: hiREP over struct-of-arrays state.

:class:`ArrayHiRepSystem` implements the same
:class:`~repro.core.interface.ReputationSystem` surface as
:class:`~repro.core.system.HiRepSystem`, but executes the protocol over
:class:`~repro.vector.state.VectorTrustState` and
:class:`~repro.vector.network.ArrayNetwork` instead of per-object peers
and a discrete-event network.  It is registered as ``hirep-array``.

Parity discipline — the whole design revolves around mirroring the object
kernel's RNG stream usage **draw for draw**:

* :class:`~repro.core.world.World` construction is shared, so topology,
  bandwidths, truth and maliciousness are bit-identical.
* Wiring draws follow ``build_wiring`` order exactly: the per-peer
  streams are spawned first, then the poor-agent choice and per-agent
  streams from ``rng_agents``.  The object kernel's key-generation draws
  live on the isolated ``rng_keys`` stream, so skipping key material
  entirely (this kernel signs nothing) perturbs no other stream.
* Bootstrap/maintenance reuse :func:`~repro.core.discovery.discover_agent_lists`
  and :func:`~repro.core.ranking.select_agents` **verbatim** via array-backed
  callbacks, with the same per-peer generators.
* Queries draw the same selection shuffle, per-request nonces, handshake
  nonces and trust-model evaluations in the same stream order.

Message exchange is replaced with closed-form hop accounting: within one
transaction liveness is static in both kernels, so "how many hops did an
onion send cost and did it arrive" is pure arithmetic over the liveness
mask (see ``_count_onion_send``).  Response *times* are the one metric
the array kernel only approximates (there is no event engine); they are
excluded from parity and documented in ``docs/scaling.md``.

Unsupported surfaces fail loudly with :class:`~repro.errors.ConfigError`:
fault planes, dispatch tracers and the query-timeout/retry plane all
require the object kernel's event engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.config import HiRepConfig
from repro.core.discovery import discover_agent_lists
from repro.core.interface import Outcome
from repro.core.messages import AgentListEntry
from repro.core.ranking import rank_within_list, select_agents
from repro.core.runtime import TransactionRuntime
from repro.core.semantics import (
    TRUST_TRAFFIC_CATEGORIES,
    aggregate_estimate,
    confidence,
    consistency_bit,
    ewma_update,
    selection_order,
)
from repro.core.trust_models import QualityDrivenModel, TrustModel
from repro.core.world import World
from repro.crypto.hashing import NodeID
from repro.crypto.nonce import NonceRegistry
from repro.errors import ConfigError, SimulationError
from repro.net.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.net.messages import Category, DEFAULT_MESSAGE_BYTES
from repro.sim.rng import spawn
from repro.vector.network import ArrayNetwork
from repro.vector.state import VectorTrustState

__all__ = ["ArrayHiRepSystem", "PathSnapshot"]

#: A full anonymity-key handshake costs four wire messages (Fig. 3).
_HANDSHAKE_MESSAGES = 4

ModelFactory = Callable[[bool, np.random.Generator], TrustModel]


def _nid(ip: int) -> NodeID:
    """Synthetic nodeID for peer ``ip`` (bijective; no key material here)."""
    return int(ip).to_bytes(20, "big")


@dataclass(frozen=True)
class PathSnapshot:
    """A lightweight stand-in for an :class:`~repro.onion.onion.Onion`.

    ``relays is None`` means "the owner's current path": while no node has
    ever gone offline, every snapshot provably equals the owner's current
    onion, so nothing needs storing (see VectorTrustState.materialize_paths).
    """

    host: int
    relays: tuple[int, ...] | None = None


@dataclass
class _QueryResult:
    estimate: float
    rows: list[int]
    hosts: list[int]
    values: list[float]
    response_time_ms: float
    answered: int
    asked: int


def _mean_latency_ms(model: LatencyModel) -> float:
    """Expected per-hop latency, used for the analytic response-time model."""
    if isinstance(model, ConstantLatency):
        return float(model.ms)
    if isinstance(model, UniformLatency):
        return (model.lo + model.hi) / 2.0
    if isinstance(model, LogNormalLatency):
        mean = float(np.exp(model.mu + model.sigma * model.sigma / 2.0))
        return min(mean, float(model.cap_ms))
    # Unknown model: estimate the mean from a fixed-seed probe stream
    # (deterministic, and independent of every simulation stream).
    probe = np.random.default_rng(0)
    return float(np.mean([model.sample(probe) for _ in range(512)]))


class ArrayHiRepSystem(TransactionRuntime):
    """hiREP on the array kernel: one deployment, state as numpy arrays."""

    def __init__(
        self,
        config: HiRepConfig | None = None,
        *,
        latency_model: LatencyModel | None = None,
        churn=None,
        model_factory: ModelFactory | None = None,
        topology=None,
        faults=None,
        tracer=None,
        bootstrap_mode: str = "protocol",
    ) -> None:
        """Build the substrate and per-agent models; no per-peer objects.

        ``bootstrap_mode="protocol"`` runs the paper's token-based
        discovery (parity with the object kernel); ``"seeded"`` fills
        every list directly in O(n·C) vectorized work — for 100k+ sweeps
        where protocol bootstrap, not steady state, would dominate.
        """
        config = config or HiRepConfig()
        if faults is not None:
            raise ConfigError(
                "hirep-array does not support fault planes; use the object "
                "kernel ('hirep') for fault-injection runs"
            )
        if tracer is not None:
            raise ConfigError(
                "hirep-array has no protocol dispatcher to trace; use 'hirep'"
            )
        if config.query_timeout_ms is not None:
            raise ConfigError(
                "hirep-array does not model query timeouts/retries; use 'hirep'"
            )
        if bootstrap_mode not in ("protocol", "seeded"):
            raise ConfigError(f"unknown bootstrap_mode {bootstrap_mode!r}")
        world = World.from_config(
            config, latency_model, topology=topology, network_factory=ArrayNetwork
        )
        super().__init__(config, world)
        self.churn = churn
        self.bootstrap_mode = bootstrap_mode
        self._bootstrapped = False

        n = config.network_size
        net: ArrayNetwork = self.network
        # build_wiring draw order: per-peer streams first.  The object
        # kernel then generates per-peer keys from rng_keys — an isolated
        # stream this kernel simply never touches.
        self._peer_rngs = spawn(world.rng_peers, n)
        capable = net.agent_capable_nodes()
        poor_count = int(round(config.poor_agent_fraction * len(capable)))
        poor_set = set(
            int(i)
            for i in world.rng_agents.choice(
                capable, size=min(poor_count, len(capable)), replace=False
            )
        )
        agent_rngs = spawn(world.rng_agents, len(capable))
        factory = model_factory or (
            lambda good, rng: QualityDrivenModel(
                good, config.good_rating, config.bad_rating
            )
        )
        self._models: dict[int, TrustModel] = {}
        self._agent_rng: dict[int, np.random.Generator] = {}
        self.agent_quality: dict[int, bool] = {}
        for agent_rng, ip in zip(agent_rngs, capable):
            good = ip not in poor_set
            self._models[ip] = factory(good, agent_rng)
            self._agent_rng[ip] = agent_rng
            self.agent_quality[ip] = good

        max_relays = max(config.onion_relays, 0)
        self.state = VectorTrustState(
            n,
            config.trusted_agents,
            config.backup_cache_size,
            max_relays,
            initial_expertise=config.initial_expertise,
        )
        # Every peer's *own* onion (the one agents answer through).
        self._own_path = np.full((n, max_relays), -1, dtype=np.int32)
        self._own_plen = np.zeros(n, dtype=np.int32)
        self._own_built = np.zeros(n, dtype=bool)
        # Lazy per-host registries/caches (populated on first use so a
        # 100k-node build does not allocate 100k empty objects up front).
        self._nonce_reg: dict[int, NonceRegistry] = {}
        self._responder_reg: dict[int, NonceRegistry] = {}
        self._relay_keys: dict[int, set[int]] = {}
        self._known: dict[int, set[int]] = {}

        self._latency_mean = _mean_latency_ms(net.latency_model)
        net.on_first_offline = self._materialize_paths

        # Aggregate protocol stats (the object kernel keeps these per peer).
        self.handshakes_performed = 0
        self.keys_learned = 0
        self.reports_accepted = 0
        self.reports_rejected = 0
        self.probe_messages = 0
        self.queries_completed = 0

    # ------------------------------------------------------------------
    # Registries and onions
    # ------------------------------------------------------------------

    def _nonces(self, ip: int) -> NonceRegistry:
        """Peer ``ip``'s own nonce registry (query + report nonces)."""
        reg = self._nonce_reg.get(ip)
        if reg is None:
            reg = self._nonce_reg[ip] = NonceRegistry(self._peer_rngs[ip])
        return reg

    def _responder_nonces(self, ip: int) -> NonceRegistry:
        """Relay ``ip``'s handshake-responder registry.

        A separate registry that *shares* node ``ip``'s generator, exactly
        like ``build_wiring`` hands the handshake responder
        ``NonceRegistry(peer_rngs[ip])`` next to the peer's own registry.
        """
        reg = self._responder_reg.get(ip)
        if reg is None:
            reg = self._responder_reg[ip] = NonceRegistry(self._peer_rngs[ip])
        return reg

    def _materialize_paths(self) -> None:
        self.state.materialize_paths(self._own_path, self._own_plen)

    def _own_relays(self, host: int) -> np.ndarray:
        return self._own_path[host, : int(self._own_plen[host])]

    def _learn_relay_key(self, host: int, relay: int) -> None:
        """Anonymity-key handshake with ``relay`` unless already cached."""
        cache = self._relay_keys.setdefault(host, set())
        if relay in cache:
            return
        # Four wire messages; the responder issues exactly one nonce from
        # the relay's stream (mirrors onion.handshake.perform_handshake).
        self._responder_nonces(relay).issue()
        self.counter.count(Category.KEY_EXCHANGE, _HANDSHAKE_MESSAGES)
        cache.add(relay)
        self.handshakes_performed += 1

    def _rebuild_onion(self, host: int) -> None:
        online = self.network.online_indices()
        pool = online[online != host]
        n_relays = min(self.config.onion_relays, int(pool.size))
        if n_relays > 0:
            idx = self._peer_rngs[host].choice(
                int(pool.size), size=n_relays, replace=False
            )
            relays = pool[idx]
        else:
            relays = pool[:0]
        for relay in relays:
            self._learn_relay_key(host, int(relay))
        self._own_plen[host] = n_relays
        if n_relays:
            self._own_path[host, :n_relays] = relays
        self._own_built[host] = True

    def _ensure_onion(self, host: int) -> None:
        """Build or reuse ``host``'s own onion (HiRepPeer.ensure_onion)."""
        relays = self._own_relays(host)
        if (
            self._own_built[host]
            and relays.size > 0
            and bool(self.network.online_mask[relays].all())
        ):
            return
        self._rebuild_onion(host)

    def _fresh_onion(self, host: int) -> None:
        """Reuse the current path with a fresh seq (HiRepPeer.fresh_onion).

        Sequence numbers only exist to make receivers adopt the newest
        onion; the host's path is authoritative here, so only the rebuild
        condition matters.
        """
        relays = self._own_relays(host)
        if (
            not self._own_built[host]
            or relays.size == 0
            or not bool(self.network.online_mask[relays].all())
        ):
            self._ensure_onion(host)

    def _entry_relays(self, p: int, row: int) -> list[int]:
        """The onion snapshot stored in peer ``p``'s row (owner-current
        until snapshots are materialized)."""
        st = self.state
        if st.paths_tracked:
            assert st.live_path is not None and st.live_plen is not None
            k = int(st.live_plen[p, row])
            return [int(r) for r in st.live_path[p, row, :k]]
        host = int(st.live_ip[p, row])
        return [int(r) for r in self._own_relays(host)]

    def _count_onion_send(self, relays: list[int], owner: int) -> tuple[int, bool]:
        """Hop accounting for one onion send: (messages, delivered).

        The wire walks the path entry-first (= reversed storage order);
        each hop to an online node costs one message, the first offline
        relay swallows the message, and delivery additionally requires the
        owner to be online.  Liveness is static within a transaction, so
        this matches the DES hop-by-hop bill exactly.
        """
        mask = self.network.online_mask
        messages = 1
        alive = True
        for relay in reversed(relays):
            if mask[relay]:
                messages += 1
            else:
                alive = False
                break
        return messages, alive and bool(mask[owner])

    # ------------------------------------------------------------------
    # Discovery, bootstrap (§3.4.1) and maintenance (§3.4.3)
    # ------------------------------------------------------------------

    def _snapshot_for(self, p: int, row: int) -> PathSnapshot:
        host = int(self.state.live_ip[p, row])
        if self.state.paths_tracked:
            return PathSnapshot(host, tuple(self._entry_relays(p, row)))
        return PathSnapshot(host)

    def _discovery_entries(self, node: int) -> tuple[AgentListEntry, ...] | None:
        """Node ``node``'s trusted-agent list as discovery shares it."""
        st = self.state
        m = int(st.live_len[node])
        if m == 0:
            return None
        return tuple(
            AgentListEntry(
                weight=float(st.live_val[node, row]),
                agent_node_id=_nid(int(st.live_ip[node, row])),
                agent_onion=self._snapshot_for(node, row),
                agent_sp=int(st.live_ip[node, row]),
                agent_ip=int(st.live_ip[node, row]),
            )
            for row in range(m)
        )

    def _self_entry(self, node: int) -> AgentListEntry | None:
        """An agent's self-advertisement (MaintenanceService.self_entry_for)."""
        if node not in self._models:
            return None
        self._ensure_onion(node)
        if self.state.paths_tracked:
            onion = PathSnapshot(node, tuple(int(r) for r in self._own_relays(node)))
        else:
            onion = PathSnapshot(node)
        return AgentListEntry(
            weight=self.config.initial_expertise,
            agent_node_id=_nid(node),
            agent_onion=onion,
            agent_sp=node,
            agent_ip=node,
        )

    def _adopt(self, p: int, selected: list[AgentListEntry]) -> int:
        added = 0
        own_id = _nid(p)
        for entry in selected:
            if entry.agent_node_id == own_id:
                continue
            host = int(entry.agent_ip)
            snap = entry.agent_onion
            relays = snap.relays if isinstance(snap, PathSnapshot) else None
            if relays is None and self.state.paths_tracked:
                relays = tuple(int(r) for r in self._own_relays(host))
            if self.state.add(p, host, self.config.initial_expertise, relays):
                added += 1
        return added

    def _discover_for(self, p: int, wanted: int) -> int:
        """One discovery round for peer ``p`` (MaintenanceService.discover_for)."""
        cfg = self.config
        outcome = discover_agent_lists(
            self.topology,
            p,
            cfg.tokens,
            cfg.ttl,
            rng=self._peer_rngs[p],
            get_list=self._discovery_entries,
            get_self_entry=self._self_entry,
            online=self.network.is_online,
        )
        self.counter.count(Category.AGENT_DISCOVERY, outcome.request_messages)
        self.counter.count(Category.AGENT_DISCOVERY_REPLY, outcome.reply_messages)
        per_list_ranks = []
        candidates: dict[NodeID, AgentListEntry] = {}
        for reply in outcome.replies:
            entries = list(reply.entries)
            if reply.self_entry is not None:
                entries.append(reply.self_entry)
            per_list_ranks.append(rank_within_list(entries, wanted))
            for entry in entries:
                candidates.setdefault(entry.agent_node_id, entry)
        if not candidates:
            return 0
        selected = select_agents(
            list(candidates.values()), per_list_ranks, wanted, self._peer_rngs[p]
        )
        return self._adopt(p, selected)

    def bootstrap(self, rounds: int = 2) -> None:
        """Give every peer an initial trusted-agent list (§3.4.1)."""
        if self._bootstrapped:
            return
        if self.bootstrap_mode == "seeded":
            self._bootstrap_seeded()
            self._bootstrapped = True
            return
        n = self.config.network_size
        order = np.arange(n)
        for _ in range(rounds):
            self.world.rng_workload.shuffle(order)
            for i in order:
                p = int(i)
                if not self.network.is_online(p):
                    continue
                wanted = self.state.capacity - int(self.state.live_len[p])
                if wanted > 0:
                    self._discover_for(p, wanted)
        self._bootstrapped = True

    def _bootstrap_seeded(self) -> None:
        """O(n·C) direct seeding for 100k+ sweeps (documented non-parity).

        Every peer adopts a contiguous window of the agent-capable
        population starting at a random offset, and every peer gets a
        relay path of distinct non-self nodes from a random stride — the
        same *shape* of state protocol bootstrap produces, with no
        discovery traffic and no per-token Python loop.  Draws come from
        the workload stream; message counters stay untouched (experiments
        reset counters after bootstrap anyway, §4.1).
        """
        cfg = self.config
        n = cfg.network_size
        st = self.state
        rng = self.world.rng_workload
        relays_wanted = min(cfg.onion_relays, max(n - 1, 0))
        if relays_wanted > 0:
            # offsets[j] distinct within a row and never ≡ 0 (mod n) → a
            # path of distinct relays that never includes the host.
            shifts = rng.integers(0, n - 1, size=n)
            offsets = (shifts[:, None] + np.arange(relays_wanted)[None, :]) % (n - 1)
            self._own_path[:, :relays_wanted] = (
                np.arange(n)[:, None] + 1 + offsets
            ) % n
            self._own_plen[:] = relays_wanted
        self._own_built[:] = True

        capable = np.asarray(self.network.agent_capable_nodes(), dtype=np.int64)
        count = int(capable.size)
        if count == 0:
            return
        fill = min(st.capacity, count)
        start = rng.integers(0, count, size=n)
        window = (start[:, None] + np.arange(fill)[None, :]) % count
        agents_mat = capable[window]  # (n, fill)
        self_hit = agents_mat == np.arange(n)[:, None]
        if count > fill:
            # Substitute the next capable node beyond the window for any
            # peer that landed on itself.
            substitute = capable[(start + fill) % count]
            agents_mat = np.where(self_hit, substitute[:, None], agents_mat)
            st.live_ip[:, :fill] = agents_mat
            st.live_val[:, :fill] = cfg.initial_expertise
            st.live_upd[:, :fill] = 0
            st.live_len[:] = fill
        else:
            # The window is the whole capable set: peers that appear in
            # their own window just drop that one row (tiny populations).
            st.live_ip[:, :fill] = agents_mat
            st.live_val[:, :fill] = cfg.initial_expertise
            st.live_upd[:, :fill] = 0
            st.live_len[:] = fill
            for p in np.flatnonzero(self_hit.any(axis=1)):
                st._remove_live_row(int(p), st.row_of(int(p), int(p)))

    def _maintain(self, p: int) -> None:
        """§3.4.3 list maintenance: probe backups, rediscover if short."""
        if int(self.state.live_len[p]) >= self.config.refill_threshold:
            return
        self._probe_backups(p)
        if int(self.state.live_len[p]) < self.config.refill_threshold:
            wanted = self.state.capacity - int(self.state.live_len[p])
            self._discover_for(p, wanted)

    def _probe_backups(self, p: int) -> int:
        """Probe parked agents; restore the ones that answered."""
        st = self.state
        restored = 0
        control = 0
        for ip in st.backup_hosts(p):
            control += 1  # probe out
            self.probe_messages += 1
            if self.network.online_mask[ip]:
                control += 1  # probe reply
                self.probe_messages += 1
                if st.restore(p, ip):
                    restored += 1
            else:
                st.drop_backup(p, ip)
        if control:
            self.counter.count(Category.CONTROL, control)
        return restored

    # ------------------------------------------------------------------
    # Transactions (§3.6, §5.2)
    # ------------------------------------------------------------------

    def pick_pair(self, requestor: int | None = None) -> tuple[int, int]:
        """Same draws as TransactionRuntime.pick_pair, over the mask."""
        online = self.network.online_indices()
        count = int(online.size)
        if count < 2:
            raise SimulationError(
                f"need at least two online nodes, have {count}"
            )
        if requestor is None:
            requestor = int(online[int(self.rng.integers(0, count))])
        provider = requestor
        while provider == requestor:
            provider = int(online[int(self.rng.integers(0, count))])
        return requestor, provider

    def run_transaction(
        self, requestor: int | None = None, provider: int | None = None
    ) -> Outcome:
        """Execute one full transaction cycle and record metrics."""
        if not self._bootstrapped:
            self.bootstrap()
        if self.churn is not None:
            protect = {requestor} if requestor is not None else set()
            self.churn.step(self.network, self.rng, extra_protected=protect)
        req, prov = self.pick_pair(requestor)
        if provider is not None:
            if not 0 <= provider < self.config.network_size:
                raise SimulationError(f"provider {provider} does not exist")
            if not self.network.is_online(provider):
                raise SimulationError(f"provider {provider} is offline")
            prov = provider

        self._maintain(req)

        trust_before = self._trust_traffic()
        total_before = self.counter.total
        result = self._execute_query(req, prov)

        truth = float(self.truth[prov])
        err = float(result.estimate) - truth
        outcome = Outcome(
            index=self.transactions_run,
            requestor=req,
            provider=prov,
            estimate=result.estimate,
            truth=truth,
            squared_error=err * err,
            response_time_ms=result.response_time_ms,
            trust_messages=self._trust_traffic() - trust_before,
            total_messages=self.counter.total - total_before,
            answered=result.answered,
            asked=result.asked,
        )
        return self._record(outcome)

    def _execute_query(self, req: int, prov: int) -> _QueryResult:
        """One trust query + settlement (QueryService.execute, closed form)."""
        cfg = self.config
        st = self.state
        m = int(st.live_len[req])
        if m == 0:
            # No trusted agents: blind prior, no settlement.
            return _QueryResult(0.5, [], [], [], float("nan"), 0, 0)
        order = selection_order(
            st.live_val[req, :m], st.live_upd[req, :m], self._peer_rngs[req]
        )
        selected = [int(r) for r in order[: cfg.agents_queried]]
        self._ensure_onion(req)
        nonces = self._nonces(req)
        subject = _nid(prov)
        truth = float(self.truth[prov])

        # Request leg: one nonce per consulted agent, hop-counted delivery
        # through the stored (possibly stale) agent-entry onion.  While
        # every node is online the accounting collapses: nothing has ever
        # been rebuilt, every entry onion is the owner's current path,
        # every hop is alive, so a send costs plen+1 and always arrives.
        fast = not self.network.any_offline and not st.paths_tracked
        request_messages = 0
        delivered: list[tuple[int, int, int]] = []  # (row, host, entry hops)
        if fast:
            sel_hosts = st.live_ip[req, np.asarray(selected, dtype=np.int64)]
            sel_plens = self._own_plen[sel_hosts]
            for _ in selected:
                nonces.issue()
            request_messages = int((sel_plens + 1).sum())
            delivered = [
                (row, host, plen + 1)
                for row, host, plen in zip(
                    selected, sel_hosts.tolist(), sel_plens.tolist()
                )
            ]
        else:
            for row in selected:
                nonces.issue()
                host = int(st.live_ip[req, row])
                relays = self._entry_relays(req, row)
                messages, arrived = self._count_onion_send(relays, host)
                request_messages += messages
                if arrived:
                    delivered.append((row, host, len(relays) + 1))
        self.counter.count(Category.TRUST_QUERY, request_messages)
        asked = len(selected)

        # Response leg: each reached agent freshens its own onion, learns
        # the requestor if unknown, evaluates, and answers through the
        # requestor's onion (whose relays were all alive at ensure time,
        # and liveness is static within the transaction → always arrives).
        response_messages = 0
        rows: list[int] = []
        hosts: list[int] = []
        values: list[float] = []
        request_hops: list[int] = []
        own_hops = int(self._own_plen[req]) + 1
        for row, host, hops in delivered:
            if fast:
                # All relays alive and the path already built: fresh_onion
                # is a pure seq bump, no draws, no state change.
                if not self._own_built[host]:
                    self._ensure_onion(host)
            else:
                self._fresh_onion(host)
            known = self._known.setdefault(host, set())
            if req not in known:
                known.add(req)
                self.keys_learned += 1
            value = float(self._models[host].evaluate(subject, truth, self._agent_rng[host]))
            response_messages += own_hops
            if st.paths_tracked:
                # The response carries the agent's fresh onion; the
                # requestor adopts it for the row (refresh_onion).
                assert st.live_path is not None and st.live_plen is not None
                plen = int(self._own_plen[host])
                st.live_plen[req, row] = plen
                st.live_path[req, row, :] = -1
                if plen:
                    st.live_path[req, row, :plen] = self._own_path[host, :plen]
            rows.append(row)
            hosts.append(host)
            values.append(value)
            request_hops.append(hops)
        if response_messages:
            self.counter.count(Category.TRUST_RESPONSE, response_messages)

        weights = [
            float(st.live_val[req, row]) * confidence(int(st.live_upd[req, row]))
            for row in rows
        ]
        estimate = aggregate_estimate(values, weights)
        self.queries_completed += 1

        if rows:
            # Analytic stand-in for the DES clock: slowest request hop
            # chain plus the response chain, at mean per-hop latency, plus
            # FIFO serialization of the answers on the requestor's link.
            hops = max(request_hops) + own_hops
            response_time = hops * self._latency_mean
            if self.network.model_transmission:
                response_time += len(rows) * ArrayNetwork.transmission_ms(
                    float(self.network.bandwidth[req]), DEFAULT_MESSAGE_BYTES
                )
        else:
            response_time = float("nan")

        self._settle(req, rows, values, hosts, truth, subject)
        return _QueryResult(
            estimate, rows, hosts, values, response_time, len(rows), asked
        )

    def _settle(
        self,
        req: int,
        rows: list[int],
        values: list[float],
        hosts: list[int],
        truth: float,
        subject: NodeID,
    ) -> None:
        """Expertise updates, eviction, parking, reports (settle_transaction)."""
        st = self.state
        cfg = self.config
        # 1. vectorized expertise EWMA over the answering rows
        if rows:
            idx = np.asarray(rows, dtype=np.int64)
            bits = np.array(
                [consistency_bit(v, truth) for v in values], dtype=np.float64
            )
            st.live_val[req, idx] = ewma_update(
                cfg.expertise_alpha, st.live_val[req, idx], bits
            )
            st.live_upd[req, idx] += 1
        # 2. hirep-θ eviction
        st.evict_below(req, cfg.eviction_threshold)
        # 3. park agents that went offline (positive expertise → backup)
        if self.network.any_offline:
            mask = self.network.online_mask
            for ip in st.live_hosts(req):
                if not mask[ip]:
                    st.park(req, ip)
        # 4. signed transaction reports through each surviving agent's onion
        answered = set(hosts)
        report_all = cfg.report_scope == "all"
        nonces = self._nonces(req)
        report_messages = 0
        m = int(st.live_len[req])
        fast = not self.network.any_offline and not st.paths_tracked
        live = st.live_ip[req, :m].tolist()
        if fast:
            plens = self._own_plen[st.live_ip[req, :m]].tolist()
        for row, host in enumerate(live):
            if not report_all and host not in answered:
                continue
            nonces.issue()
            if fast:
                report_messages += plens[row] + 1
                arrived = True
            else:
                relays = self._entry_relays(req, row)
                messages, arrived = self._count_onion_send(relays, host)
                report_messages += messages
            if arrived:
                # Spoofing defence: an agent only accepts reports from
                # requestors whose key it learned during a trust request.
                if req in self._known.get(host, ()):
                    self._models[host].observe_report(subject, truth)
                    self.reports_accepted += 1
                else:
                    self.reports_rejected += 1
        if report_messages:
            self.counter.count(Category.TRANSACTION_REPORT, report_messages)

    # ------------------------------------------------------------------
    # Helpers (HiRepSystem-compatible surface)
    # ------------------------------------------------------------------

    def truth_key(self, ip: int) -> NodeID:
        """The nodeID trust queries about peer ``ip`` are keyed by."""
        return _nid(ip)

    def _trust_traffic(self) -> int:
        return sum(
            self.counter.by_category.get(cat, 0)
            for cat in TRUST_TRAFFIC_CATEGORIES
        )

    def retry_stats(self) -> dict[str, int]:
        """Timeout/retry accounting — structurally zero (no timeout plane)."""
        return {
            "retries_sent": 0,
            "queries_timed_out": 0,
            "unresponsive_parked": 0,
            "circuits_rebuilt": 0,
        }

    def good_agent_ips(self) -> list[int]:
        return [ip for ip, good in self.agent_quality.items() if good]

    def poor_agent_ips(self) -> list[int]:
        return [ip for ip, good in self.agent_quality.items() if not good]

    def state_nbytes(self) -> int:
        """Resident bytes of the trust-state arrays (docs/benchmarks)."""
        return self.state.nbytes() + int(
            self._own_path.nbytes + self._own_plen.nbytes + self._own_built.nbytes
        )
