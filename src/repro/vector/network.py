"""Vectorized network substrate for the array kernel.

:class:`ArrayNetwork` replaces :class:`~repro.net.network.P2PNetwork`'s
per-node objects and discrete-event delivery with a boolean liveness mask
and a bandwidth vector.  It draws from the network RNG stream in exactly
the same order as ``P2PNetwork.__init__`` (latency map construction, then
bandwidth assignment), so a world built over either network leaves every
downstream RNG stream untouched — the foundation of kernel parity.

What it deliberately does *not* model:

* **Message delivery.**  The array kernel computes message counts and
  delivery outcomes in closed form from the liveness mask (intra-
  transaction liveness is static in both kernels, so hop accounting is
  pure arithmetic).  There is no event engine.
* **Fault planes.**  Installing one raises
  :class:`~repro.errors.ConfigError` — campaign cells surface this as a
  structured ``cell_error`` instead of silently mis-simulating.

Churn is applied in bulk: :meth:`apply_churn` consumes the same uniform
draw vector :class:`~repro.net.churn.ChurnModel` produces and flips the
mask vectorized, yielding identical liveness trajectories to the object
kernel's per-node loop.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigError, UnknownNodeError
from repro.net.latency import LatencyMap, LatencyModel, UniformLatency
from repro.net.node import (
    BandwidthProfile,
    DEFAULT_BANDWIDTH_PROFILE,
    NetNode,
    assign_bandwidths,
)
from repro.net.topology import Topology
from repro.sim.metrics import MessageCounter

__all__ = ["ArrayNetwork"]


class ArrayNetwork:
    """Liveness mask + bandwidth vector standing in for a full DES network."""

    def __init__(
        self,
        topology: Topology,
        rng: np.random.Generator,
        *,
        latency_model: LatencyModel | None = None,
        bandwidth_profile: BandwidthProfile = DEFAULT_BANDWIDTH_PROFILE,
        model_transmission: bool = True,
    ) -> None:
        self.topology = topology
        self.rng = rng
        # Same construction order as P2PNetwork: the latency map first
        # (lazy — no draws), then bandwidth assignment (draws from rng).
        self.latency_model = latency_model or UniformLatency()
        self.latency = LatencyMap(self.latency_model, rng)
        self.counter = MessageCounter()
        self.model_transmission = model_transmission
        self.bandwidth = np.asarray(
            assign_bandwidths(topology.n, rng, bandwidth_profile), dtype=np.float64
        )
        from repro.net.node import AGENT_BANDWIDTH_CUTOFF_KBPS

        self._capable = self.bandwidth > AGENT_BANDWIDTH_CUTOFF_KBPS
        self._online = np.ones(topology.n, dtype=bool)
        self._online_idx: np.ndarray | None = None
        self._offline_count = 0
        self._had_offline = False
        #: Fired exactly once, immediately *before* the first node ever
        #: goes offline — the array kernel uses it to materialize per-row
        #: onion snapshots while they still provably equal current paths.
        self.on_first_offline: Callable[[], None] | None = None
        self._faults = None

    # -- introspection -------------------------------------------------------

    @property
    def n(self) -> int:
        return self.topology.n

    @property
    def online_mask(self) -> np.ndarray:
        """Boolean liveness mask over all nodes (do not mutate directly)."""
        return self._online

    @property
    def any_offline(self) -> bool:
        return self._offline_count > 0

    def online_indices(self) -> np.ndarray:
        """Indices of online nodes, ascending (cached until liveness changes)."""
        if self._online_idx is None:
            self._online_idx = np.flatnonzero(self._online)
        return self._online_idx

    def online_nodes(self) -> list[int]:
        return [int(i) for i in self.online_indices()]

    def agent_capable_nodes(self) -> list[int]:
        return [int(i) for i in np.flatnonzero(self._online & self._capable)]

    def is_online(self, index: int) -> bool:
        return bool(self._online[index])

    def node(self, index: int) -> NetNode:
        """Materialize one node view on demand (compatibility shim)."""
        if not 0 <= index < self.n:
            raise UnknownNodeError(index)
        return NetNode(
            node_index=index,
            bandwidth_kbps=float(self.bandwidth[index]),
            neighbors=self.topology.neighbors(index),
            online=bool(self._online[index]),
        )

    @staticmethod
    def transmission_ms(bandwidth_kbps: float, size_bytes: int) -> float:
        """Serialization time of one message on an access link."""
        return size_bytes * 8.0 / bandwidth_kbps

    # -- liveness ------------------------------------------------------------

    def set_online(self, index: int, online: bool) -> None:
        was = bool(self._online[index])
        online = bool(online)
        if was == online:
            return
        if not online:
            self._notify_first_offline()
            self._offline_count += 1
        else:
            self._offline_count -= 1
        self._online[index] = online
        self._online_idx = None

    def apply_churn(
        self,
        draws: np.ndarray,
        leave_prob: float,
        rejoin_prob: float,
        skip: set[int],
    ) -> tuple[int, int]:
        """Bulk churn step over the shared per-node draw vector.

        Mirrors :meth:`repro.net.churn.ChurnModel.step`'s per-node loop:
        an online node departs when its draw < leave_prob, an offline node
        rejoins when its draw < rejoin_prob, protected nodes are skipped.
        Returns ``(departures, rejoins)``.
        """
        allowed = np.ones(self.n, dtype=bool)
        for idx in skip:
            if 0 <= idx < self.n:
                allowed[idx] = False
        leave = self._online & allowed & (draws < leave_prob)
        join = ~self._online & allowed & (draws < rejoin_prob)
        departures = int(leave.sum())
        rejoins = int(join.sum())
        if departures:
            self._notify_first_offline()
        if departures or rejoins:
            self._online[leave] = False
            self._online[join] = True
            self._offline_count += departures - rejoins
            self._online_idx = None
        return departures, rejoins

    def _notify_first_offline(self) -> None:
        if self._had_offline:
            return
        self._had_offline = True
        if self.on_first_offline is not None:
            self.on_first_offline()

    # -- unsupported surfaces ------------------------------------------------

    @property
    def faults(self):
        return self._faults

    @faults.setter
    def faults(self, plane) -> None:
        if plane is None:
            self._faults = None
            return
        raise ConfigError(
            "the array kernel (hirep-array) does not support fault planes; "
            "build the object kernel ('hirep') for fault-injection runs"
        )
