"""``hirep-obs`` — inspect telemetry bundles from the command line.

Usage::

    hirep-obs summarize BUNDLE            # counts + span latency percentiles
    hirep-obs timeline  BUNDLE            # rendered event/span timeline tail
    hirep-obs timeline  BUNDLE -c net.send -c fault.drop --limit 100
    hirep-obs diff      BUNDLE_A BUNDLE_B # metric/count deltas between runs

``BUNDLE`` is a bundle directory — either one written directly with
:func:`repro.obs.bundle.write_bundle` or a content-addressed directory an
orchestrator run produced under ``--telemetry DIR`` (the path is recorded
in the run manifest's ``finished`` events and printed by
``hirep-experiments``).

Everything prints deterministically: categories, names, and metric keys
come out sorted, and percentiles use the nearest-rank rule on sorted
durations, so CI can golden-file this output.
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path
from typing import Any, Sequence

from repro.obs.bundle import Bundle, load_bundle

__all__ = ["main"]


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    n = len(sorted_values)
    if n == 0:
        return float("nan")
    rank = min(n, max(1, math.ceil(q * n)))
    return sorted_values[rank - 1]


def _load(path: str) -> Bundle:
    directory = Path(path)
    if not (directory / "events.jsonl").is_file():
        raise SystemExit(f"not a telemetry bundle (no events.jsonl): {path}")
    return load_bundle(directory)


def _span_durations(bundle: Bundle) -> dict[str, list[float]]:
    """Span name -> sorted durations (finished spans only)."""
    durations: dict[str, list[float]] = {}
    for span in bundle.spans:
        if span.get("end_ms") is None:
            continue
        durations.setdefault(span["name"], []).append(
            span["end_ms"] - span["start_ms"]
        )
    return {name: sorted(values) for name, values in sorted(durations.items())}


def _event_counts(bundle: Bundle) -> dict[str, int]:
    counts: dict[str, int] = {}
    for event in bundle.events:
        category = event.get("category", "?")
        counts[category] = counts.get(category, 0) + 1
    return dict(sorted(counts.items()))


# -- summarize ---------------------------------------------------------------


def cmd_summarize(args: argparse.Namespace) -> int:
    bundle = _load(args.bundle)
    print(f"bundle: {bundle.path}")
    if bundle.meta:
        spec = bundle.meta.get("spec")
        if isinstance(spec, dict):
            target = f"{spec.get('module', '?')}.{spec.get('func', 'run')}"
            print(f"job: {target} {spec.get('kwargs', {})}")
    print(f"events: {len(bundle.events)}   spans: {len(bundle.spans)}")

    counts = _event_counts(bundle)
    if counts:
        print("\nevents by category:")
        width = max(len(c) for c in counts)
        for category, n in counts.items():
            print(f"  {category:<{width}}  {n}")

    durations = _span_durations(bundle)
    if durations:
        print("\nspan latency (sim-ms):")
        width = max(len(n) for n in durations)
        header = f"  {'span':<{width}}  {'count':>6} {'p50':>10} {'p90':>10} {'p99':>10} {'max':>10}"
        print(header)
        for name, values in durations.items():
            print(
                f"  {name:<{width}}  {len(values):>6}"
                f" {_percentile(values, 0.50):>10.3f}"
                f" {_percentile(values, 0.90):>10.3f}"
                f" {_percentile(values, 0.99):>10.3f}"
                f" {values[-1]:>10.3f}"
            )

    if args.metrics:
        print("\nmetrics:")
        for name, value in sorted(bundle.metrics.items()):
            print(f"  {name} = {value}")
    else:
        wanted = [
            k
            for k in bundle.metrics
            if not k.startswith("span_ms[") and ".le[" not in k
        ]
        if wanted:
            print("\nmetrics (scalars; --metrics for all):")
            for name in sorted(wanted):
                print(f"  {name} = {bundle.metrics[name]}")
    return 0


# -- timeline ----------------------------------------------------------------


def _render_event(event: dict[str, Any]) -> str:
    fields = event.get("fields", {})
    parts = " ".join(f"{k}={fields[k]}" for k in fields)
    return f"[{event['t_ms']:12.3f}ms] {event['category']:<22} {parts}"


def _render_span(span: dict[str, Any]) -> str:
    end = span.get("end_ms")
    dur = f"{end - span['start_ms']:10.3f}ms" if end is not None else "      open"
    attrs = span.get("attrs", {})
    extra = " ".join(f"{k}={attrs[k]}" for k in attrs)
    return (
        f"[{span['start_ms']:12.3f}ms] span {span['name']:<18} {dur}"
        f" #{span['span_id']}" + (f" {extra}" if extra else "")
    )


def cmd_timeline(args: argparse.Namespace) -> int:
    bundle = _load(args.bundle)
    rows: list[tuple[float, int, str]] = []
    if not args.spans_only:
        for order, event in enumerate(bundle.events):
            if args.category and event.get("category") not in args.category:
                continue
            rows.append((event["t_ms"], order, _render_event(event)))
    if not args.events_only:
        for order, span in enumerate(bundle.spans):
            if args.category and span.get("category") not in args.category:
                continue
            rows.append((span["start_ms"], len(bundle.events) + order, _render_span(span)))
    rows.sort(key=lambda r: (r[0], r[1]))
    shown = rows[-args.limit :] if args.limit else rows
    for _, _, line in shown:
        print(line)
    if len(shown) < len(rows):
        print(f"({len(rows) - len(shown)} earlier row(s) omitted; --limit 0 for all)")
    return 0


# -- diff --------------------------------------------------------------------


def _diff_section(
    title: str, a: dict[str, float], b: dict[str, float], *, show_equal: bool
) -> list[str]:
    lines = []
    keys = sorted(set(a) | set(b))
    for key in keys:
        va, vb = a.get(key), b.get(key)
        if va == vb:
            if show_equal:
                lines.append(f"    {key}: {va}")
            continue
        if va is None:
            lines.append(f"  + {key}: {vb}")
        elif vb is None:
            lines.append(f"  - {key}: {va}")
        else:
            delta = ""
            if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
                delta = f"  ({vb - va:+g})"
            lines.append(f"  ~ {key}: {va} -> {vb}{delta}")
    if lines:
        lines.insert(0, f"{title}:")
    return lines


def cmd_diff(args: argparse.Namespace) -> int:
    a = _load(args.bundle_a)
    b = _load(args.bundle_b)
    print(f"a: {a.path}")
    print(f"b: {b.path}")
    lines: list[str] = []
    counts_a = {k: float(v) for k, v in _event_counts(a).items()}
    counts_b = {k: float(v) for k, v in _event_counts(b).items()}
    lines += _diff_section("events by category", counts_a, counts_b, show_equal=False)
    spans_a = {n: float(len(v)) for n, v in _span_durations(a).items()}
    spans_b = {n: float(len(v)) for n, v in _span_durations(b).items()}
    lines += _diff_section("span counts", spans_a, spans_b, show_equal=False)
    lines += _diff_section("metrics", a.metrics, b.metrics, show_equal=False)
    if not lines:
        print("bundles are identical in events, spans, and metrics")
        return 0
    for line in lines:
        print(line)
    return 1 if args.exit_code else 0


# -- entry point -------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hirep-obs", description="inspect hiREP telemetry bundles"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="counts and span latency percentiles")
    p_sum.add_argument("bundle", help="bundle directory")
    p_sum.add_argument(
        "--metrics", action="store_true", help="print every metric, not just scalars"
    )
    p_sum.set_defaults(func=cmd_summarize)

    p_tl = sub.add_parser("timeline", help="render the event/span timeline")
    p_tl.add_argument("bundle", help="bundle directory")
    p_tl.add_argument(
        "-c",
        "--category",
        action="append",
        default=[],
        help="only these categories (repeatable; matches events and spans)",
    )
    p_tl.add_argument(
        "--limit",
        type=int,
        default=50,
        help="show only the last N rows (0 = all; default 50)",
    )
    p_tl.add_argument(
        "--events-only", action="store_true", help="timeline events, no spans"
    )
    p_tl.add_argument(
        "--spans-only", action="store_true", help="spans, no timeline events"
    )
    p_tl.set_defaults(func=cmd_timeline)

    p_diff = sub.add_parser("diff", help="compare two bundles")
    p_diff.add_argument("bundle_a", help="baseline bundle directory")
    p_diff.add_argument("bundle_b", help="comparison bundle directory")
    p_diff.add_argument(
        "--exit-code",
        action="store_true",
        help="exit 1 when the bundles differ (for scripting)",
    )
    p_diff.set_defaults(func=cmd_diff)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
