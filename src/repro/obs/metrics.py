"""The metric registry: counters, gauges, histograms, one snapshot.

Before the telemetry plane, per-run numbers lived in five disjoint silos
(:class:`~repro.sim.metrics.MessageCounter`, :class:`~repro.sim.metrics.MSETracker`,
:class:`~repro.sim.metrics.ResponseTimeTracker`, :class:`~repro.net.faults.FaultStats`,
``HiRepSystem.retry_stats``) with five different shapes.  A
:class:`Registry` gives them one export surface:

* **instruments** (:class:`Counter`, :class:`Gauge`, :class:`Histogram`)
  are created through the registry and updated on the hot path — plain
  attribute bumps, no allocation;
* **collectors** are pull-model callables registered by adapters
  (:meth:`Registry.register_collector`); they snapshot the existing
  metric silos at :meth:`Registry.collect` time so legacy collectors are
  absorbed without rewriting them.

:meth:`Registry.collect` returns one flat, name-sorted ``dict`` — the
shape ``metrics.json`` in a telemetry bundle and ``hirep-obs summarize``
both consume.  Determinism contract: histogram bucket bounds are fixed at
construction, every mapping is emitted in sorted key order, and nothing
here reads the wall clock, so a snapshot is a pure function of the
simulation.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Iterable, Mapping

from repro.errors import ConfigError

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "Registry",
]

#: Fixed latency bucket upper bounds (milliseconds).  Chosen to span one
#: FIFO serialization (~tens of ms) up to multi-retry query timeouts;
#: fixed here — never derived from data — so two runs always bucket
#: identically.
DEFAULT_BUCKETS_MS: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
    500.0, 1_000.0, 2_000.0, 5_000.0, 10_000.0, 30_000.0,
)

#: A pull-model metric source: returns ``name -> value`` at collect time.
Collector = Callable[[], Mapping[str, float]]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n!r})")
        self.value += n


class Gauge:
    """A value that goes up and down (queue depth, open spans, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Fixed-bound bucketed distribution (cumulative-free, deterministic).

    ``bounds`` are inclusive upper edges; one overflow bucket catches the
    rest.  Observation cost is one ``bisect`` — no allocation, no sorting
    of observed data, so the snapshot is independent of observation order.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum")

    def __init__(
        self, name: str, bounds: Iterable[float] = DEFAULT_BUCKETS_MS
    ) -> None:
        self.name = name
        self.bounds: tuple[float, ...] = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ConfigError(f"histogram {name!r} needs at least one bound")
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ConfigError(
                f"histogram {name!r} bounds must be strictly increasing: "
                f"{self.bounds}"
            )
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def as_items(self) -> list[tuple[str, float]]:
        """Flat ``(suffix, value)`` pairs for :meth:`Registry.collect`."""
        items: list[tuple[str, float]] = [
            ("count", self.count),
            ("sum", self.sum),
        ]
        for bound, n in zip(self.bounds, self.bucket_counts):
            items.append((f"le[{bound:g}]", n))
        items.append(("le[inf]", self.bucket_counts[-1]))
        return items


class Registry:
    """Name-keyed instrument store plus pull-model collectors."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: list[Collector] = []

    # -- instrument creation (get-or-create, so call sites stay terse) -----

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            self._check_fresh(name, self._gauges, self._histograms)
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            self._check_fresh(name, self._counters, self._histograms)
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_BUCKETS_MS
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            self._check_fresh(name, self._counters, self._gauges)
            histogram = self._histograms[name] = Histogram(name, bounds)
        elif histogram.bounds != tuple(float(b) for b in bounds):
            raise ConfigError(
                f"histogram {name!r} re-declared with different bounds"
            )
        return histogram

    @staticmethod
    def _check_fresh(name: str, *others: Mapping[str, object]) -> None:
        if any(name in table for table in others):
            raise ConfigError(f"metric {name!r} already exists with another type")

    # -- collectors --------------------------------------------------------

    def register_collector(self, collector: Collector) -> None:
        """Add a pull-model source consulted on every :meth:`collect`."""
        self._collectors.append(collector)

    # -- snapshot ----------------------------------------------------------

    def collect(self) -> dict[str, float]:
        """One flat, name-sorted snapshot of every metric.

        Instruments come first, then collector output; a collector may not
        shadow an instrument (that would make the snapshot depend on
        registration order).
        """
        out: dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            for suffix, value in histogram.as_items():
                out[f"{name}.{suffix}"] = value
        for collector in self._collectors:
            for name, value in collector().items():
                if name in out:
                    raise ConfigError(
                        f"collector output {name!r} collides with an "
                        "existing metric"
                    )
                out[name] = value
        return dict(sorted(out.items()))
