"""Deterministic telemetry exporters: JSONL events and Chrome traces.

Two formats cover the two consumption modes:

* ``events.jsonl`` — one JSON object per line (timeline events first,
  then spans), trivially greppable and diffable; what ``hirep-obs``
  reads back;
* ``trace.json`` — the Chrome trace-event format, loadable in
  ``chrome://tracing`` / Perfetto.  Simulated milliseconds map to trace
  microseconds (the format's native unit), so one sim-ms renders as one
  displayed ms.

Determinism contract (DET003 and beyond): every object is serialized
with sorted keys and fixed separators, floats pass through
:func:`_jsonable` (NaN/±inf → ``None`` — ``json`` would otherwise emit
tokens that are not valid JSON), and nothing here reads the wall clock.
Two runs at the same seed produce byte-identical files regardless of
``PYTHONHASHSEED``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Iterable, Mapping, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.plane import TelemetryPlane

__all__ = [
    "event_rows",
    "span_rows",
    "write_events_jsonl",
    "read_jsonl",
    "write_chrome_trace",
    "write_metrics_json",
]


def _jsonable(value: Any) -> Any:
    """``value`` with non-finite floats replaced by ``None``.

    ``json.dumps`` happily emits ``NaN``/``Infinity`` which are *not*
    JSON; an open span's duration and an empty run's MSE are both NaN,
    so sanitizing here keeps every exported file standards-valid.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def _dumps(obj: Any) -> str:
    return json.dumps(
        _jsonable(obj), sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def event_rows(plane: "TelemetryPlane") -> list[dict[str, Any]]:
    """Timeline entries as plain dicts (``kind="event"``).

    Entry fields are nested under ``"fields"`` so a field may share a
    name with the envelope keys (a ``fault.drop`` event carries the
    affected message's ``category`` as a field, for example).
    """
    rows: list[dict[str, Any]] = []
    for entry in plane.tracer.entries():
        rows.append(
            {
                "kind": "event",
                "t_ms": entry.time,
                "category": entry.category,
                "fields": dict(entry.fields),
            }
        )
    return rows


def span_rows(plane: "TelemetryPlane") -> list[dict[str, Any]]:
    """Spans as plain dicts (``kind="span"``), in begin order."""
    rows: list[dict[str, Any]] = []
    for span in plane.spans.spans():
        rows.append(
            {
                "kind": "span",
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "category": span.category,
                "start_ms": span.start_ms,
                "end_ms": span.end_ms,
                "attrs": dict(span.attrs),
            }
        )
    return rows


def write_events_jsonl(plane: "TelemetryPlane", path: str | Path) -> Path:
    """Write the full timeline (events then spans) as JSONL."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for row in event_rows(plane):
            fh.write(_dumps(row) + "\n")
        for row in span_rows(plane):
            fh.write(_dumps(row) + "\n")
    return path


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL file back into a list of dicts (blank lines skipped)."""
    rows: list[dict[str, Any]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            rows.append(json.loads(line))
    return rows


# -- Chrome trace-event format ----------------------------------------------

#: Track (tid) layout inside the single trace "process".
_TID_TXN = 0  # transactions and derived phases
_TID_MSG = 1  # per-message flight spans
_TID_EVENT = 2  # instant events (sends, faults, dispatches)

_TRACK_NAMES = {
    _TID_TXN: "transactions",
    _TID_MSG: "messages",
    _TID_EVENT: "events",
}


def chrome_trace_obj(plane: "TelemetryPlane") -> dict[str, Any]:
    """The trace as a Chrome trace-event object (not yet serialized).

    Spans become ``"X"`` complete events, timeline entries become
    ``"i"`` instants; sim milliseconds are exported as microseconds
    (``ts``/``dur``), the format's native unit.
    """
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": name},
        }
        for tid, name in sorted(_TRACK_NAMES.items())
    ]
    for span in plane.spans.spans():
        end_ms = span.end_ms if span.end_ms is not None else span.start_ms
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": _TID_MSG if span.category == "msg" else _TID_TXN,
                "name": span.name,
                "cat": span.category,
                "ts": span.start_ms * 1000.0,
                "dur": (end_ms - span.start_ms) * 1000.0,
                "args": dict(span.attrs, span_id=span.span_id),
            }
        )
    for entry in plane.tracer.entries():
        events.append(
            {
                "ph": "i",
                "pid": 0,
                "tid": _TID_EVENT,
                "name": entry.category,
                "s": "t",  # thread-scoped instant
                "ts": entry.time * 1000.0,
                "args": dict(entry.fields),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(plane: "TelemetryPlane", path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(_dumps(chrome_trace_obj(plane)))
    return path


def write_metrics_json(
    metrics: Mapping[str, float] | Iterable[tuple[str, float]],
    path: str | Path,
) -> Path:
    """Write a metric snapshot (``Registry.collect`` output) as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(_dumps(dict(metrics)))
    return path
