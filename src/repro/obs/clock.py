"""Wall-clock time source for telemetry on live (served) deployments.

The simulator's clock is ``SimEngine.now`` — virtual milliseconds that
advance only when events fire.  A served fleet (:mod:`repro.serve`) runs
on the real clock, but the telemetry plane is time-source agnostic: spans
and events take explicit millisecond stamps.  :class:`WallClock` is the
one sanctioned bridge — a monotonic millisecond counter, zeroed at
construction so exported timelines start near 0 like simulated ones and
never leak absolute host time into bundles.

This module is the only place in ``repro`` outside the lint-exempt dev
tooling that may read the host clock; everything wall-timed goes through
it so the determinism rules keep a single audited escape hatch.
"""

from __future__ import annotations

import time

__all__ = ["WallClock"]


class WallClock:
    """Monotonic milliseconds since construction (or :meth:`reset`)."""

    def __init__(self) -> None:
        self._t0 = time.perf_counter()  # lint: allow[DET002]

    @property
    def now(self) -> float:
        """Milliseconds elapsed on the host's monotonic clock."""
        return (time.perf_counter() - self._t0) * 1000.0  # lint: allow[DET002]

    def reset(self) -> None:
        """Re-zero the clock (e.g. at the start of a load run)."""
        self._t0 = time.perf_counter()  # lint: allow[DET002]
