"""Telemetry bundles: one directory per captured run, content-addressed.

A *bundle* is the on-disk form of a :class:`~repro.obs.plane.TelemetryPlane`:

* ``events.jsonl`` — timeline events and spans (see
  :mod:`repro.obs.export`);
* ``trace.json``   — the Chrome/Perfetto trace;
* ``metrics.json`` — the registry snapshot;
* ``meta.json``    — caller-supplied context (job key, spec, label);
* ``profile.json`` — the wall-clock profile (:mod:`repro.obs.prof`),
  present only when the plane carried a profiler.

The bundle **key** is a SHA-256 over the three telemetry files only —
``meta.json`` and ``profile.json`` are excluded: annotations and
wall-clock profile data are honest about being nondeterministic, so
they never change a bundle's identity.  :func:`store_bundle`
fans bundles out under ``<root>/<key[:2]>/<key>/`` exactly like the
result cache, so a sweep's bundles live naturally next to its cached
results and identical telemetry is stored once.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, TYPE_CHECKING

from repro.errors import ConfigError
from repro.obs.export import (
    read_jsonl,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_json,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.plane import TelemetryPlane

__all__ = ["Bundle", "bundle_key", "load_bundle", "store_bundle", "write_bundle"]

#: The files that define a bundle's identity, in hashing order.
_HASHED_FILES = ("events.jsonl", "metrics.json", "trace.json")


def write_bundle(
    plane: "TelemetryPlane",
    directory: str | Path,
    *,
    meta: dict[str, Any] | None = None,
) -> Path:
    """Export ``plane`` into ``directory`` (created if needed).

    Wall-clock profiler gauges (``prof.*``) are kept out of
    ``metrics.json`` — they land in ``profile.json`` with the sampled
    stacks — so the hashed telemetry files stay a pure function of the
    simulation whether or not a profiler rode along.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    write_events_jsonl(plane, directory / "events.jsonl")
    write_chrome_trace(plane, directory / "trace.json")
    metrics = {
        k: v for k, v in plane.collect().items() if not k.startswith("prof.")
    }
    write_metrics_json(metrics, directory / "metrics.json")
    (directory / "meta.json").write_text(
        json.dumps(meta or {}, sort_keys=True, separators=(",", ":"))
    )
    profiler = getattr(plane, "profiler", None)
    if profiler is not None:
        from repro.obs.prof import PROFILE_FILENAME

        (directory / PROFILE_FILENAME).write_text(
            json.dumps(
                profiler.to_dict(), sort_keys=True, separators=(",", ":")
            )
        )
    return directory


def bundle_key(directory: str | Path) -> str:
    """SHA-256 identity of the bundle at ``directory``.

    Hashes the telemetry files only (never ``meta.json``), each prefixed
    by its name and length so file boundaries can't alias.
    """
    directory = Path(directory)
    digest = hashlib.sha256()
    for name in _HASHED_FILES:
        path = directory / name
        if not path.is_file():
            raise ConfigError(f"not a telemetry bundle (missing {name}): {directory}")
        data = path.read_bytes()
        digest.update(f"{name}:{len(data)}:".encode())
        digest.update(data)
    return digest.hexdigest()


def store_bundle(
    plane: "TelemetryPlane",
    root: str | Path,
    *,
    meta: dict[str, Any] | None = None,
) -> tuple[str, Path]:
    """Write ``plane`` content-addressed under ``root``; returns (key, path).

    Layout mirrors :class:`~repro.exec.cache.ResultCache`:
    ``<root>/<key[:2]>/<key>/``.  The bundle is staged in a scratch
    directory first (the key is only known after export), then renamed
    into place; if an identical bundle already exists the stage is
    discarded, so re-running a cached job costs no extra disk.
    """
    root = Path(root)
    stage = root / ".staging"
    stage.mkdir(parents=True, exist_ok=True)
    stage_dir = Path(tempfile.mkdtemp(dir=stage, prefix="bundle-"))
    write_bundle(plane, stage_dir, meta=meta)
    key = bundle_key(stage_dir)
    final = root / key[:2] / key
    if final.is_dir():
        for name in (
            "events.jsonl",
            "trace.json",
            "metrics.json",
            "meta.json",
            "profile.json",
        ):
            (stage_dir / name).unlink(missing_ok=True)
        stage_dir.rmdir()
    else:
        final.parent.mkdir(parents=True, exist_ok=True)
        stage_dir.rename(final)
    return key, final


@dataclass
class Bundle:
    """A loaded telemetry bundle (read side of :func:`write_bundle`)."""

    path: Path
    events: list[dict[str, Any]] = field(default_factory=list)
    spans: list[dict[str, Any]] = field(default_factory=list)
    metrics: dict[str, float] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)
    profile: dict[str, Any] | None = None

    @property
    def key(self) -> str:
        return bundle_key(self.path)


def load_bundle(directory: str | Path) -> Bundle:
    """Read a bundle directory back into memory."""
    directory = Path(directory)
    rows = read_jsonl(directory / "events.jsonl")
    metrics = json.loads((directory / "metrics.json").read_text())
    meta_path = directory / "meta.json"
    meta = json.loads(meta_path.read_text()) if meta_path.is_file() else {}
    profile_path = directory / "profile.json"
    profile = (
        json.loads(profile_path.read_text()) if profile_path.is_file() else None
    )
    return Bundle(
        path=directory,
        events=[r for r in rows if r.get("kind") == "event"],
        spans=[r for r in rows if r.get("kind") == "span"],
        metrics=metrics,
        meta=meta,
        profile=profile,
    )
