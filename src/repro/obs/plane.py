"""The telemetry plane: one observer that sees a whole deployment.

:class:`TelemetryPlane` binds the three telemetry primitives together —

* an **event timeline** (a :class:`~repro.sim.trace.Tracer`): every
  network send, protocol dispatch, and fault-plane intervention as an
  instant event at simulated time;
* a **span recorder** (:class:`~repro.obs.spans.SpanRecorder`): one span
  per transaction, with derived protocol-phase children
  (``query`` / ``votes`` / ``report``) and per-message flight spans;
* a **metric registry** (:class:`~repro.obs.metrics.Registry`): live
  histograms of span durations plus pull-model collectors that absorb the
  pre-existing metric silos (message counter, MSE, response times, fault
  stats, retry stats) at snapshot time.

:meth:`TelemetryPlane.attach` instruments a system *from the outside*:
it taps the :class:`~repro.core.dispatch.ProtocolDispatcher` tracer slot
(chaining any tracer already installed), appends network and fault
observers, and wraps the system's bound ``run_transaction`` — protocol
code is untouched, and a system without a plane attached runs the exact
pre-telemetry code path.  Everything recorded is keyed to simulation
time, so output is a pure function of the seed.
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

from repro.errors import ConfigError
from repro.obs.metrics import Registry
from repro.obs.spans import Span, SpanRecorder
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.prof import Profiler

__all__ = ["TelemetryPlane"]

#: Event categories that open/extend the derived protocol-phase spans.
#: Maps accounting category -> phase name (hiREP and flooding baselines
#: share the taxonomy: a query fans out, votes come back, reports settle).
_PHASE_OF_CATEGORY = {
    "trust_query": "query",
    "flood_query": "query",
    "trust_response": "votes",
    "flood_response": "votes",
    "transaction_report": "report",
}

#: Order phases are emitted in when present (dict order is insertion
#: order, but the contract deserves to be explicit).
_PHASE_ORDER = ("query", "votes", "report")


class _Attachment:
    """Per-system instrumentation state (one per :meth:`attach` call)."""

    __slots__ = ("system", "label", "engine", "txn_span", "phase_windows")

    def __init__(self, system: Any, label: str | None) -> None:
        self.system = system
        self.label = label
        self.engine = system.network.engine
        #: the open transaction span, if a transaction is in flight.
        self.txn_span: Span | None = None
        #: phase name -> [first_ms, last_ms] observed inside the open txn.
        self.phase_windows: dict[str, list[float]] = {}

    def mark_phase(self, category: str, now: float) -> None:
        phase = _PHASE_OF_CATEGORY.get(category)
        if phase is None or self.txn_span is None:
            return
        window = self.phase_windows.get(phase)
        if window is None:
            self.phase_windows[phase] = [now, now]
        else:
            window[1] = now


class TelemetryPlane:
    """Spans + events + metrics for one or more attached systems.

    Parameters
    ----------
    capacity:
        Event-timeline buffer size (evictions are counted, never silent).
    categories:
        Optional category allow-list for the event timeline (spans and
        metrics are unaffected).
    flight_spans:
        Record one span per dispatched protocol message (sent → handled).
        On by default; disable for huge runs where per-message spans
        dominate the bundle.
    """

    def __init__(
        self,
        *,
        capacity: int = 1_000_000,
        categories: Any = None,
        flight_spans: bool = True,
        profiler: "Profiler | None" = None,
    ) -> None:
        self.tracer = Tracer(capacity=capacity, categories=categories)
        self.spans = SpanRecorder()
        self.registry = Registry()
        self.flight_spans = flight_spans
        self.profiler: "Profiler | None" = None
        self._attachments: list[_Attachment] = []
        self.registry.register_collector(self._self_collector)
        if profiler is not None:
            self.set_profiler(profiler)

    def set_profiler(self, profiler: "Profiler") -> "Profiler":
        """Join a :class:`~repro.obs.prof.Profiler` to this plane.

        The profiler's watermark gauges (``prof.*``) enter the metric
        snapshot, transaction spans gain a ``wall_ms`` attribute, and
        samples taken inside a transaction are attributed to the
        ``transaction`` context.  Starting/stopping the profiler stays
        the caller's job (``capture(profile=True)`` does both).
        """
        if self.profiler is not None:
            raise ConfigError("telemetry plane already has a profiler")
        self.profiler = profiler
        self.registry.register_collector(profiler.collect)
        return profiler

    # -- introspection -----------------------------------------------------

    @property
    def attached(self) -> int:
        """How many systems this plane instruments."""
        return len(self._attachments)

    def labels(self) -> list[str]:
        return [a.label or "" for a in self._attachments]

    def _self_collector(self) -> dict[str, float]:
        return {
            "obs.events.recorded": self.tracer.recorded,
            "obs.events.evicted": self.tracer.evicted,
            "obs.spans.recorded": len(self.spans),
        }

    # -- attachment --------------------------------------------------------

    def attach(self, system: Any, *, label: str | None = None) -> "TelemetryPlane":
        """Instrument ``system`` (any :class:`TransactionRuntime`).

        The first attachment is unlabelled; subsequent ones default to
        ``sys1``, ``sys2``, ... so multi-system captures (e.g. a baseline
        comparison) keep their metric namespaces apart.
        """
        if label is None and self._attachments:
            label = f"sys{len(self._attachments)}"
        att = _Attachment(system, label)
        self._attachments.append(att)
        self._install_network_taps(att)
        self._install_dispatch_tap(att)
        self._wrap_run_transaction(att)
        self._register_system_collector(att)
        return self

    # -- event recording ---------------------------------------------------

    def _record(self, att: _Attachment, category: str, /, **fields: Any) -> None:
        if att.label is not None:
            fields["sys"] = att.label
        self.tracer.record(att.engine.now, category, **fields)

    def _install_network_taps(self, att: _Attachment) -> None:
        network = att.system.network

        def on_send(msg: Any) -> None:
            # Same convention as repro.sim.trace.tap_network: the event
            # category IS the message category, so timelines read
            # "trust_query src=3 dst=17" rather than a flat "net.send".
            self._record(
                att,
                msg.category,
                src=msg.src,
                dst=msg.dst,
                bytes=msg.size_bytes,
            )
            att.mark_phase(msg.category, att.engine.now)

        def on_fault(kind: str, msg: Any, extra_ms: float) -> None:
            if kind == "delay":
                self._record(
                    att,
                    "fault.delay",
                    src=msg.src,
                    dst=msg.dst,
                    category=msg.category,
                    extra_ms=extra_ms,
                )
                self.registry.counter("obs.fault.delays").inc()
            else:
                self._record(
                    att,
                    "fault.drop",
                    src=msg.src,
                    dst=msg.dst,
                    category=msg.category,
                )
                self.registry.counter("obs.fault.drops").inc()

        network.observers.append(on_send)
        network.fault_observers.append(on_fault)

    def _install_dispatch_tap(self, att: _Attachment) -> None:
        dispatcher = getattr(att.system, "dispatcher", None)
        if dispatcher is None:
            return  # flooding/gossip baselines have no dispatch layer
        previous = dispatcher.tracer

        def tap(record: Any) -> None:
            if previous is not None:
                previous(record)
            now = att.engine.now
            name = type(record.message).__name__
            if record.handled:
                self._record(
                    att, "dispatch.handled", ip=record.ip, msg=name, role=record.role
                )
            else:
                self._record(att, "dispatch.dropped", ip=record.ip, msg=name)
            if self.flight_spans and att.txn_span is not None:
                flight = self.spans.emit(
                    f"msg.{name}",
                    min(record.sent_at, now),
                    now,
                    category="msg",
                    parent=att.txn_span,
                    ip=record.ip,
                )
                if att.label is not None:
                    flight.attrs["sys"] = att.label

        dispatcher.tracer = tap

    # -- transaction spans -------------------------------------------------

    def _wrap_run_transaction(self, att: _Attachment) -> None:
        inner = att.system.run_transaction

        def run_transaction(*args: Any, **kwargs: Any) -> Any:
            span = self.spans.begin(
                "transaction",
                start_ms=att.engine.now,
                category="txn",
                index=att.system.transactions_run,
            )
            if att.label is not None:
                span.attrs["sys"] = att.label
            att.txn_span = span
            att.phase_windows = {}
            profiler = self.profiler
            try:
                if profiler is not None:
                    # The join lives in the profiler (profile.json), not in
                    # span attrs: wall-clock values in the span tree would
                    # make the hashed bundle files nondeterministic.
                    wall_t0 = profiler.clock.now
                    with profiler.context("transaction"):
                        outcome = inner(*args, **kwargs)
                    profiler.note_span_wall(
                        span.span_id, span.name, profiler.clock.now - wall_t0
                    )
                else:
                    outcome = inner(*args, **kwargs)
            finally:
                self._finish_transaction(att, span)
            span.attrs.update(
                requestor=outcome.requestor,
                provider=outcome.provider,
                estimate=outcome.estimate,
                messages=outcome.total_messages or outcome.messages,
            )
            return outcome

        # Shadow the bound method on the instance only — the class, and
        # every uninstrumented system, keeps the original.
        att.system.run_transaction = run_transaction

    def _finish_transaction(self, att: _Attachment, span: Span) -> None:
        end = att.engine.now
        for phase in _PHASE_ORDER:
            window = att.phase_windows.get(phase)
            if window is None:
                continue
            # Events only happen between txn begin and end (sim time is
            # monotonic), so the window is already inside the parent.
            first, last = window
            phase_span = self.spans.emit(
                phase, first, last, category="phase", parent=span
            )
            if att.label is not None:
                phase_span.attrs["sys"] = att.label
            self._observe_span(phase_span)
        att.txn_span = None
        att.phase_windows = {}
        self.spans.finish(span, end)
        self._observe_span(span)

    def _observe_span(self, span: Span) -> None:
        self.registry.histogram(f"span_ms[{span.name}]").observe(span.duration_ms)

    # -- metric absorption -------------------------------------------------

    def _register_system_collector(self, att: _Attachment) -> None:
        prefix = f"{att.label}." if att.label else ""
        system = att.system

        def collector() -> dict[str, float]:
            out: dict[str, float] = {}
            counter = system.counter
            out[f"{prefix}net.messages.total"] = counter.total
            for category in sorted(counter.by_category):
                out[f"{prefix}net.messages[{category}]"] = counter.by_category[
                    category
                ]
            out[f"{prefix}transactions"] = system.transactions_run
            out[f"{prefix}trust.mse"] = system.mse.mse()
            out[f"{prefix}response_ms.mean"] = system.response_times.mean()
            out[f"{prefix}response_ms.count"] = len(system.response_times)
            retry_stats = getattr(system, "retry_stats", None)
            if callable(retry_stats):
                for key, value in retry_stats().items():
                    out[f"{prefix}retry.{key}"] = value
            faults = getattr(system.network, "faults", None)
            if faults is not None:
                for key, value in faults.stats.as_dict().items():
                    out[f"{prefix}fault.{key}"] = value
            return out

        self.registry.register_collector(collector)

    # -- snapshot ----------------------------------------------------------

    def collect(self) -> dict[str, float]:
        """The registry snapshot (sorted; see :meth:`Registry.collect`)."""
        return self.registry.collect()
