"""Low-overhead performance profiler: sampled stacks, memory watermarks.

The telemetry plane (:mod:`repro.obs.plane`) answers *what the protocol
did* — spans and metrics keyed to simulated time.  This module answers
*where the wall-clock went*: a background thread samples the observed
thread's Python stack at a fixed interval (``sys._current_frames`` —
no tracing hooks, so the observed code runs unmodified), and optional
memory instrumentation records ``tracemalloc`` high-water marks plus
RSS and GC-collection gauges.

Attachment is the same from-the-outside story as the rest of the plane:
``capture(profile=True)`` starts a :class:`Profiler` for the whole
window, :meth:`TelemetryPlane.set_profiler` joins it to the span tree
(the profiler records each transaction span's wall milliseconds in
``span_wall``, keyed by span id, and samples are attributed to the
protocol context active when they were taken), and
:func:`repro.obs.bundle.write_bundle` persists ``profile.json`` next to
the deterministic telemetry files.  Profile data is wall-clock and
therefore *never* part of a bundle's content-address — it rides along
like ``meta.json``.

Everything wall-timed here goes through :class:`~repro.obs.clock.WallClock`
(this module and ``repro.obs.clock`` are the two sanctioned homes for
host-clock access — lint rule OBS002 ratchets every other site).
"""

from __future__ import annotations

import gc
import resource
import sys
import threading
from contextlib import contextmanager
from types import CodeType
from typing import Any, Iterator, Mapping

from repro.errors import ConfigError
from repro.obs.clock import WallClock

__all__ = [
    "PROFILE_FILENAME",
    "PROFILE_SCHEMA",
    "Profiler",
    "collapsed_lines",
    "max_rss_kb",
    "profile_chrome_trace_obj",
    "write_flamegraph",
]

#: Schema version stamped into every exported ``profile.json``.
PROFILE_SCHEMA = 1

#: File name a profile is exported under inside a telemetry bundle.
PROFILE_FILENAME = "profile.json"

#: Default sampling period.  5ms keeps the sampler under ~1% of one core
#: while still resolving protocol phases that run for tens of ms.
DEFAULT_INTERVAL_MS = 5.0


def max_rss_kb() -> int:
    """Peak resident set size of this process so far, in kilobytes."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes; macOS reports bytes.
    return int(rss // 1024) if sys.platform == "darwin" else int(rss)


def _frame_label(code: CodeType) -> str:
    """``path/in/repo.py:qualname`` — short, stable across machines."""
    filename = code.co_filename
    marker = filename.rfind("/repro/")
    if marker != -1:
        short = filename[marker + 1 :]
    else:
        short = "/".join(filename.rsplit("/", 2)[-2:])
    qualname = getattr(code, "co_qualname", code.co_name)
    return f"{short}:{qualname}"


class _Sampler(threading.Thread):
    """Daemon thread: snapshot the target thread's stack every interval."""

    def __init__(self, profiler: "Profiler", target_ident: int) -> None:
        super().__init__(name="hirep-prof-sampler", daemon=True)
        self.profiler = profiler
        self.target_ident = target_ident
        self.stop_event = threading.Event()

    def run(self) -> None:
        prof = self.profiler
        interval_s = prof.interval_ms / 1000.0
        labels = prof._label_cache
        while not self.stop_event.wait(interval_s):
            frame = sys._current_frames().get(self.target_ident)
            if frame is None:
                continue  # target thread has exited
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < prof.max_depth:
                code = frame.f_code
                label = labels.get(code)
                if label is None:
                    label = labels[code] = _frame_label(code)
                stack.append(label)
                frame = frame.f_back
                depth += 1
            key = (prof._context_label, tuple(reversed(stack)))
            prof._samples[key] = prof._samples.get(key, 0) + 1
            prof.sample_count += 1
            if len(prof._timeline) < prof.timeline_limit:
                prof._timeline.append((prof.clock.now, key))
            else:
                prof.timeline_dropped += 1


class Profiler:
    """Sampling profiler + memory watermarks for one observed thread.

    Parameters
    ----------
    interval_ms:
        Sampling period for the stack sampler.
    memory:
        Also run ``tracemalloc`` between :meth:`start` and :meth:`stop`
        to record the traced-allocation high-water mark.  Off by default:
        tracemalloc taxes every allocation, while pure stack sampling
        stays in the noise.
    max_depth:
        Stack frames retained per sample (deepest-first walk).
    timeline_limit:
        Individual timestamped samples kept for the Chrome-trace export;
        aggregation (counts, self-times) is never capped.
    """

    def __init__(
        self,
        *,
        interval_ms: float = DEFAULT_INTERVAL_MS,
        memory: bool = False,
        max_depth: int = 64,
        timeline_limit: int = 100_000,
        clock: WallClock | None = None,
    ) -> None:
        if interval_ms <= 0:
            raise ConfigError(f"profiler interval must be positive: {interval_ms}")
        self.interval_ms = float(interval_ms)
        self.memory = memory
        self.max_depth = max_depth
        self.timeline_limit = timeline_limit
        self.clock = clock if clock is not None else WallClock()
        #: (context, stack root->leaf) -> sample count
        self._samples: dict[tuple[str, tuple[str, ...]], int] = {}
        self._timeline: list[tuple[float, tuple[str, tuple[str, ...]]]] = []
        self._label_cache: dict[CodeType, str] = {}
        self._context_label = ""
        self._sampler: _Sampler | None = None
        self._wall_t0 = 0.0
        self._gc_at_start: list[int] = []
        self._owns_tracemalloc = False
        self.sample_count = 0
        self.timeline_dropped = 0
        self.wall_ms = 0.0
        self.rss_peak_kb = 0
        self.gc_collections: dict[str, int] = {}
        self.tracemalloc_peak_kb: float | None = None
        #: (span_id, span_name, wall_ms) — the join against the sim-time
        #: span tree, recorded by the plane's transaction wrapper.
        self.span_wall: list[tuple[int, str, float]] = []

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._sampler is not None

    def start(self) -> "Profiler":
        """Begin sampling the *calling* thread; returns self for chaining."""
        if self._sampler is not None:
            raise ConfigError("profiler is already running")
        self._gc_at_start = [s["collections"] for s in gc.get_stats()]
        if self.memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._owns_tracemalloc = True
        self._wall_t0 = self.clock.now
        self._sampler = _Sampler(self, threading.get_ident())
        self._sampler.start()
        return self

    def stop(self) -> None:
        """Stop sampling and fold the watermark gauges (idempotent)."""
        sampler = self._sampler
        if sampler is None:
            return
        sampler.stop_event.set()
        sampler.join()
        self._sampler = None
        self.wall_ms += self.clock.now - self._wall_t0
        self.rss_peak_kb = max_rss_kb()
        for gen, (now, then) in enumerate(
            zip([s["collections"] for s in gc.get_stats()], self._gc_at_start)
        ):
            self.gc_collections[f"gen{gen}"] = (
                self.gc_collections.get(f"gen{gen}", 0) + now - then
            )
        if self.memory:
            import tracemalloc

            if tracemalloc.is_tracing():
                _, peak = tracemalloc.get_traced_memory()
                peak_kb = peak / 1024.0
                best = self.tracemalloc_peak_kb
                self.tracemalloc_peak_kb = (
                    peak_kb if best is None else max(best, peak_kb)
                )
                if self._owns_tracemalloc:
                    tracemalloc.stop()
                    self._owns_tracemalloc = False

    @contextmanager
    def profile(self) -> Iterator["Profiler"]:
        """``with prof.profile(): ...`` — start/stop around a block."""
        self.start()
        try:
            yield self
        finally:
            self.stop()

    @contextmanager
    def context(self, label: str) -> Iterator[None]:
        """Attribute samples taken inside the block to ``label``.

        Contexts don't nest meaningfully (the innermost label wins); the
        plane uses this to tag samples with the active protocol phase.
        """
        previous = self._context_label
        self._context_label = label
        try:
            yield
        finally:
            self._context_label = previous

    def note_span_wall(self, span_id: int, name: str, wall_ms: float) -> None:
        """Record how much wall-clock a (sim-time) span actually took."""
        self.span_wall.append((span_id, name, wall_ms))

    # -- attribution -------------------------------------------------------

    def self_times(self) -> dict[str, float]:
        """Frame label -> estimated self milliseconds (leaf-frame samples)."""
        out: dict[str, float] = {}
        for (_, stack), count in self._samples.items():
            if stack:
                leaf = stack[-1]
                out[leaf] = out.get(leaf, 0.0) + count * self.interval_ms
        return dict(sorted(out.items(), key=lambda kv: (-kv[1], kv[0])))

    def collapsed(self) -> dict[str, int]:
        """Brendan-Gregg collapsed stacks: ``root;...;leaf`` -> samples.

        The sample's context (when set) becomes the root frame so a
        flamegraph splits by protocol phase.
        """
        out: dict[str, int] = {}
        for (context, stack), count in self._samples.items():
            frames = (context, *stack) if context else stack
            key = ";".join(frames)
            out[key] = out.get(key, 0) + count
        return dict(sorted(out.items()))

    def contexts(self) -> dict[str, int]:
        """Sample counts per attribution context (\"\" = unattributed)."""
        out: dict[str, int] = {}
        for (context, _), count in self._samples.items():
            out[context] = out.get(context, 0) + count
        return dict(sorted(out.items()))

    # -- export ------------------------------------------------------------

    def collect(self) -> dict[str, float]:
        """Watermark gauges in registry-snapshot form (``prof.*``)."""
        out: dict[str, float] = {
            "prof.interval_ms": self.interval_ms,
            "prof.samples": float(self.sample_count),
            "prof.stacks.distinct": float(len(self._samples)),
            "prof.wall_ms": self.wall_ms,
            "prof.rss_peak_kb": float(self.rss_peak_kb),
            "prof.span_wall_ms.count": float(len(self.span_wall)),
            "prof.span_wall_ms.sum": sum(w for _, _, w in self.span_wall),
        }
        for gen, n in sorted(self.gc_collections.items()):
            out[f"prof.gc.{gen}"] = float(n)
        if self.tracemalloc_peak_kb is not None:
            out["prof.mem.tracemalloc_peak_kb"] = self.tracemalloc_peak_kb
        return out

    def to_dict(self) -> dict[str, Any]:
        """The ``profile.json`` payload (see :data:`PROFILE_SCHEMA`)."""
        stacks = [
            {"context": context, "frames": list(stack), "count": count}
            for (context, stack), count in self._samples.items()
        ]
        stacks.sort(key=lambda s: (-s["count"], s["context"], s["frames"]))
        index_of = {
            (s["context"], tuple(s["frames"])): i for i, s in enumerate(stacks)
        }
        timeline = [
            [round(t_ms, 3), index_of[key]] for t_ms, key in self._timeline
        ]
        return {
            "schema": PROFILE_SCHEMA,
            "interval_ms": self.interval_ms,
            "samples": self.sample_count,
            "wall_ms": self.wall_ms,
            "rss_peak_kb": self.rss_peak_kb,
            "gc_collections": dict(sorted(self.gc_collections.items())),
            "tracemalloc_peak_kb": self.tracemalloc_peak_kb,
            "contexts": self.contexts(),
            "self_ms": [[k, v] for k, v in self.self_times().items()],
            "span_wall_ms": [
                [span_id, name, round(wall_ms, 3)]
                for span_id, name, wall_ms in self.span_wall
            ],
            "stacks": stacks,
            "timeline": timeline,
            "timeline_dropped": self.timeline_dropped,
        }


# -- profile.json consumers ---------------------------------------------------


def collapsed_lines(profile: Mapping[str, Any]) -> list[str]:
    """A ``profile.json`` payload as flamegraph.pl collapsed-stack lines."""
    merged: dict[str, int] = {}
    for stack in profile.get("stacks", ()):
        frames = list(stack["frames"])
        if stack.get("context"):
            frames.insert(0, stack["context"])
        key = ";".join(frames)
        merged[key] = merged.get(key, 0) + int(stack["count"])
    return [f"{key} {count}" for key, count in sorted(merged.items())]


def write_flamegraph(profile: Mapping[str, Any], path: Any) -> Any:
    """Write collapsed stacks for ``flamegraph.pl`` / speedscope / inferno."""
    from pathlib import Path

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(collapsed_lines(profile)) + "\n")
    return path


def profile_chrome_trace_obj(profile: Mapping[str, Any]) -> dict[str, Any]:
    """The sampled timeline as a Chrome trace-event object.

    Each retained sample becomes one fixed-width slice on a dedicated
    ``profiler`` track, named after its leaf frame, with the full stack
    in ``args`` — enough for Perfetto to show where wall-time went
    without a dedicated flamegraph viewer.
    """
    interval_ms = float(profile.get("interval_ms", DEFAULT_INTERVAL_MS))
    stacks = profile.get("stacks", [])
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 9,
            "name": "thread_name",
            "args": {"name": "profiler"},
        }
    ]
    for t_ms, stack_index in profile.get("timeline", ()):
        stack = stacks[stack_index]
        frames = stack["frames"]
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": 9,
                "name": frames[-1] if frames else "?",
                "cat": "sample",
                "ts": float(t_ms) * 1000.0,
                "dur": interval_ms * 1000.0,
                "args": {
                    "stack": ";".join(frames),
                    "context": stack.get("context", ""),
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
