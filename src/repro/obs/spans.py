"""Hierarchical spans keyed to *simulation* time.

A :class:`Span` is a named interval ``[start_ms, end_ms]`` on the
simulated clock with an optional parent — the telemetry plane uses them to
decompose one transaction into its protocol phases
(``transaction → query → votes → report``) and individual message flights.
Span identifiers are sequential integers assigned at begin time, so a
fixed-seed run always produces the same ids in the same order; nothing
here reads the wall clock.

:class:`SpanRecorder` deliberately supports out-of-order finishing
(phase spans are derived *after* their transaction completes) — the
context-manager form is sugar for the common strictly-nested case.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import ConfigError

__all__ = ["Span", "SpanRecorder"]


@dataclass
class Span:
    """One named interval of simulated time."""

    span_id: int
    parent_id: int | None
    name: str
    category: str
    start_ms: float
    end_ms: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end_ms is not None

    @property
    def duration_ms(self) -> float:
        if self.end_ms is None:
            return float("nan")
        return self.end_ms - self.start_ms

    def render(self) -> str:
        dur = f"{self.duration_ms:10.3f}ms" if self.finished else "      open"
        extra = " ".join(f"{k}={v}" for k, v in self.attrs.items())
        return (
            f"[{self.start_ms:12.3f}ms] span {self.name:<18} {dur}"
            f" #{self.span_id}" + (f" {extra}" if extra else "")
        )


class SpanRecorder:
    """Append-only span store with deterministic sequential ids."""

    def __init__(self) -> None:
        self._spans: list[Span] = []
        self._next_id = 0

    def begin(
        self,
        name: str,
        *,
        start_ms: float,
        category: str = "span",
        parent: Span | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span at ``start_ms``; finish it with :meth:`finish`."""
        span = Span(
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            name=name,
            category=category,
            start_ms=start_ms,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._spans.append(span)
        return span

    def finish(self, span: Span, end_ms: float, **attrs: Any) -> Span:
        """Close ``span`` at ``end_ms`` (idempotence is a caller bug)."""
        if span.end_ms is not None:
            raise ConfigError(f"span #{span.span_id} ({span.name}) already finished")
        if end_ms < span.start_ms:
            raise ConfigError(
                f"span #{span.span_id} cannot end at {end_ms} before its "
                f"start {span.start_ms}"
            )
        span.end_ms = end_ms
        span.attrs.update(attrs)
        return span

    def emit(
        self,
        name: str,
        start_ms: float,
        end_ms: float,
        *,
        category: str = "span",
        parent: Span | None = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-complete interval in one call."""
        span = self.begin(
            name, start_ms=start_ms, category=category, parent=parent, **attrs
        )
        return self.finish(span, end_ms)

    @contextmanager
    def span(
        self,
        name: str,
        clock: Callable[[], float],
        *,
        category: str = "span",
        parent: Span | None = None,
        **attrs: Any,
    ) -> Iterator[Span]:
        """Context manager for the strictly-nested case (``clock`` = sim now)."""
        span = self.begin(
            name, start_ms=clock(), category=category, parent=parent, **attrs
        )
        try:
            yield span
        finally:
            self.finish(span, clock())

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    def spans(self, name: str | None = None) -> list[Span]:
        """Spans in id (begin) order, optionally filtered by name."""
        if name is None:
            return list(self._spans)
        return [s for s in self._spans if s.name == name]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self._spans if s.parent_id == span.span_id]

    def roots(self) -> list[Span]:
        return [s for s in self._spans if s.parent_id is None]
