"""repro.obs — the unified telemetry plane.

One opt-in observer for a whole simulated deployment: hierarchical
spans keyed to simulation time, a deterministic metric registry, a
timeline of network/dispatch/fault events, and exporters (JSONL,
Chrome trace) feeding the ``hirep-obs`` CLI.  See
``docs/observability.md`` for the tour.

Attribute access is lazy (PEP 562): importing :mod:`repro.obs` — which
:mod:`repro.core.registry` does transitively via
:mod:`repro.obs.capture` — pulls in no numpy-heavy module until a
telemetry class is actually touched.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "Bundle",
    "Counter",
    "DEFAULT_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "PROFILE_SCHEMA",
    "Profiler",
    "Registry",
    "Span",
    "SpanRecorder",
    "TelemetryPlane",
    "WallClock",
    "attach_current",
    "bundle_key",
    "capture",
    "capture_active",
    "collapsed_lines",
    "current_plane",
    "load_bundle",
    "max_rss_kb",
    "read_jsonl",
    "store_bundle",
    "write_bundle",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_flamegraph",
    "write_metrics_json",
]

_HOME_OF = {
    "Bundle": "repro.obs.bundle",
    "bundle_key": "repro.obs.bundle",
    "load_bundle": "repro.obs.bundle",
    "store_bundle": "repro.obs.bundle",
    "write_bundle": "repro.obs.bundle",
    "Counter": "repro.obs.metrics",
    "DEFAULT_BUCKETS_MS": "repro.obs.metrics",
    "Gauge": "repro.obs.metrics",
    "Histogram": "repro.obs.metrics",
    "Registry": "repro.obs.metrics",
    "PROFILE_SCHEMA": "repro.obs.prof",
    "Profiler": "repro.obs.prof",
    "Span": "repro.obs.spans",
    "SpanRecorder": "repro.obs.spans",
    "TelemetryPlane": "repro.obs.plane",
    "WallClock": "repro.obs.clock",
    "attach_current": "repro.obs.capture",
    "capture": "repro.obs.capture",
    "capture_active": "repro.obs.capture",
    "collapsed_lines": "repro.obs.prof",
    "current_plane": "repro.obs.capture",
    "max_rss_kb": "repro.obs.prof",
    "read_jsonl": "repro.obs.export",
    "write_flamegraph": "repro.obs.prof",
    "write_chrome_trace": "repro.obs.export",
    "write_events_jsonl": "repro.obs.export",
    "write_metrics_json": "repro.obs.export",
}


def __getattr__(name: str) -> Any:
    module_name = _HOME_OF.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(__all__)
