"""Process-global telemetry capture context.

The orchestrator builds systems deep inside worker functions, far from
any code the caller controls — so "capture this run" can't be threaded
through as an argument without touching every experiment.  Instead,
:func:`capture` opens a process-global window: while it is active,
:meth:`repro.core.registry.SystemRegistry.build` calls
:func:`attach_current` on every system it constructs, and the plane
sees everything.

This module is deliberately tiny (stdlib-only imports; the plane itself
is imported lazily) because :mod:`repro.core.registry` imports it at
module load — the cost when telemetry is off must be one ``is None``
check per built system and nothing at import time.

Captures do not nest: the plane is process state, and two overlapping
captures would each see half the other's systems.  One capture per run
is the model — the worker wraps exactly one job execution.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.plane import TelemetryPlane

__all__ = ["attach_current", "capture", "capture_active", "current_plane"]

_active: "TelemetryPlane | None" = None


def capture_active() -> bool:
    """Is a capture window currently open?"""
    return _active is not None


def current_plane() -> "TelemetryPlane | None":
    """The active plane, or ``None`` outside a capture window."""
    return _active


def attach_current(system: Any) -> bool:
    """Attach ``system`` to the active plane, if any.

    The registry's build hook.  Returns whether an attachment happened;
    with no capture open this is a single global read.
    """
    if _active is None:
        return False
    _active.attach(system)
    return True


@contextmanager
def capture(**plane_kwargs: Any) -> Iterator["TelemetryPlane"]:
    """Open a capture window; yields the :class:`TelemetryPlane`.

    Every system built through the registry inside the window is
    instrumented.  Keyword arguments go to the plane constructor
    (``capacity``, ``categories``, ``flight_spans``).
    """
    global _active
    if _active is not None:
        raise ConfigError("telemetry capture is already active; captures do not nest")
    from repro.obs.plane import TelemetryPlane

    plane = TelemetryPlane(**plane_kwargs)
    _active = plane
    try:
        yield plane
    finally:
        _active = None
