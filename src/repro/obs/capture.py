"""Process-global telemetry capture context.

The orchestrator builds systems deep inside worker functions, far from
any code the caller controls — so "capture this run" can't be threaded
through as an argument without touching every experiment.  Instead,
:func:`capture` opens a process-global window: while it is active,
:meth:`repro.core.registry.SystemRegistry.build` calls
:func:`attach_current` on every system it constructs, and the plane
sees everything.

This module is deliberately tiny (stdlib-only imports; the plane itself
is imported lazily) because :mod:`repro.core.registry` imports it at
module load — the cost when telemetry is off must be one ``is None``
check per built system and nothing at import time.

Captures do not nest: the plane is process state, and two overlapping
captures would each see half the other's systems.  One capture per run
is the model — the worker wraps exactly one job execution.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.plane import TelemetryPlane

__all__ = ["attach_current", "capture", "capture_active", "current_plane"]

_active: "TelemetryPlane | None" = None


def capture_active() -> bool:
    """Is a capture window currently open?"""
    return _active is not None


def current_plane() -> "TelemetryPlane | None":
    """The active plane, or ``None`` outside a capture window."""
    return _active


def attach_current(system: Any) -> bool:
    """Attach ``system`` to the active plane, if any.

    The registry's build hook.  Returns whether an attachment happened;
    with no capture open this is a single global read.
    """
    if _active is None:
        return False
    _active.attach(system)
    return True


def _profile_from_env() -> str | bool:
    """The ``HIREP_PROFILE`` opt-in: unset/0 off, ``mem`` adds tracemalloc."""
    import os

    raw = os.environ.get("HIREP_PROFILE", "").strip().lower()
    if raw in ("", "0", "false", "off"):
        return False
    return "mem" if raw == "mem" else True


@contextmanager
def capture(
    *, profile: str | bool | None = None, **plane_kwargs: Any
) -> Iterator["TelemetryPlane"]:
    """Open a capture window; yields the :class:`TelemetryPlane`.

    Every system built through the registry inside the window is
    instrumented.  Keyword arguments go to the plane constructor
    (``capacity``, ``categories``, ``flight_spans``).

    ``profile`` opts the window into wall-clock profiling
    (:mod:`repro.obs.prof`): ``True`` starts a sampling profiler for the
    duration of the window, ``"mem"`` additionally turns on tracemalloc
    watermarks, and ``None`` (the default) defers to the
    ``HIREP_PROFILE`` environment variable — which is how orchestrator
    workers (:mod:`repro.exec.worker`) and anything else that opens
    captures deep inside library code get profiled without new
    parameters.  The profile is exported as ``profile.json`` when the
    plane is stored as a bundle.
    """
    global _active
    if _active is not None:
        raise ConfigError("telemetry capture is already active; captures do not nest")
    from repro.obs.plane import TelemetryPlane

    if profile is None:
        profile = _profile_from_env()
    plane = TelemetryPlane(**plane_kwargs)
    profiler = None
    if profile:
        from repro.obs.prof import Profiler

        profiler = plane.set_profiler(Profiler(memory=profile == "mem"))
        profiler.start()
    _active = plane
    try:
        yield plane
    finally:
        _active = None
        if profiler is not None:
            profiler.stop()
