"""Perf-regression gating against a rolling baseline.

For every ``(suite, backend, network_size)`` series in a history, the
most recent report is the *candidate* and the rolling baseline for each
metric is the **median** of up to ``window`` prior records — the median,
not the mean, so one historical outlier (a noisy CI runner) cannot move
the bar.  Only direction-bearing metrics are gated
(:func:`~repro.perf.report.metric_direction`); a metric with no prior
observations simply establishes the series and passes.

``tolerance`` is the allowed fractional degradation.  With the default
``0.25``: a throughput metric regresses when it drops below
``baseline / 1.25`` and a memory/wall-time metric regresses when it
rises above ``baseline * 1.25``.  A 2× throughput collapse or a 2×
memory blow-up is flagged at any tolerance below 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.perf.history import PerfHistory
from repro.perf.report import PerfReport, metric_direction

__all__ = ["GateFinding", "GateResult", "gate", "rolling_median"]


def rolling_median(values: list[float]) -> float:
    """Median (lower-of-two on even counts, so it is always an observed value)."""
    if not values:
        raise ConfigError("median of no values")
    ordered = sorted(values)
    return ordered[(len(ordered) - 1) // 2]


@dataclass
class GateFinding:
    """One metric of one series that degraded past tolerance."""

    suite: str
    backend: str
    network_size: int
    metric: str
    direction: str
    value: float
    baseline: float
    #: degradation factor, always >= 1 (2.0 means "2x worse")
    factor: float
    samples: int

    def render(self) -> str:
        arrow = "v" if self.direction == "higher" else "^"
        where = self.suite
        if self.backend:
            where += f"/{self.backend}"
        if self.network_size:
            where += f"@N={self.network_size}"
        return (
            f"{where}: {self.metric} {arrow} {self.factor:.2f}x worse "
            f"({self.value:g} vs rolling baseline {self.baseline:g} "
            f"over {self.samples} run(s))"
        )


@dataclass
class GateResult:
    """Outcome of one gate pass over a history."""

    findings: list[GateFinding] = field(default_factory=list)
    checked: int = 0  # gated (metric, series) pairs with a baseline
    established: int = 0  # series/metrics seen for the first time
    window: int = 0
    tolerance: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [
            f"perf gate: {self.checked} metric(s) checked against a rolling "
            f"median of <= {self.window} prior run(s), tolerance "
            f"{self.tolerance:.0%}, {self.established} newly established"
        ]
        if self.findings:
            lines.append(f"REGRESSIONS ({len(self.findings)}):")
            lines += [f"  {f.render()}" for f in self.findings]
        else:
            lines.append("no regressions")
        return "\n".join(lines)


def _degradation(direction: str, value: float, baseline: float) -> float:
    """How many times worse ``value`` is than ``baseline`` (>= 1 = worse)."""
    if baseline <= 0 or value <= 0:
        # zero/negative perf numbers are measurement artifacts; treat a
        # vanished throughput as infinitely worse, anything else as flat.
        if direction == "higher" and value <= 0 < baseline:
            return float("inf")
        return 1.0
    return baseline / value if direction == "higher" else value / baseline


def gate(
    history: PerfHistory,
    *,
    window: int = 5,
    tolerance: float = 0.25,
    suites: list[str] | None = None,
) -> GateResult:
    """Gate the newest report of every series against its rolling baseline."""
    if window < 1:
        raise ConfigError(f"gate window must be >= 1: {window}")
    if tolerance <= 0:
        raise ConfigError(f"gate tolerance must be positive: {tolerance}")
    result = GateResult(window=window, tolerance=tolerance)
    for (suite, backend, network_size), series in history.series().items():
        if suites is not None and suite not in suites:
            continue
        *prior, candidate = series
        for metric, value in sorted(candidate.metrics.items()):
            direction = metric_direction(metric)
            if direction is None:
                continue
            observed = [
                r.metrics[metric] for r in prior[-window:] if metric in r.metrics
            ]
            if not observed:
                result.established += 1
                continue
            result.checked += 1
            baseline = rolling_median(observed)
            factor = _degradation(direction, value, baseline)
            if factor > 1.0 + tolerance:
                result.findings.append(
                    GateFinding(
                        suite=suite,
                        backend=backend,
                        network_size=network_size,
                        metric=metric,
                        direction=direction,
                        value=value,
                        baseline=baseline,
                        factor=factor,
                        samples=len(observed),
                    )
                )
    result.findings.sort(key=lambda f: (-f.factor, f.suite, f.metric))
    return result


def latest_by_key(reports: list[PerfReport]) -> dict[tuple, PerfReport]:
    """The newest report per (suite, backend, N) key, for diffing."""
    out: dict[tuple, PerfReport] = {}
    for report in reports:
        out[report.key()] = report
    return out
