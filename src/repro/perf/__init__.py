"""repro.perf — the performance record-keeping plane.

Where :mod:`repro.obs` observes a single run from the inside,
``repro.perf`` tracks performance *across* runs:

* :class:`PerfReport` — the one versioned schema every benchmark suite
  emits (``benchmarks/conftest.py`` is the adoption path);
* :class:`PerfHistory` — an append-only on-disk JSONL store keyed by
  ``(suite, backend, network_size)``, one line per recorded report;
* :func:`gate` — regression detection against a rolling baseline, with
  direction-aware metric semantics (throughput up is good, memory and
  wall-time up are bad);
* the ``hirep-perf`` CLI (``record`` / ``trend`` / ``diff`` / ``gate`` /
  ``flame``).

See the "Profiling & perf gating" section of ``docs/observability.md``.
"""

from __future__ import annotations

from repro.perf.gate import GateFinding, GateResult, gate
from repro.perf.history import PerfHistory
from repro.perf.report import (
    PERF_SCHEMA,
    PerfReport,
    current_git_sha,
    metric_direction,
)

__all__ = [
    "GateFinding",
    "GateResult",
    "PERF_SCHEMA",
    "PerfHistory",
    "PerfReport",
    "current_git_sha",
    "gate",
    "metric_direction",
]
