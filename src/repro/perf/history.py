"""Append-only on-disk store of performance reports.

Layout: one ``<suite>.jsonl`` file per suite under the history root,
one JSON line per recorded :class:`~repro.perf.report.PerfReport`, in
recording order — which *is* the chronology the rolling-baseline gate
walks, so no wall-clock timestamp is required (callers may stamp one
into ``opts`` if they care).  Lines are written with sorted keys and
fixed separators, so identical measurements append identical bytes and
the whole store diffs cleanly in git — which is how the committed CI
baseline is maintained.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.errors import ConfigError
from repro.perf.report import PerfReport

__all__ = ["PerfHistory"]

_SUITE_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def _suite_filename(suite: str) -> str:
    safe = _SUITE_SAFE.sub("-", suite).strip("-.")
    if not safe:
        raise ConfigError(f"suite name {suite!r} yields an empty filename")
    return f"{safe}.jsonl"


class PerfHistory:
    """The append-only report store rooted at ``root``."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # -- writing -----------------------------------------------------------

    def record(self, report: PerfReport) -> Path:
        """Append ``report`` to its suite's file; returns the file path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / _suite_filename(report.suite)
        line = json.dumps(
            report.to_dict(), sort_keys=True, separators=(",", ":")
        )
        with path.open("a") as fh:
            fh.write(line + "\n")
        return path

    def record_all(self, reports: list[PerfReport]) -> int:
        for report in reports:
            self.record(report)
        return len(reports)

    # -- reading -----------------------------------------------------------

    def suites(self) -> list[str]:
        """Suite names with at least one record, sorted."""
        if not self.root.is_dir():
            return []
        names = []
        for path in sorted(self.root.glob("*.jsonl")):
            first = self._read_file(path)
            if first:
                names.append(first[0].suite)
        return sorted(set(names))

    def records(
        self,
        suite: str | None = None,
        *,
        backend: str | None = None,
        network_size: int | None = None,
    ) -> list[PerfReport]:
        """Reports in recording order, optionally filtered."""
        if not self.root.is_dir():
            return []
        if suite is not None:
            paths = [self.root / _suite_filename(suite)]
        else:
            paths = sorted(self.root.glob("*.jsonl"))
        out: list[PerfReport] = []
        for path in paths:
            for report in self._read_file(path):
                if suite is not None and report.suite != suite:
                    continue
                if backend is not None and report.backend != backend:
                    continue
                if (
                    network_size is not None
                    and report.network_size != network_size
                ):
                    continue
                out.append(report)
        return out

    def series(self) -> dict[tuple[str, str, int], list[PerfReport]]:
        """Reports grouped by key, each group in recording order."""
        grouped: dict[tuple[str, str, int], list[PerfReport]] = {}
        for report in self.records():
            grouped.setdefault(report.key(), []).append(report)
        return dict(sorted(grouped.items()))

    @staticmethod
    def _read_file(path: Path) -> list[PerfReport]:
        if not path.is_file():
            return []
        reports: list[PerfReport] = []
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                reports.append(PerfReport.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise ConfigError(
                    f"corrupt perf history line {path}:{lineno}: {exc}"
                ) from exc
        return reports
