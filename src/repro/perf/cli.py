"""``hirep-perf`` — record, trend, diff, gate, and flame perf data.

Usage::

    hirep-perf record BENCH_perf.json --history .perf-history
    hirep-perf trend  --history .perf-history --suite kernel
    hirep-perf diff   BASELINE CURRENT --exit-code
    hirep-perf gate   --history .perf-history --tolerance 0.25 --exit-code
    hirep-perf flame  BUNDLE --top 20 --collapsed out/flame.txt

``record`` ingests report files (one :class:`~repro.perf.report.PerfReport`
object, a list of them, or an envelope with a ``"reports"`` list — the
shape ``benchmarks/conftest.py`` writes) into an append-only history.
``gate`` checks the newest report of every (suite, backend, N) series
against the rolling median of prior runs; like ``hirep-obs diff``, it
always prints its findings and only exits non-zero under ``--exit-code``.
``flame`` reads the ``profile.json`` of a telemetry bundle (see
:mod:`repro.obs.prof`) and renders self-time tables, collapsed stacks
for flamegraph tooling, or a Chrome trace of the sampled timeline.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Sequence

from repro.errors import ConfigError
from repro.perf.gate import gate, latest_by_key
from repro.perf.history import PerfHistory
from repro.perf.report import PerfReport, current_git_sha, metric_direction

__all__ = ["main"]


def _load_report_objs(path: Path) -> list[PerfReport]:
    """Reports from a JSON file: one object, a list, or an envelope."""
    data = json.loads(path.read_text())
    if isinstance(data, dict) and "reports" in data:
        data = data["reports"]
    if isinstance(data, dict):
        data = [data]
    if not isinstance(data, list):
        raise ConfigError(f"{path}: expected a report object, list, or envelope")
    return [PerfReport.from_dict(obj) for obj in data]


def _load_latest(path: str) -> dict[tuple, PerfReport]:
    """Latest report per key from a history dir or a report file."""
    p = Path(path)
    if p.is_dir():
        return latest_by_key(PerfHistory(p).records())
    return latest_by_key(_load_report_objs(p))


# -- record ------------------------------------------------------------------


def cmd_record(args: argparse.Namespace) -> int:
    history = PerfHistory(args.history)
    total = 0
    sha = current_git_sha() if args.git_sha == "auto" else args.git_sha
    for file in args.files:
        reports = _load_report_objs(Path(file))
        for report in reports:
            if report.git_sha is None and sha:
                report.git_sha = sha
            history.record(report)
        total += len(reports)
    print(f"recorded {total} report(s) into {history.root}")
    return 0


# -- trend -------------------------------------------------------------------


def cmd_trend(args: argparse.Namespace) -> int:
    history = PerfHistory(args.history)
    series = history.series()
    if args.suite:
        series = {k: v for k, v in series.items() if k[0] in args.suite}
    if not series:
        print("no perf history matched")
        return 0
    for (suite, backend, network_size), reports in series.items():
        where = suite + (f"/{backend}" if backend else "")
        if network_size:
            where += f" N={network_size}"
        print(f"{where}  ({len(reports)} run(s))")
        metrics = sorted({m for r in reports for m in r.metrics})
        if args.metric:
            metrics = [m for m in metrics if m in args.metric]
        for metric in metrics:
            values = [r.metrics[metric] for r in reports if metric in r.metrics]
            tail = values[-args.last :]
            trail = " -> ".join(f"{v:g}" for v in tail)
            marker = {"higher": "(^ better)", "lower": "(v better)"}.get(
                metric_direction(metric) or "", ""
            )
            print(f"  {metric:<28} {trail} {marker}".rstrip())
    return 0


# -- diff --------------------------------------------------------------------


def cmd_diff(args: argparse.Namespace) -> int:
    latest_a = _load_latest(args.baseline)
    latest_b = _load_latest(args.current)
    print(f"a: {args.baseline}")
    print(f"b: {args.current}")
    differs = False
    for key in sorted(set(latest_a) | set(latest_b)):
        suite, backend, network_size = key
        where = suite + (f"/{backend}" if backend else "")
        if network_size:
            where += f"@N={network_size}"
        a, b = latest_a.get(key), latest_b.get(key)
        if a is None or b is None:
            differs = True
            print(f"{'+' if a is None else '-'} {where}")
            continue
        for metric in sorted(set(a.metrics) | set(b.metrics)):
            va, vb = a.metrics.get(metric), b.metrics.get(metric)
            if va == vb:
                continue
            differs = True
            if va is None or vb is None:
                print(f"  {'+' if va is None else '-'} {where}: {metric}")
                continue
            direction = metric_direction(metric)
            note = ""
            if direction is not None and va > 0 and vb > 0:
                ratio = vb / va
                worse = ratio < 1.0 if direction == "higher" else ratio > 1.0
                note = f"  [{ratio:.2f}x {'WORSE' if worse else 'better'}]"
            print(f"  ~ {where}: {metric}: {va:g} -> {vb:g}{note}")
    if not differs:
        print("no metric differences")
        return 0
    return 1 if args.exit_code else 0


# -- gate --------------------------------------------------------------------


def cmd_gate(args: argparse.Namespace) -> int:
    history = PerfHistory(args.history)
    result = gate(
        history,
        window=args.window,
        tolerance=args.tolerance,
        suites=args.suite or None,
    )
    print(result.render())
    if result.ok:
        return 0
    return 1 if args.exit_code else 0


# -- flame -------------------------------------------------------------------


def _load_profile(path: str) -> dict[str, Any]:
    from repro.obs.prof import PROFILE_FILENAME

    p = Path(path)
    if p.is_dir():
        p = p / PROFILE_FILENAME
    if not p.is_file():
        raise SystemExit(
            f"no profile at {path} — run under capture(profile=True), "
            "HIREP_PROFILE=1, or hirep-serve load --profile"
        )
    return json.loads(p.read_text())


def cmd_flame(args: argparse.Namespace) -> int:
    from repro.obs.prof import profile_chrome_trace_obj, write_flamegraph

    profile = _load_profile(args.bundle)
    interval = profile.get("interval_ms", 0.0)
    print(
        f"profile: {profile.get('samples', 0)} samples @ {interval:g}ms over "
        f"{profile.get('wall_ms', 0.0):.0f}ms wall, "
        f"rss peak {profile.get('rss_peak_kb', 0):g}kb"
    )
    if profile.get("tracemalloc_peak_kb") is not None:
        print(f"tracemalloc peak: {profile['tracemalloc_peak_kb']:.0f}kb")
    contexts = profile.get("contexts", {})
    if contexts:
        rendered = ", ".join(
            f"{name or '(none)'}={count}" for name, count in sorted(contexts.items())
        )
        print(f"sample contexts: {rendered}")
    self_ms = profile.get("self_ms", [])[: args.top]
    if self_ms:
        print(f"\ntop {len(self_ms)} by self time:")
        for label, ms in self_ms:
            print(f"  {ms:9.1f}ms  {label}")
    if args.collapsed:
        path = write_flamegraph(profile, args.collapsed)
        print(f"\ncollapsed stacks: {path}")
    if args.chrome:
        out = Path(args.chrome)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(
                profile_chrome_trace_obj(profile),
                sort_keys=True,
                separators=(",", ":"),
            )
        )
        print(f"chrome trace: {out}")
    return 0


# -- entry point -------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hirep-perf", description="hiREP performance history and gating"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_rec = sub.add_parser("record", help="append report files to a history")
    p_rec.add_argument("files", nargs="+", help="PerfReport JSON file(s)")
    p_rec.add_argument("--history", required=True, help="history root directory")
    p_rec.add_argument(
        "--git-sha",
        default="auto",
        help='sha stamped onto reports lacking one ("auto" = git rev-parse)',
    )
    p_rec.set_defaults(func=cmd_record)

    p_tr = sub.add_parser("trend", help="print metric series per suite")
    p_tr.add_argument("--history", required=True)
    p_tr.add_argument("--suite", action="append", default=[], help="filter suites")
    p_tr.add_argument("--metric", action="append", default=[], help="filter metrics")
    p_tr.add_argument("--last", type=int, default=8, help="series tail length")
    p_tr.set_defaults(func=cmd_trend)

    p_diff = sub.add_parser("diff", help="compare two histories/report files")
    p_diff.add_argument("baseline", help="history dir or report JSON")
    p_diff.add_argument("current", help="history dir or report JSON")
    p_diff.add_argument(
        "--exit-code",
        action="store_true",
        help="exit 1 when metrics differ (for scripting)",
    )
    p_diff.set_defaults(func=cmd_diff)

    p_gate = sub.add_parser("gate", help="flag regressions vs rolling baseline")
    p_gate.add_argument("--history", required=True)
    p_gate.add_argument(
        "--window", type=int, default=5, help="prior runs in the rolling median"
    )
    p_gate.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional degradation (0.25 = 25%%)",
    )
    p_gate.add_argument("--suite", action="append", default=[], help="gate only these")
    p_gate.add_argument(
        "--exit-code",
        action="store_true",
        help="exit 1 on any regression (for CI)",
    )
    p_gate.set_defaults(func=cmd_gate)

    p_fl = sub.add_parser("flame", help="render a bundle's wall-clock profile")
    p_fl.add_argument("bundle", help="bundle directory or profile.json path")
    p_fl.add_argument("--top", type=int, default=15, help="self-time rows shown")
    p_fl.add_argument(
        "--collapsed", default=None, help="write flamegraph.pl collapsed stacks here"
    )
    p_fl.add_argument(
        "--chrome", default=None, help="write a Chrome trace of the samples here"
    )
    p_fl.set_defaults(func=cmd_flame)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    sys.exit(main())
