"""The versioned performance-report schema.

One :class:`PerfReport` records one measured benchmark cell: which suite
measured it, on which backend and network size, and a flat
``metric name -> value`` mapping.  The schema is deliberately small —
the shared ``benchmarks/conftest.py`` helper stamps the envelope
(schema version, scale, git sha) so individual suites only supply their
numbers, and every consumer (:class:`~repro.perf.history.PerfHistory`,
``hirep-perf``) reads exactly one shape.

Metric *direction* is a naming convention, not per-report metadata:
``*_per_sec`` and ``*speedup*`` metrics are better when higher;
``*_s`` / ``*_ms`` / ``*_kb`` / ``*_mb`` / ``*_bytes*`` metrics are
better when lower; anything else is informational and never gated.
"""

from __future__ import annotations

import subprocess
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ConfigError

__all__ = ["PERF_SCHEMA", "PerfReport", "current_git_sha", "metric_direction"]

#: Bump when the on-disk report shape changes incompatibly.
PERF_SCHEMA = 1


def metric_direction(name: str) -> str | None:
    """``"higher"`` / ``"lower"`` is better, or ``None`` (ungated)."""
    if name.endswith(("_per_sec", "_per_s")) or "speedup" in name:
        return "higher"
    if name.endswith(("_s", "_ms", "_kb", "_mb", "_bytes")) or "_bytes_per_" in name:
        return "lower"
    return None


def current_git_sha(cwd: str | None = None) -> str | None:
    """The repo's HEAD sha, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


@dataclass
class PerfReport:
    """One measured benchmark cell.

    ``metrics`` values must be finite floats — a NaN throughput would
    silently poison every rolling median downstream, so it is rejected
    at construction.
    """

    suite: str
    metrics: dict[str, float]
    backend: str | None = None
    network_size: int | None = None
    transactions: int | None = None
    opts: dict[str, str] = field(default_factory=dict)
    scale: str | None = None
    git_sha: str | None = None
    schema: int = PERF_SCHEMA

    def __post_init__(self) -> None:
        import math

        if not self.suite:
            raise ConfigError("PerfReport needs a suite name")
        if not self.metrics:
            raise ConfigError(f"PerfReport {self.suite!r} has no metrics")
        clean: dict[str, float] = {}
        for name, value in self.metrics.items():
            value = float(value)
            if not math.isfinite(value):
                raise ConfigError(
                    f"metric {name!r} in suite {self.suite!r} is {value!r}; "
                    "perf metrics must be finite"
                )
            clean[name] = value
        self.metrics = clean
        self.opts = {str(k): str(v) for k, v in self.opts.items()}

    def key(self) -> tuple[str, str, int]:
        """The history grouping key: (suite, backend, network size)."""
        return (self.suite, self.backend or "", self.network_size or 0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "suite": self.suite,
            "backend": self.backend,
            "network_size": self.network_size,
            "transactions": self.transactions,
            "opts": dict(sorted(self.opts.items())),
            "scale": self.scale,
            "git_sha": self.git_sha,
            "metrics": dict(sorted(self.metrics.items())),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PerfReport":
        schema = data.get("schema")
        if schema != PERF_SCHEMA:
            raise ConfigError(
                f"unsupported PerfReport schema {schema!r} "
                f"(this build reads schema {PERF_SCHEMA})"
            )
        return cls(
            suite=data["suite"],
            metrics=dict(data["metrics"]),
            backend=data.get("backend"),
            network_size=data.get("network_size"),
            transactions=data.get("transactions"),
            opts=dict(data.get("opts", {})),
            scale=data.get("scale"),
            git_sha=data.get("git_sha"),
            schema=schema,
        )
