"""The job model: one experiment invocation as pure, hashable data.

A :class:`JobSpec` names a module-level callable (``module``/``func``) and
the keyword arguments to call it with.  Specs carry no live objects, so
they pickle across process boundaries and serialize to JSON for the run
manifest.  Two specs that would execute the same code with the same
arguments hash to the same :func:`job_key`, which is what makes the result
cache content-addressed: the key is SHA-256 over the canonical JSON
encoding of the spec *plus* a fingerprint of the code it would run.

Canonicalisation rules: keys sorted, minimal separators, tuples and lists
indistinguishable (both encode as JSON arrays), floats via ``repr`` (the
shortest round-trip form, stable across CPython ≥ 3.1).
"""

from __future__ import annotations

import hashlib
import importlib
import inspect
import json
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any

from repro._version import __version__

__all__ = ["JobSpec", "canonical_json", "code_fingerprint", "job_key"]

#: modules whose source is hashed into *every* job key, on top of the
#: spec's own module — the shared result containers and the worker shim
#: shape every payload, so changing them must invalidate the cache.
_COMMON_CODE = ("repro.experiments.common", "repro.experiments.export")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding used for hashing and manifests."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True)


@dataclass(frozen=True)
class JobSpec:
    """One experiment invocation: ``module.func(**kwargs)``.

    ``label`` is display-only (progress lines, manifests) and is excluded
    from the content hash, so relabelling a sweep never invalidates its
    cached results.
    """

    module: str
    kwargs: dict = field(default_factory=dict)
    func: str = "run"
    label: str = ""

    def __post_init__(self) -> None:
        # Fail at submission time, not in a worker three retries later.
        try:
            canonical_json(self.kwargs)
        except (TypeError, ValueError) as exc:
            raise TypeError(
                f"job kwargs for {self.module}.{self.func} are not "
                f"JSON-encodable: {exc}"
            ) from exc

    def identity(self) -> dict:
        """The hashed portion of the spec (no label)."""
        return {"module": self.module, "func": self.func, "kwargs": self.kwargs}

    def to_dict(self) -> dict:
        return {**self.identity(), "label": self.label}

    @classmethod
    def from_dict(cls, d: dict) -> "JobSpec":
        return cls(
            module=d["module"],
            func=d.get("func", "run"),
            kwargs=dict(d.get("kwargs", {})),
            label=d.get("label", ""),
        )

    def display(self) -> str:
        return self.label or f"{self.module.rsplit('.', 1)[-1]}.{self.func}"


@lru_cache(maxsize=None)
def code_fingerprint(module_name: str) -> str:
    """SHA-256 fingerprint of the code a job would execute.

    Hashes the source of the job's own module plus the shared experiment
    machinery (:data:`_COMMON_CODE`) and the package version.  Transitive
    imports are deliberately *not* walked — a cheap, stable approximation;
    bump the package version (or wipe the cache directory) after deep
    refactors that change results without touching these files.
    """
    digest = hashlib.sha256()
    digest.update(__version__.encode())
    for name in (module_name, *_COMMON_CODE):
        digest.update(b"\x00" + name.encode() + b"\x00")
        try:
            mod = importlib.import_module(name)
            source_file = inspect.getsourcefile(mod)
            if source_file:
                digest.update(Path(source_file).read_bytes())
        except (ImportError, OSError, TypeError):
            digest.update(b"<unhashable>")
    return digest.hexdigest()


def job_key(spec: JobSpec) -> str:
    """Content address of a job: hash of canonical spec + code version."""
    payload = canonical_json(spec.identity()) + "\n" + code_fingerprint(spec.module)
    return hashlib.sha256(payload.encode()).hexdigest()
