"""The run manifest: a JSONL journal that makes sweeps resumable.

Every orchestrated run appends one JSON object per line to its manifest:

* ``run_start``   — the run configuration (experiments, scale, seed,
  replicate, jobs, cache dir) so ``--resume <manifest>`` can reconstruct
  the whole sweep with no other arguments;
* ``submitted``   — one per job, in deterministic submission order, with
  the full spec and its content key;
* ``started``     — the job was handed to the executor (attempt number);
* ``cache_hit``   — the job was satisfied from the result cache;
* ``finished``    — the job ran to completion (wall-clock ``elapsed_s``,
  worker ``rss_kb``, attempt count);
* ``failed``      — one attempt died (error text, attempt number); a job
  can fail then finish on a later attempt;
* ``run_end``     — totals for the run.

Each event carries a wall-clock ``ts`` (seconds since the epoch).  The
file is append-only and flushed per event, so a sweep killed at any point
leaves a readable journal; resuming re-submits the recorded sweep and the
content-addressed cache turns every already-``finished`` job into a
``cache_hit`` instead of a re-run.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

from repro.exec.job import canonical_json

__all__ = ["RunManifest"]

#: events that mean "this job's result exists" (in the cache).
_DONE_EVENTS = frozenset({"finished", "cache_hit"})


class RunManifest:
    """Append-only JSONL journal for one orchestrated run."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a")

    def append(self, event: str, **fields: Any) -> None:
        # journal timestamps are telemetry, not simulated time
        record = {"event": event, "ts": round(time.time(), 3), **fields}  # lint: allow[DET002]
        self._fh.write(canonical_json(record) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "RunManifest":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading ----------------------------------------------------------

    @staticmethod
    def load(path: str | Path) -> list[dict]:
        """All events in file order; tolerates a truncated final line."""
        events: list[dict] = []
        for line in Path(path).read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                continue  # torn tail write from a killed run
        return events

    @staticmethod
    def run_config(events: list[dict]) -> dict | None:
        """The recorded run configuration (first ``run_start``), if any."""
        for event in events:
            if event.get("event") == "run_start":
                return {
                    k: v for k, v in event.items() if k not in ("event", "ts")
                }
        return None

    @staticmethod
    def submitted_specs(events: list[dict]) -> list[dict]:
        """Submitted job spec dicts, in submission order."""
        return [
            event["spec"]
            for event in events
            if event.get("event") == "submitted" and "spec" in event
        ]

    @staticmethod
    def completed_keys(events: list[dict]) -> set[str]:
        """Keys of jobs whose results were produced (ran or cache-hit)."""
        return {
            event["key"]
            for event in events
            if event.get("event") in _DONE_EVENTS and "key" in event
        }
