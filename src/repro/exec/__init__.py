"""repro.exec — parallel experiment orchestration.

The experiment layer used to be a for-loop: every figure, every
``--replicate`` seed and every sweep cell ran serially in one process.
This package turns an experiment invocation into data — a pure, picklable
:class:`~repro.exec.job.JobSpec` — and provides the machinery to execute
many of them well:

* :mod:`repro.exec.job` — canonical job encoding + content hash;
* :mod:`repro.exec.cache` — content-addressed on-disk result cache
  (unchanged jobs are instant replays);
* :mod:`repro.exec.worker` — the picklable job entry point that runs in
  worker processes and encodes results as JSON payloads;
* :mod:`repro.exec.scheduler` — serial or process-pool execution with
  per-job timeout, retry-on-crash and deterministic result ordering;
* :mod:`repro.exec.manifest` — a JSONL journal of every job event that
  makes interrupted sweeps resumable;
* :mod:`repro.exec.progress` — live counter line + final timing table;
* :mod:`repro.exec.sweeps` — the plan/assemble protocol experiment
  modules use to fan a sweep out into independent jobs.

Quick start::

    from repro.exec import JobSpec, ResultCache, SweepScheduler

    specs = [JobSpec(module="repro.experiments.fig5_traffic",
                     kwargs={"network_size": 300, "transactions": 60, "seed": s},
                     label=f"fig5[seed={s}]")
             for s in range(2006, 2011)]
    scheduler = SweepScheduler(jobs=4, cache=ResultCache(".hirep-cache"))
    outcomes = scheduler.run(specs)          # deterministic order
    results = [o.value() for o in outcomes]  # ExperimentResult objects
"""

from repro.exec.cache import ResultCache
from repro.exec.job import JobSpec, canonical_json, code_fingerprint, job_key
from repro.exec.manifest import RunManifest
from repro.exec.progress import ProgressReporter, summary_line, summary_table
from repro.exec.scheduler import JobFailure, JobOutcome, SweepScheduler
from repro.exec.sweeps import SweepPlan, plan_for, replication_plan
from repro.exec.worker import decode_payload, encode_value, execute_spec

__all__ = [
    "JobSpec",
    "canonical_json",
    "code_fingerprint",
    "job_key",
    "ResultCache",
    "RunManifest",
    "ProgressReporter",
    "summary_line",
    "summary_table",
    "JobFailure",
    "JobOutcome",
    "SweepScheduler",
    "SweepPlan",
    "plan_for",
    "replication_plan",
    "decode_payload",
    "encode_value",
    "execute_spec",
]
