"""Serial / process-pool job scheduler with cache, retry and timeout.

The scheduler takes a list of :class:`~repro.exec.job.JobSpec` and returns
one :class:`JobOutcome` per spec **in submission order**, regardless of
completion order — parallel sweeps stay deterministic for rendering,
export and golden-file diffs.

Execution model:

* ``jobs=1`` (default) runs every job in-process, in order — the
  bit-compatibility path: no pools, no pickling of results, identical
  observable behaviour to the old serial for-loop.
* ``jobs=N`` uses a :class:`~concurrent.futures.ProcessPoolExecutor` with
  at most ``N`` futures in flight (submission is throttled so a submitted
  job starts immediately; the per-job ``timeout_s`` clock therefore
  approximates time-in-worker, not time-in-queue).
* A job attempt that raises is retried up to ``retries`` more times.  A
  worker that *dies* (``os._exit``, OOM-kill, segfault) breaks the whole
  pool: the scheduler terminates it, rebuilds a fresh pool, and resubmits
  the in-flight jobs.  The executor cannot identify which job killed the
  worker, so the spent attempt is charged to whichever future surfaced
  the break; every other in-flight job is refunded its attempt.
* A job that exceeds ``timeout_s`` is handled the same way: the pool is
  torn down (there is no portable way to cancel one running worker), the
  overdue job is charged a failed attempt and everything else resumes on
  a new pool.  ``timeout_s`` is not enforced in serial mode — nothing can
  preempt the running job there.

Every state transition is journalled to the optional
:class:`~repro.exec.manifest.RunManifest`, and results are stored in the
optional :class:`~repro.exec.cache.ResultCache`; jobs whose key is
already cached are satisfied instantly without touching an executor.

With ``telemetry_dir`` set, each executed job additionally captures a
telemetry bundle (see :mod:`repro.obs`), stored content-addressed under
that directory; the bundle reference rides on :attr:`JobOutcome.telemetry`
and the manifest's ``finished`` event, so ``hirep-obs`` can find every
bundle a sweep produced straight from the run manifest.
"""

from __future__ import annotations

import math
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, CancelledError, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any

from repro.exec.cache import ResultCache
from repro.exec.job import JobSpec, job_key
from repro.exec.manifest import RunManifest
from repro.exec.worker import decode_payload, execute_spec

__all__ = ["JobFailure", "JobOutcome", "SweepScheduler"]

#: polling granularity (s) for the timeout watchdog in pool mode.
_POLL_S = 0.25


class JobFailure(RuntimeError):
    """Raised when reading the value of a job that ultimately failed."""

    def __init__(self, outcome: "JobOutcome") -> None:
        super().__init__(
            f"job {outcome.spec.display()} failed after "
            f"{outcome.attempts} attempt(s): {outcome.error}"
        )
        self.outcome = outcome


@dataclass
class JobOutcome:
    """Terminal state of one job."""

    spec: JobSpec
    key: str
    payload: dict | None = None
    error: str | None = None
    elapsed_s: float = 0.0
    rss_kb: int = 0
    cached: bool = False
    attempts: int = 0
    index: int = field(default=0, repr=False)
    #: {"key": ..., "path": ...} when the run captured a telemetry bundle.
    telemetry: dict | None = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.payload is not None

    def value(self) -> Any:
        """The decoded job result; raises :class:`JobFailure` if it failed."""
        if not self.ok:
            raise JobFailure(self)
        return decode_payload(self.payload)


class SweepScheduler:
    """Run many jobs serially or across a process pool."""

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        manifest: RunManifest | None = None,
        timeout_s: float | None = None,
        retries: int = 1,
        progress=None,
        telemetry_dir: str | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.cache = cache
        self.manifest = manifest
        self.timeout_s = timeout_s
        self.retries = retries
        self.progress = progress
        #: when set, every executed job captures a telemetry bundle here
        #: (see repro.exec.worker.execute_spec); cache hits carry none —
        #: the job never ran, so there was nothing to observe.
        self.telemetry_dir = telemetry_dir

    # -- journal/progress helpers -----------------------------------------

    def _journal(self, event: str, **fields) -> None:
        if self.manifest is not None:
            self.manifest.append(event, **fields)

    def _finish(self, outcome: JobOutcome, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress.update(outcome, done, total)

    # -- public API --------------------------------------------------------

    def run(self, specs: list[JobSpec]) -> list[JobOutcome]:
        """Execute ``specs``; outcomes come back in submission order."""
        specs = list(specs)
        keys = [job_key(spec) for spec in specs]
        total = len(specs)
        outcomes: list[JobOutcome | None] = [None] * total
        for index, (spec, key) in enumerate(zip(specs, keys)):
            self._journal("submitted", key=key, index=index, spec=spec.to_dict())

        done = 0
        pending: list[int] = []
        for index, (spec, key) in enumerate(zip(specs, keys)):
            payload = self.cache.get(key) if self.cache is not None else None
            if payload is not None:
                outcomes[index] = JobOutcome(
                    spec=spec, key=key, payload=payload, cached=True, index=index
                )
                self._journal("cache_hit", key=key, index=index)
                done += 1
                self._finish(outcomes[index], done, total)
            else:
                pending.append(index)

        if pending:
            if self.jobs == 1:
                self._run_serial(specs, keys, outcomes, pending, done, total)
            else:
                self._run_pool(specs, keys, outcomes, pending, done, total)
        assert all(o is not None for o in outcomes)
        return outcomes  # type: ignore[return-value]

    # -- serial path -------------------------------------------------------

    def _record_success(
        self, outcomes, specs, keys, index: int, envelope: dict, attempts: int
    ) -> JobOutcome:
        telemetry = envelope.get("telemetry")
        outcome = JobOutcome(
            spec=specs[index],
            key=keys[index],
            payload=envelope["payload"],
            elapsed_s=envelope["elapsed_s"],
            rss_kb=envelope["rss_kb"],
            attempts=attempts,
            index=index,
            telemetry=telemetry,
        )
        outcomes[index] = outcome
        if self.cache is not None:
            self.cache.put(keys[index], envelope["payload"])
        self._journal(
            "finished",
            key=keys[index],
            index=index,
            attempt=attempts,
            elapsed_s=round(envelope["elapsed_s"], 6),
            rss_kb=envelope["rss_kb"],
            telemetry=telemetry,
        )
        return outcome

    def _record_failure(
        self, outcomes, specs, keys, index: int, error: str, attempts: int
    ) -> JobOutcome:
        outcome = JobOutcome(
            spec=specs[index],
            key=keys[index],
            error=error,
            attempts=attempts,
            index=index,
        )
        outcomes[index] = outcome
        return outcome

    def _run_serial(self, specs, keys, outcomes, pending, done, total) -> None:
        for index in pending:
            attempts = 0
            while True:
                attempts += 1
                self._journal(
                    "started", key=keys[index], index=index, attempt=attempts
                )
                try:
                    envelope = execute_spec(
                        specs[index].to_dict(), self.telemetry_dir
                    )
                except Exception as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    self._journal(
                        "failed",
                        key=keys[index],
                        index=index,
                        attempt=attempts,
                        error=error,
                    )
                    if attempts > self.retries:
                        outcome = self._record_failure(
                            outcomes, specs, keys, index, error, attempts
                        )
                        break
                else:
                    outcome = self._record_success(
                        outcomes, specs, keys, index, envelope, attempts
                    )
                    break
            done += 1
            self._finish(outcome, done, total)

    # -- pool path ---------------------------------------------------------

    def _run_pool(self, specs, keys, outcomes, pending, done, total) -> None:
        queue: deque[int] = deque(pending)
        attempts: dict[int, int] = {index: 0 for index in pending}
        deadlines: dict[int, float] = {}
        futures: dict = {}
        pool = ProcessPoolExecutor(max_workers=self.jobs)

        def submit_ready() -> None:
            while queue and len(futures) < self.jobs:
                index = queue.popleft()
                attempts[index] += 1
                self._journal(
                    "started", key=keys[index], index=index, attempt=attempts[index]
                )
                future = pool.submit(
                    execute_spec, specs[index].to_dict(), self.telemetry_dir
                )
                futures[future] = index
                deadlines[index] = (
                    time.monotonic() + self.timeout_s  # lint: allow[DET002] -- watchdog, not sim time
                    if self.timeout_s
                    else math.inf
                )

        def charge_failure(index: int, error: str) -> None:
            """One attempt is spent; requeue or finalise the job."""
            nonlocal done
            self._journal(
                "failed",
                key=keys[index],
                index=index,
                attempt=attempts[index],
                error=error,
            )
            if attempts[index] > self.retries:
                outcome = self._record_failure(
                    outcomes, specs, keys, index, error, attempts[index]
                )
                done += 1
                self._finish(outcome, done, total)
            else:
                queue.append(index)

        def succeed(index: int, envelope: dict) -> None:
            nonlocal done
            outcome = self._record_success(
                outcomes, specs, keys, index, envelope, attempts[index]
            )
            done += 1
            self._finish(outcome, done, total)

        def rebuild_pool(charged: dict[int, str]) -> None:
            """Tear the pool down after a crash/timeout and resume.

            ``charged`` maps job index -> error for jobs whose current
            attempt is spent.  Every other in-flight job is requeued with
            its attempt refunded; results that completed before the
            teardown are kept.
            """
            nonlocal pool
            _terminate(pool)
            for future, index in list(futures.items()):
                if index in charged:
                    continue
                envelope = None
                if future.done() and not future.cancelled():
                    try:
                        envelope = future.result(timeout=0)
                    except (CancelledError, Exception):
                        envelope = None
                if envelope is not None:
                    succeed(index, envelope)
                else:
                    attempts[index] -= 1  # innocent bystander: free retry
                    queue.appendleft(index)
            futures.clear()
            for index, error in charged.items():
                charge_failure(index, error)
            pool = ProcessPoolExecutor(max_workers=self.jobs)

        try:
            submit_ready()
            while futures or queue:
                if not futures:
                    submit_ready()
                    continue
                ready, _ = wait(
                    set(futures), timeout=_POLL_S, return_when=FIRST_COMPLETED
                )
                now = time.monotonic()  # lint: allow[DET002] -- watchdog, not sim time
                overdue = {
                    index: (
                        f"TimeoutError: exceeded --timeout {self.timeout_s:g}s"
                    )
                    for future, index in futures.items()
                    if not future.done() and now >= deadlines[index]
                }
                if overdue:
                    # Collect whatever finished first, then nuke the pool:
                    # a running worker cannot be cancelled individually.
                    for future in list(ready):
                        index = futures.pop(future)
                        try:
                            succeed(index, future.result(timeout=0))
                        except BrokenProcessPool:
                            overdue.setdefault(index, "worker crashed")
                            futures[future] = index
                        except Exception as exc:
                            charge_failure(index, f"{type(exc).__name__}: {exc}")
                    rebuild_pool(overdue)
                    submit_ready()
                    continue
                for future in ready:
                    index = futures.pop(future)
                    try:
                        envelope = future.result(timeout=0)
                    except BrokenProcessPool:
                        # The whole pool is dead; every other in-flight
                        # future dies with it — rebuild once for all.
                        rebuild_pool({index: "worker crashed (process died)"})
                        break
                    except CancelledError:
                        attempts[index] -= 1
                        queue.appendleft(index)
                    except Exception as exc:
                        charge_failure(index, f"{type(exc).__name__}: {exc}")
                    else:
                        succeed(index, envelope)
                submit_ready()
        finally:
            _terminate(pool)


def _terminate(pool: ProcessPoolExecutor) -> None:
    """Shut a pool down hard, killing any still-running workers."""
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except (OSError, ValueError):
            pass
