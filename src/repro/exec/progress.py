"""Progress and telemetry surface for orchestrated runs.

Two pieces:

* :class:`ProgressReporter` — a live single-line counter
  (``[7/12] degradation[crash=0.15,loss=0.2] ok 3.2s (2 cached)``)
  rewritten in place on a TTY, one line per job otherwise (silent when
  disabled, which is the default off-TTY so test output stays clean);
* :func:`summary_table` / :func:`summary_line` — the end-of-run report:
  per-job wall-clock, RSS and cache/attempt status, plus one grep-able
  totals line (CI asserts on it).
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Any, Iterable, Sequence

if TYPE_CHECKING:  # JobOutcome only flows in; scheduler does not import us back
    from repro.exec.scheduler import JobOutcome

__all__ = ["ProgressReporter", "summary_line", "summary_table"]


class ProgressReporter:
    """Live per-job counter; safe to point at any text stream."""

    def __init__(self, stream: Any | None = None, enabled: bool | None = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        isatty = getattr(self.stream, "isatty", lambda: False)
        self.enabled = bool(isatty()) if enabled is None else enabled
        self._tty = bool(isatty())
        self._dirty = False
        self.cached = 0

    def update(self, outcome: JobOutcome, done: int, total: int) -> None:
        if outcome.cached:
            self.cached += 1
        if not self.enabled:
            return
        if outcome.cached:
            status = "cached"
        elif outcome.ok:
            status = f"ok {outcome.elapsed_s:.1f}s"
        else:
            status = f"FAILED ({outcome.error})"
        line = f"[{done}/{total}] {outcome.spec.display()} {status}"
        if self.cached:
            line += f" ({self.cached} cached)"
        if self._tty:
            self.stream.write("\r\x1b[2K" + line)
            self._dirty = True
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def close(self) -> None:
        if self.enabled and self._tty and self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False


def summary_table(outcomes: Iterable[JobOutcome]) -> str:
    """Fixed-width per-job timing table for the end of a run."""
    rows = []
    for outcome in outcomes:
        if outcome.cached:
            status = "cached"
        elif outcome.ok:
            status = "ok"
        else:
            status = "FAILED"
        rows.append(
            (
                outcome.spec.display(),
                status,
                outcome.attempts,
                f"{outcome.elapsed_s:.2f}",
                f"{outcome.rss_kb / 1024:.0f}" if outcome.rss_kb else "-",
            )
        )
    # lazy: exec sits below experiments in the layer DAG (LAY001)
    from repro.experiments.common import format_table

    return format_table(
        ["job", "status", "attempts", "time_s", "rss_mb"],
        rows,
        title="job timings",
    )


def summary_line(outcomes: Sequence[JobOutcome], wall_s: float | None = None) -> str:
    """One grep-able totals line, e.g.
    ``jobs: 12 total | 9 run | 3 cached | 0 failed | wall 41.3s``."""
    total = len(outcomes)
    cached = sum(1 for o in outcomes if o.cached)
    failed = sum(1 for o in outcomes if not o.ok)
    ran = total - cached - failed
    line = f"jobs: {total} total | {ran} run | {cached} cached | {failed} failed"
    if wall_s is not None:
        line += f" | wall {wall_s:.1f}s"
    return line
