"""The picklable job entry point executed inside worker processes.

:func:`execute_spec` takes a plain ``JobSpec.to_dict()`` dictionary (so
nothing interesting crosses the pickle boundary), resolves the target
callable by import path, runs it, and returns a JSON-able envelope::

    {"payload": {"kind": ..., "value": ...},  # what the cache stores
     "elapsed_s": 1.23,                       # wall-clock inside the worker
     "rss_kb": 45678}                         # peak RSS of the worker so far

When ``telemetry_dir`` is given, the job runs inside a telemetry capture
window (:func:`repro.obs.capture.capture`): every system the job builds
through the registry is instrumented, and the resulting bundle is stored
content-addressed under ``telemetry_dir`` with the envelope gaining::

    {"telemetry": {"key": "<sha256>", "path": "<bundle dir>"}}

Jobs that build no system (pure computation) produce no bundle and no
``telemetry`` entry.  Telemetry is worker-side state, so it works
identically in serial mode and inside pool workers.

Payload kinds:

* ``experiment_result`` — an :class:`~repro.experiments.common.ExperimentResult`,
  serialized via :func:`repro.experiments.export.result_to_dict`;
* ``value`` — any JSON-encodable return (sweep cells return plain dicts).

``rss_kb`` is ``ru_maxrss`` at job end: in a pooled worker that is the
peak over every job the process has run so far, i.e. an upper bound per
job, not an exact per-job figure.
"""

from __future__ import annotations

import importlib
from typing import Any

from repro.obs.clock import WallClock
from repro.obs.prof import max_rss_kb

__all__ = ["execute_spec", "encode_value", "decode_payload"]


def encode_value(value: Any) -> dict:
    """Wrap a job return value in a typed, JSON-able payload."""
    # lazy: exec sits below experiments in the layer DAG (LAY001); the
    # experiment-result codec is only needed when a job returns one
    from repro.experiments.common import ExperimentResult
    from repro.experiments.export import result_to_dict

    if isinstance(value, ExperimentResult):
        return {"kind": "experiment_result", "value": result_to_dict(value, exact=True)}
    return {"kind": "value", "value": value}


def decode_payload(payload: dict) -> Any:
    """Invert :func:`encode_value` (cache replay takes this path too)."""
    kind = payload.get("kind")
    if kind == "experiment_result":
        from repro.experiments.export import result_from_dict

        return result_from_dict(payload["value"])
    if kind == "value":
        return payload["value"]
    raise ValueError(f"unknown payload kind: {kind!r}")


def execute_spec(spec_dict: dict, telemetry_dir: str | None = None) -> dict:
    """Run one job described by ``JobSpec.to_dict()``; worker-side.

    ``telemetry_dir`` opts the job into telemetry capture (see module
    docstring); ``None`` (the default) runs the exact untraced path.
    With a capture open, setting ``HIREP_PROFILE=1`` (or ``mem``) in the
    environment additionally profiles the job (see
    :func:`repro.obs.capture.capture`), and the bundle gains
    ``profile.json``.
    """
    module = importlib.import_module(spec_dict["module"])
    func = getattr(module, spec_dict.get("func", "run"))
    kwargs = spec_dict.get("kwargs", {})
    telemetry: dict | None = None
    clock = WallClock()  # job timing telemetry, not sim time
    if telemetry_dir is None:
        value = func(**kwargs)
    else:
        from repro.obs.bundle import store_bundle
        from repro.obs.capture import capture

        with capture() as plane:
            value = func(**kwargs)
        if plane.attached:
            key, path = store_bundle(
                plane, telemetry_dir, meta={"spec": spec_dict}
            )
            telemetry = {"key": key, "path": str(path)}
    envelope = {
        "payload": encode_value(value),
        "elapsed_s": clock.now / 1000.0,
        "rss_kb": max_rss_kb(),
    }
    if telemetry is not None:
        envelope["telemetry"] = telemetry
    return envelope
