"""The picklable job entry point executed inside worker processes.

:func:`execute_spec` takes a plain ``JobSpec.to_dict()`` dictionary (so
nothing interesting crosses the pickle boundary), resolves the target
callable by import path, runs it, and returns a JSON-able envelope::

    {"payload": {"kind": ..., "value": ...},  # what the cache stores
     "elapsed_s": 1.23,                       # wall-clock inside the worker
     "rss_kb": 45678}                         # peak RSS of the worker so far

Payload kinds:

* ``experiment_result`` — an :class:`~repro.experiments.common.ExperimentResult`,
  serialized via :func:`repro.experiments.export.result_to_dict`;
* ``value`` — any JSON-encodable return (sweep cells return plain dicts).

``rss_kb`` is ``ru_maxrss`` at job end: in a pooled worker that is the
peak over every job the process has run so far, i.e. an upper bound per
job, not an exact per-job figure.
"""

from __future__ import annotations

import importlib
import resource
import sys
import time
from typing import Any

from repro.experiments.common import ExperimentResult
from repro.experiments.export import result_from_dict, result_to_dict

__all__ = ["execute_spec", "encode_value", "decode_payload"]


def encode_value(value: Any) -> dict:
    """Wrap a job return value in a typed, JSON-able payload."""
    if isinstance(value, ExperimentResult):
        return {"kind": "experiment_result", "value": result_to_dict(value, exact=True)}
    return {"kind": "value", "value": value}


def decode_payload(payload: dict) -> Any:
    """Invert :func:`encode_value` (cache replay takes this path too)."""
    kind = payload.get("kind")
    if kind == "experiment_result":
        return result_from_dict(payload["value"])
    if kind == "value":
        return payload["value"]
    raise ValueError(f"unknown payload kind: {kind!r}")


def _max_rss_kb() -> int:
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes; macOS reports bytes.
    return int(rss // 1024) if sys.platform == "darwin" else int(rss)


def execute_spec(spec_dict: dict) -> dict:
    """Run one job described by ``JobSpec.to_dict()``; worker-side."""
    module = importlib.import_module(spec_dict["module"])
    func = getattr(module, spec_dict.get("func", "run"))
    kwargs = spec_dict.get("kwargs", {})
    start = time.perf_counter()  # lint: allow[DET002] -- job timing telemetry
    value = func(**kwargs)
    elapsed = time.perf_counter() - start  # lint: allow[DET002]
    return {
        "payload": encode_value(value),
        "elapsed_s": elapsed,
        "rss_kb": _max_rss_kb(),
    }
