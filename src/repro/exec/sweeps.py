"""The plan/assemble protocol: how experiments fan out into jobs.

An experiment module may define::

    def plan(**kwargs) -> SweepPlan

returning the independent jobs its sweep decomposes into plus an
``assemble`` callable that folds the per-job values back into the single
:class:`~repro.experiments.common.ExperimentResult` the serial ``run()``
would have produced.  Modules without a ``plan`` are scheduled as one
job over their ``run()``.

:func:`plan_for` resolves a registry entry either way, and
:func:`replication_plan` fans one experiment's ``--replicate`` seeds out
as sibling jobs whose results pool into a
:class:`~repro.experiments.replication.Replication`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from types import ModuleType
from typing import Any, Callable, Sequence

from repro.exec.job import JobSpec

__all__ = ["SweepPlan", "plan_for", "replication_plan"]


@dataclass
class SweepPlan:
    """Independent jobs + the fold that rebuilds the experiment result."""

    specs: list[JobSpec]
    assemble: Callable[[list[Any]], Any]

    def __post_init__(self) -> None:
        if not self.specs:
            raise ValueError("a sweep plan needs at least one job")


def _single(values: list[Any]) -> Any:
    return values[0]


def _assemble_replication(results: list[Any], seeds: list[int]) -> Any:
    """Pool per-seed results into a ``Replication``.

    Module-level (bound with :func:`functools.partial`) so the assemble
    callable pickles and stays inside the fingerprinted module — see lint
    rule EXC001.
    """
    from repro.experiments.replication import Replication

    return Replication.from_results(results, seeds)


def plan_for(name: str, module: ModuleType, kwargs: dict) -> SweepPlan:
    """The module's own ``plan(**kwargs)`` if it defines one, else one job."""
    planner = getattr(module, "plan", None)
    if planner is not None:
        return planner(**kwargs)
    spec = JobSpec(module=module.__name__, kwargs=dict(kwargs), label=name)
    return SweepPlan(specs=[spec], assemble=_single)


def replication_plan(
    name: str, module: ModuleType, seeds: Sequence[int], kwargs: dict
) -> SweepPlan:
    """One job per seed; assembles into a ``Replication``."""
    seeds = [int(s) for s in seeds]
    specs = [
        JobSpec(
            module=module.__name__,
            kwargs={**kwargs, "seed": seed},
            label=f"{name}[seed={seed}]",
        )
        for seed in seeds
    ]
    return SweepPlan(
        specs=specs,
        assemble=partial(_assemble_replication, seeds=seeds),
    )
