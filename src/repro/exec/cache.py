"""Content-addressed result cache.

Layout: ``<root>/<key[:2]>/<key>.json`` — one JSON payload per job key
(see :func:`repro.exec.job.job_key`), fanned out over 256 shard
directories so huge sweeps don't degenerate into one enormous listing.
Writes are atomic (temp file + rename), so a sweep killed mid-write never
leaves a truncated entry; unreadable entries read as misses and are
overwritten on the next run.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.exec.job import canonical_json

__all__ = ["ResultCache"]


class ResultCache:
    """On-disk map from job key to the job's JSON payload."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The cached payload, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> Path:
        """Atomically store ``payload`` under ``key``; returns the path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(canonical_json(payload))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        for entry in self.root.glob("??/*.json"):
            entry.unlink(missing_ok=True)
            removed += 1
        return removed
