"""Jobs for exercising the scheduler: misbehaving ones, plus a real one.

These live in the package (not the test tree) because worker processes
resolve jobs by import path — they must be importable wherever the pool
spawns workers.  A sentinel file carries "have I run before?" across
process boundaries, which is what lets a job fail exactly once and then
succeed on retry.  :func:`tiny_system_job` is the well-behaved member:
a miniature registry-built simulation for telemetry-capture tests.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

__all__ = ["flaky", "crash_once", "sleepy", "tiny_system_job"]


def flaky(sentinel: str, value: float = 42.0) -> dict:
    """Raise on the first call (per sentinel file), succeed after."""
    path = Path(sentinel)
    if not path.exists():
        path.write_text("attempt 1 died here\n")
        raise RuntimeError("flaky job: first attempt fails")
    return {"value": value, "attempt": "retry"}


def crash_once(sentinel: str, value: float = 7.0) -> dict:
    """Kill the whole worker process on the first call, succeed after.

    ``os._exit`` skips every finally/atexit handler — to a
    ``ProcessPoolExecutor`` this is indistinguishable from a segfault or
    an OOM kill, so it exercises the broken-pool rebuild path.
    """
    path = Path(sentinel)
    if not path.exists():
        path.write_text("worker hard-crashed here\n")
        os._exit(13)
    return {"value": value, "attempt": "after-crash"}


def sleepy(seconds: float, value: float = 1.0) -> dict:
    """Sleep, then return — fodder for the timeout watchdog."""
    time.sleep(seconds)
    return {"value": value, "slept_s": seconds}


def tiny_system_job(
    network_size: int = 60,
    transactions: int = 5,
    seed: int = 7,
    system: str = "hirep",
) -> dict:
    """A real (tiny) reputation-system run, built through the registry.

    Telemetry integration tests use this: the registry front door is what
    attaches a captured job's systems to the active plane, so a pure
    arithmetic job would never produce a bundle.
    """
    from repro.core.config import HiRepConfig
    from repro.core.registry import build_system

    cfg = HiRepConfig(network_size=network_size, seed=seed)
    sys_ = build_system(system, cfg)
    outcomes = sys_.run(transactions)
    return {
        "transactions": len(outcomes),
        "messages": sys_.counter.total,
        "mse": sys_.mse.mse(),
    }
