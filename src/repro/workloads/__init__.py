"""Workload generators and per-figure scenario configs."""

from repro.workloads.scenarios import (
    default_config,
    fig5_config,
    fig6_config,
    fig7_config,
    fig8_config,
)
from repro.workloads.transactions import (
    FixedRequestorWorkload,
    PooledRequestorWorkload,
    Transaction,
    UniformWorkload,
    Workload,
)

__all__ = [
    "default_config",
    "fig5_config",
    "fig6_config",
    "fig7_config",
    "fig8_config",
    "FixedRequestorWorkload",
    "PooledRequestorWorkload",
    "Transaction",
    "UniformWorkload",
    "Workload",
]
