"""Transaction workload generators.

The paper's workload is minimal — "the trust making process is started with
randomly selecting a peer as a potential service provider" (§5.2) — and its
accuracy curves show a *training* effect, which implies a stable requestor
population whose trusted-agent lists get trained.  The generators here make
that explicit and reproducible:

* :class:`FixedRequestorWorkload` — one requestor transacts repeatedly
  (the configuration the accuracy figures are reproduced with);
* :class:`PooledRequestorWorkload` — requestors drawn from a small pool
  (models a community of active downloaders);
* :class:`UniformWorkload` — fully random pairs (traffic experiments,
  where no training is involved).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigError
from repro.sim.rng import choice_without

__all__ = [
    "Transaction",
    "Workload",
    "FixedRequestorWorkload",
    "PooledRequestorWorkload",
    "UniformWorkload",
]


@dataclass(frozen=True)
class Transaction:
    """One (requestor, provider) pairing."""

    index: int
    requestor: int
    provider: int


class Workload(abc.ABC):
    """Iterable source of transactions over ``n`` nodes."""

    def __init__(self, n: int, rng: np.random.Generator) -> None:
        if n < 2:
            raise ConfigError(f"need at least 2 nodes, got {n}")
        self.n = n
        self.rng = rng

    @abc.abstractmethod
    def pair(self, index: int) -> tuple[int, int]:
        """The (requestor, provider) for transaction ``index``."""

    def generate(self, count: int) -> Iterator[Transaction]:
        for i in range(count):
            requestor, provider = self.pair(i)
            yield Transaction(index=i, requestor=requestor, provider=provider)


class FixedRequestorWorkload(Workload):
    """One requestor, uniformly random distinct providers."""

    def __init__(self, n: int, rng: np.random.Generator, requestor: int = 0) -> None:
        super().__init__(n, rng)
        if not 0 <= requestor < n:
            raise ConfigError(f"requestor {requestor} out of range [0, {n})")
        self.requestor = requestor

    def pair(self, index: int) -> tuple[int, int]:
        return self.requestor, choice_without(self.rng, self.n, self.requestor)


class PooledRequestorWorkload(Workload):
    """Requestors cycle through a random pool of active peers."""

    def __init__(self, n: int, rng: np.random.Generator, pool_size: int = 10) -> None:
        super().__init__(n, rng)
        if pool_size < 1:
            raise ConfigError(f"pool_size must be >= 1, got {pool_size}")
        pool_size = min(pool_size, n)
        self.pool = [int(i) for i in rng.choice(n, size=pool_size, replace=False)]

    def pair(self, index: int) -> tuple[int, int]:
        requestor = self.pool[index % len(self.pool)]
        return requestor, choice_without(self.rng, self.n, requestor)


class UniformWorkload(Workload):
    """Independent uniform requestor/provider pairs."""

    def pair(self, index: int) -> tuple[int, int]:
        requestor = int(self.rng.integers(0, self.n))
        return requestor, choice_without(self.rng, self.n, requestor)
