"""Pre-built configurations for every reproduced figure.

Each builder returns the :class:`~repro.core.config.HiRepConfig` the
corresponding experiment runs with.  Experiment-visible knobs (transaction
counts, sweep values) live in :mod:`repro.experiments`; this module pins the
*system* parameters so examples, tests and benchmarks agree on them.

Scale note: the paper simulates 1000 peers; the builders accept a
``network_size`` override because CI-sized runs use a few hundred — the
figure *shapes* are scale-stable, which `tests/integration` asserts.
"""

from __future__ import annotations

from repro.core.config import HiRepConfig

__all__ = [
    "fig5_config",
    "fig6_config",
    "fig7_config",
    "fig8_config",
    "default_config",
]


def default_config(network_size: int = 1000, seed: int = 2006) -> HiRepConfig:
    """Table 1 defaults."""
    return HiRepConfig(network_size=network_size, seed=seed)


def fig5_config(
    avg_neighbors: float, network_size: int = 1000, seed: int = 2006
) -> HiRepConfig:
    """Fig. 5: traffic cost; voting degree swept over {2, 3, 4}.

    hiREP's traffic depends only on (agents queried × onion length), so a
    single hiREP curve is produced with the defaults.
    """
    return HiRepConfig(
        network_size=network_size,
        avg_neighbors=avg_neighbors,
        seed=seed,
    )


def fig6_config(
    eviction_threshold: float, network_size: int = 1000, seed: int = 2006
) -> HiRepConfig:
    """Fig. 6: accuracy vs transactions; hirep-4/6/8 ⇒ θ ∈ {0.4, 0.6, 0.8},
    10% malicious."""
    return HiRepConfig(
        network_size=network_size,
        eviction_threshold=eviction_threshold,
        poor_agent_fraction=0.10,
        malicious_fraction=0.10,
        seed=seed,
    )


def fig7_config(
    attacker_ratio: float, network_size: int = 1000, seed: int = 2006
) -> HiRepConfig:
    """Fig. 7: accuracy vs attacker ratio (0–90%)."""
    return HiRepConfig(
        network_size=network_size,
        poor_agent_fraction=attacker_ratio,
        malicious_fraction=attacker_ratio,
        seed=seed,
    )


def fig8_config(
    onion_relays: int, network_size: int = 1000, seed: int = 2006
) -> HiRepConfig:
    """Fig. 8: response time; hirep-10/7/5 ⇒ relays ∈ {10, 7, 5}."""
    return HiRepConfig(
        network_size=network_size,
        onion_relays=onion_relays,
        seed=seed,
    )
