"""Fig. 8 — cumulative response time of trust queries.

Paper: cumulative response time (ms) against transactions for pure voting
and hirep-n, where n is the onion relay count (10, 7, 5).  Expected shape:

* fewer relays ⇒ lower hiREP response time (hirep-5 < hirep-7 < hirep-10);
* "the average response time of hiREP is lower than that of the pure
  voting system" — polling everyone funnels hundreds of vote responses
  through the requestor's access link, which dominates the handful of
  onion hops hiREP pays.
"""

from __future__ import annotations

from repro.core.registry import build_system
from repro.experiments.common import ExperimentResult, Series
from repro.workloads.scenarios import fig8_config

__all__ = ["run", "main", "RELAY_COUNTS"]

#: hirep-10 / hirep-7 / hirep-5.
RELAY_COUNTS = (10, 7, 5)


def run(
    network_size: int = 1000,
    transactions: int = 200,
    seed: int = 2006,
    system: str = "hirep",
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig8",
        title="Cumulative response time of trust queries",
        x_label="transactions",
        y_label="cumulative response time (ms)",
    )

    cfg = fig8_config(5, network_size=network_size, seed=seed)
    voting = build_system("voting", cfg)
    voting.run(transactions)
    y = [float(v) for v in voting.response_times.cumulative()]
    result.series.append(Series(name="voting", x=list(range(1, len(y) + 1)), y=y))
    result.scalars["voting_mean_ms"] = voting.response_times.mean()

    for relays in RELAY_COUNTS:
        cfg = fig8_config(relays, network_size=network_size, seed=seed)
        hirep = build_system(system, cfg)
        hirep.bootstrap()
        hirep.reset_metrics()
        hirep.run(transactions)
        y = [float(v) for v in hirep.response_times.cumulative()]
        name = f"hirep-{relays}"
        result.series.append(Series(name=name, x=list(range(1, len(y) + 1)), y=y))
        result.scalars[f"{name}_mean_ms"] = hirep.response_times.mean()

    h5 = result.scalars["hirep-5_mean_ms"]
    h7 = result.scalars["hirep-7_mean_ms"]
    h10 = result.scalars["hirep-10_mean_ms"]
    vt = result.scalars["voting_mean_ms"]
    result.note(
        "paper claim: fewer relays -> faster — "
        + ("HOLDS" if h5 < h7 < h10 else "VIOLATED")
    )
    result.note(
        "paper claim: hiREP faster than voting — "
        + ("HOLDS" if max(h5, h7, h10) < vt else "VIOLATED")
    )
    return result


def main() -> str:
    result = run()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
