"""Multi-seed replication harness.

Every figure in EXPERIMENTS.md comes from one seeded run (like the
paper's).  This harness replicates an experiment across independent seeds
and reports mean ± normal-approximation CI for each scalar, so claims can
be checked for seed-robustness:

    from repro.experiments import fig7_malicious, replication
    rep = replication.replicate(fig7_malicious.run, seeds=range(5),
                                network_size=250, ...)
    rep.summary("hirep_mse_at_90")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.sim.stats import confidence_interval

__all__ = ["Replication", "replicate"]


@dataclass
class Replication:
    """Scalar samples across seeds for one experiment."""

    experiment_id: str
    seeds: list[int]
    samples: dict[str, list[float]] = field(default_factory=dict)
    results: list[ExperimentResult] = field(default_factory=list)

    def summary(self, scalar: str) -> dict[str, float]:
        values = np.asarray(self.samples[scalar], dtype=np.float64)
        values = values[np.isfinite(values)]
        lo, hi = confidence_interval(values)
        return {
            "n": int(values.size),
            "mean": float(values.mean()) if values.size else float("nan"),
            "std": float(values.std(ddof=1)) if values.size > 1 else 0.0,
            "ci_lo": lo,
            "ci_hi": hi,
        }

    @classmethod
    def from_results(
        cls, results: list[ExperimentResult], seeds
    ) -> "Replication":
        """Pool already-computed per-seed results (seed order preserved)."""
        seeds = [int(s) for s in seeds]
        if not results:
            raise ValueError("need at least one result")
        replication = cls(
            experiment_id=results[0].experiment_id, seeds=seeds
        )
        for result in results:
            replication.results.append(result)
            for key, value in result.scalars.items():
                replication.samples.setdefault(key, []).append(float(value))
        return replication

    def claim_always_holds(self, note_prefix: str) -> bool:
        """Whether a given claim note reported HOLDS in every replicate."""
        for result in self.results:
            for note in result.notes:
                if note.startswith(note_prefix) and "HOLDS" not in note:
                    return False
        return True

    def render(self) -> str:
        lines = [f"== replication of {self.experiment_id} over seeds {self.seeds} =="]
        for scalar in sorted(self.samples):
            s = self.summary(scalar)
            lines.append(
                f"  {scalar}: mean={s['mean']:.5g} ± std={s['std']:.3g} "
                f"(95% CI [{s['ci_lo']:.5g}, {s['ci_hi']:.5g}], n={s['n']})"
            )
        return "\n".join(lines)


def replicate(
    run: Callable[..., ExperimentResult],
    seeds,
    executor=None,
    **kwargs,
) -> Replication:
    """Run ``run(seed=s, **kwargs)`` for each seed and pool the scalars.

    Seeds are independent, so an injected
    :class:`concurrent.futures.Executor` fans them out across workers
    (``run`` must then be picklable, e.g. a module-level function);
    results are pooled in seed order either way, so the replication is
    identical to the serial loop.  The CLI's ``--replicate --jobs N``
    path instead submits seeds through the orchestrator
    (:func:`repro.exec.sweeps.replication_plan`).
    """
    seeds = [int(s) for s in seeds]
    if not seeds:
        raise ValueError("need at least one seed")
    if executor is None:
        results = [run(seed=seed, **kwargs) for seed in seeds]
    else:
        futures = [executor.submit(run, seed=seed, **kwargs) for seed in seeds]
        results = [future.result() for future in futures]
    return Replication.from_results(results, seeds)
