"""Export experiment results to JSON and CSV.

``hirep-experiments fig5 --out results/`` writes ``fig5.json`` (full
result: series, scalars, notes) and ``fig5.csv`` (long format:
``series,x,y`` rows) so downstream plotting/analysis doesn't have to parse
terminal output.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.experiments.common import ExperimentResult

__all__ = ["result_to_dict", "write_json", "write_csv", "export_result"]


def result_to_dict(result: ExperimentResult) -> dict:
    """A JSON-serializable view of a result."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "x_label": result.x_label,
        "y_label": result.y_label,
        "series": [
            {"name": s.name, "x": list(map(float, s.x)), "y": list(map(float, s.y))}
            for s in result.series
        ],
        "scalars": {k: float(v) for k, v in result.scalars.items()},
        "notes": list(result.notes),
    }


def write_json(result: ExperimentResult, path: Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result), indent=2) + "\n")
    return path


def write_csv(result: ExperimentResult, path: Path) -> Path:
    """Long-format CSV: one row per (series, x, y) point."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["series", result.x_label or "x", result.y_label or "y"])
        for series in result.series:
            for x, y in zip(series.x, series.y):
                writer.writerow([series.name, x, y])
    return path


def export_result(result: ExperimentResult, out_dir: Path) -> list[Path]:
    """Write both formats under ``out_dir``; returns the paths."""
    out_dir = Path(out_dir)
    return [
        write_json(result, out_dir / f"{result.experiment_id}.json"),
        write_csv(result, out_dir / f"{result.experiment_id}.csv"),
    ]
