"""Export experiment results to JSON and CSV.

``hirep-experiments fig5 --out results/`` writes ``fig5.json`` (full
result: series, scalars, notes) and ``fig5.csv`` (long format:
``series,x,y`` rows) so downstream plotting/analysis doesn't have to parse
terminal output.

The JSON encoding is deterministic — keys sorted, floats in ``repr``
(shortest round-trip) form — so the same result always produces the same
bytes: orchestrator cache keys and golden-file diffs stay stable across
runs, processes and Python versions (float ``repr`` is fixed since
CPython 3.1).  :func:`result_from_dict` inverts :func:`result_to_dict`,
which is what lets the result cache replay an experiment without
re-running it.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.experiments.common import ExperimentResult, Series

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "result_to_json",
    "write_json",
    "write_csv",
    "export_result",
]


def result_to_dict(result: ExperimentResult, *, exact: bool = False) -> dict:
    """A JSON-serializable view of a result.

    By default every numeric value is coerced to ``float``, matching the
    exported JSON files.  ``exact=True`` keeps ints as ints — the worker
    envelope uses it so a result that round-trips through the cache is
    indistinguishable (including CSV formatting) from the in-memory one.
    """
    num = (lambda v: v) if exact else float
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "x_label": result.x_label,
        "y_label": result.y_label,
        "series": [
            {"name": s.name, "x": [num(v) for v in s.x], "y": [num(v) for v in s.y]}
            for s in result.series
        ],
        "scalars": {k: num(v) for k, v in result.scalars.items()},
        "notes": list(result.notes),
    }


def result_from_dict(d: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_dict`.

    Numeric types come back exactly as serialized (JSON keeps int/float
    apart), so an ``exact=True`` dict reconstructs the original result.
    """
    return ExperimentResult(
        experiment_id=d["experiment_id"],
        title=d["title"],
        x_label=d["x_label"],
        y_label=d["y_label"],
        series=[
            Series(name=s["name"], x=list(s["x"]), y=list(s["y"]))
            for s in d.get("series", [])
        ],
        scalars=dict(d.get("scalars", {})),
        notes=list(d.get("notes", [])),
    )


def result_to_json(result: ExperimentResult) -> str:
    """The deterministic JSON text ``write_json`` persists."""
    return json.dumps(result_to_dict(result), indent=2, sort_keys=True) + "\n"


def write_json(result: ExperimentResult, path: Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(result_to_json(result))
    return path


def write_csv(result: ExperimentResult, path: Path) -> Path:
    """Long-format CSV: one row per (series, x, y) point."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["series", result.x_label or "x", result.y_label or "y"])
        for series in result.series:
            for x, y in zip(series.x, series.y):
                writer.writerow([series.name, x, y])
    return path


def export_result(result: ExperimentResult, out_dir: Path) -> list[Path]:
    """Write both formats under ``out_dir``; returns the paths."""
    out_dir = Path(out_dir)
    return [
        write_json(result, out_dir / f"{result.experiment_id}.json"),
        write_csv(result, out_dir / f"{result.experiment_id}.csv"),
    ]
