"""§4.2 robustness arguments, turned into measurements (extension).

The paper argues four defences qualitatively; this experiment quantifies
each on a live system:

1. **Identity spoofing** — forged reports must be rejected 100%.
2. **Recommendation manipulation** — with attackers forging discovery
   replies (bad-mouthing good agents, ballot-stuffing poor ones), good
   agents must still reach trusted lists and the trained MSE must stay
   near the unattacked level.
3. **Sybil damping** — sybil agents get evicted like any poor agent; the
   trained MSE with sybils injected must stay well below the untrained
   (poisoned) level.
4. **DoS recovery** — knocking out the most popular agents dips accuracy
   at most transiently; after recovery transactions the MSE returns to the
   trained level.

:func:`run_degradation` (the ``degradation`` experiment) adds the
*environmental* robustness axis: a loss-rate × crash-fraction sweep over
the fault-injection plane (`repro.net.faults`) with the timeout/retry
plane armed, measuring how accuracy, query coverage and retry traffic
degrade as the network gets nastier.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.dos import restore_agents, take_down_top_agents
from repro.attacks.spoofing import mount_spoofing_attack
from repro.core.registry import build_system
from repro.experiments.common import ExperimentResult, Series
from repro.net.faults import FaultPlane
from repro.workloads.scenarios import default_config

__all__ = [
    "run",
    "run_degradation",
    "degradation_cell",
    "degradation_cells",
    "assemble_degradation",
    "main",
]


def _small(network_size: int, seed: int):
    return default_config(network_size=network_size, seed=seed).with_(
        trusted_agents=20,
        refill_threshold=12,
        agents_queried=8,
        tokens=8,
        onion_relays=3,
    )


def run(network_size: int = 250, seed: int = 2006) -> ExperimentResult:
    # Imported here, not at module top: repro.campaigns sits above the
    # experiments layer in the import graph (its specs pull in repro.exec,
    # which renders progress via repro.experiments.common).
    from repro.campaigns.attach import attach_attack
    from repro.campaigns.specs import AttackSpec

    result = ExperimentResult(
        experiment_id="robust42",
        title="Robustness against §4.2 attacks",
        x_label="-",
        y_label="-",
    )
    rng = np.random.default_rng(seed + 1)

    # --- 1. spoofing ------------------------------------------------------
    system = build_system("hirep", _small(network_size, seed))
    system.bootstrap()
    # A handful of requestors so agents learn several identities.
    for req in (0, 1, 2, 3):
        system.run(20, requestor=req)
    # Target the agent that knows the most identities (worst case for the
    # defence — the forged victim nodeIDs are all in its key list).
    agent_ip = max(
        system.agents, key=lambda ip: len(system.agents[ip].public_key_list)
    )
    attacker_ip = next(ip for ip in range(4, network_size) if ip != agent_ip)
    report = mount_spoofing_attack(system, attacker_ip, agent_ip, attempts=50, rng=rng)
    result.scalars["spoofing_rejection_rate"] = report.rejection_rate
    result.note(
        "spoofed reports rejected — "
        + ("HOLDS (100%)" if report.rejection_rate == 1.0 else f"VIOLATED ({report.rejection_rate:.0%})")
    )

    # --- 2. recommendation manipulation ------------------------------------
    clean = build_system("hirep", _small(network_size, seed))
    clean.bootstrap()
    clean.reset_metrics()
    clean.run(150, requestor=0)
    clean_mse = clean.mse.tail_mse(50)

    attacked = build_system("hirep", _small(network_size, seed))
    attach_attack(attacked, AttackSpec.recommendation(fraction=0.3), rng)
    attacked.bootstrap()
    attacked.reset_metrics()
    attacked.run(150, requestor=0)
    attacked_mse = attacked.mse.tail_mse(50)
    result.scalars["recommendation_clean_mse"] = clean_mse
    result.scalars["recommendation_attacked_mse"] = attacked_mse
    result.note(
        "trained MSE under recommendation attack stays < 2.5x clean — "
        + ("HOLDS" if attacked_mse < max(2.5 * clean_mse, 0.1) else "VIOLATED")
    )

    # --- 3. sybil damping -----------------------------------------------------
    sybil_sys = build_system("hirep", _small(network_size, seed))
    attach_attack(
        sybil_sys, AttackSpec.sybil(count=15, compromised_fraction=0.15), rng
    )
    sybil_sys.bootstrap()
    sybil_sys.reset_metrics()
    sybil_sys.run(40, requestor=0)
    early_mse = float(np.mean(sybil_sys.mse.squared_errors[:40]))
    sybil_sys.run(160, requestor=0)
    trained_mse = sybil_sys.mse.tail_mse(50)
    result.scalars["sybil_early_mse"] = early_mse
    result.scalars["sybil_trained_mse"] = trained_mse
    result.note(
        "sybil agents filtered by expertise (trained < early MSE) — "
        + ("HOLDS" if trained_mse < early_mse else "VIOLATED")
    )

    # --- 4. DoS recovery ---------------------------------------------------
    dos_sys = build_system("hirep", _small(network_size, seed))
    dos_sys.bootstrap()
    dos_sys.reset_metrics()
    dos_sys.run(120, requestor=0)
    before_mse = dos_sys.mse.tail_mse(40)
    outcome = take_down_top_agents(
        dos_sys, count=max(2, len(dos_sys.agents) // 4), exclude={0}
    )
    dos_sys.run(80, requestor=0)
    during_answered = float(
        np.mean([o.answered for o in dos_sys.outcomes[-80:]])
    )
    restore_agents(dos_sys, outcome)
    dos_sys.run(80, requestor=0)
    after_mse = dos_sys.mse.tail_mse(40)
    result.scalars["dos_before_mse"] = before_mse
    result.scalars["dos_after_mse"] = after_mse
    result.scalars["dos_answered_during"] = during_answered
    result.note(
        "service continues during DoS (queries still answered) — "
        + ("HOLDS" if during_answered > 0 else "VIOLATED")
    )
    result.note(
        "MSE recovers after DoS (within 2x pre-attack) — "
        + ("HOLDS" if after_mse < max(2.0 * before_mse, 0.1) else "VIOLATED")
    )
    return result


def degradation_cell(
    network_size: int = 120,
    seed: int = 2006,
    transactions: int = 40,
    loss: float = 0.0,
    crash_fraction: float = 0.0,
) -> dict:
    """One cell of the loss × crash sweep — pure and picklable.

    Builds its whole world (config, fault plane, system) from scalar
    arguments, so cells are independent jobs the orchestrator can fan out
    across worker processes; the serial sweep calls the very same
    function, which is what keeps ``--jobs N`` bit-identical to serial.
    """
    from repro.campaigns.specs import FaultSpec

    cfg = _small(network_size, seed).with_(
        query_timeout_ms=2_000.0,
        max_query_retries=2,
        agent_miss_limit=3,
    )
    models = FaultSpec(loss=loss, crash_fraction=crash_fraction).build_models(
        network_size, exclude={0}
    )
    plane = FaultPlane(models, seed=seed + 17) if models else None
    system = build_system("hirep", cfg, faults=plane)
    system.bootstrap()
    system.reset_metrics()
    system.run(transactions, requestor=0)
    return {
        "mse": float(system.mse.tail_mse(max(transactions // 3, 10))),
        "coverage": float(np.mean([o.answered > 0 for o in system.outcomes])),
        "retries_per_tx": system.retry_stats()["retries_sent"] / transactions,
        "fault_stats": plane.stats.as_dict() if plane is not None else None,
    }


def degradation_cells(
    loss_rates: tuple[float, ...], crash_fractions: tuple[float, ...]
) -> list[tuple[float, float]]:
    """Sweep cells as ``(crash_fraction, loss)`` in canonical order."""
    return [
        (crash_fraction, loss)
        for crash_fraction in crash_fractions
        for loss in loss_rates
    ]


def assemble_degradation(
    cell_values: list[dict],
    *,
    loss_rates: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3),
    crash_fractions: tuple[float, ...] = (0.0, 0.15),
) -> ExperimentResult:
    """Fold per-cell measurements (in :func:`degradation_cells` order)
    back into the sweep's :class:`ExperimentResult`."""
    result = ExperimentResult(
        experiment_id="degradation",
        title="Graceful degradation under message loss and crashes",
        x_label="uniform message-loss probability",
        y_label="(per series)",
    )
    worst_stats: dict[str, float] = {}
    grid = iter(cell_values)
    for crash_fraction in crash_fractions:
        mse_y: list[float] = []
        coverage_y: list[float] = []
        retries_y: list[float] = []
        for _loss in loss_rates:
            cell = next(grid)
            mse_y.append(cell["mse"])
            coverage_y.append(cell["coverage"])
            retries_y.append(cell["retries_per_tx"])
            if cell["fault_stats"] is not None:
                worst_stats = cell["fault_stats"]
        tag = f"crash={crash_fraction:g}"
        result.series.append(Series(name=f"mse[{tag}]", x=list(loss_rates), y=mse_y))
        result.series.append(
            Series(name=f"coverage[{tag}]", x=list(loss_rates), y=coverage_y)
        )
        result.series.append(
            Series(name=f"retries_per_tx[{tag}]", x=list(loss_rates), y=retries_y)
        )
    for key, value in worst_stats.items():
        result.scalars[f"fault_{key}"] = float(value)

    baseline_cov = result.get(f"coverage[crash={crash_fractions[0]:g}]").y[0]
    worst_cov = min(min(s.y) for s in result.series if s.name.startswith("coverage"))
    result.scalars["coverage_fault_free"] = baseline_cov
    result.scalars["coverage_worst_cell"] = worst_cov
    result.note(
        "retries keep queries completing under 20% loss (coverage > 0.5 in "
        "every swept cell) — "
        + ("HOLDS" if worst_cov > 0.5 else "VIOLATED")
    )
    retry_series = [s for s in result.series if s.name.startswith("retries_per_tx")]
    monotone = all(
        s.y[i] <= s.y[i + 1] + 1e-9
        for s in retry_series
        for i in range(len(s.y) - 1)
    )
    result.note(
        "retry traffic grows with the loss rate (degradation is paid in "
        "retries, not silence) — " + ("HOLDS" if monotone else "MIXED")
    )
    return result


def run_degradation(
    network_size: int = 120,
    seed: int = 2006,
    transactions: int = 40,
    loss_rates: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3),
    crash_fractions: tuple[float, ...] = (0.0, 0.15),
    executor=None,
) -> ExperimentResult:
    """Loss-rate × crash-fraction sweep: graceful degradation, measured.

    Every cell runs the same seeded workload on a network with uniform
    message loss and scheduled crash windows injected, with the
    timeout/retry plane armed (2 s deadline, 2 retries, 3-miss parking).
    Reported per crash fraction, as functions of the loss rate:

    * ``mse`` — tail MSE of the trust estimates;
    * ``coverage`` — fraction of transactions with ≥ 1 answer;
    * ``retries_per_tx`` — retry traffic the deadline plane spent.

    Cells are independent; pass a :class:`concurrent.futures.Executor`
    to fan them out (results are order-stable either way).  The CLI's
    ``--jobs N`` path instead submits the cells through the orchestrator
    via :func:`repro.experiments.degradation.plan`.
    """
    cells = degradation_cells(tuple(loss_rates), tuple(crash_fractions))
    if executor is None:
        values = [
            degradation_cell(
                network_size=network_size,
                seed=seed,
                transactions=transactions,
                loss=loss,
                crash_fraction=crash_fraction,
            )
            for crash_fraction, loss in cells
        ]
    else:
        futures = [
            executor.submit(
                degradation_cell,
                network_size=network_size,
                seed=seed,
                transactions=transactions,
                loss=loss,
                crash_fraction=crash_fraction,
            )
            for crash_fraction, loss in cells
        ]
        values = [f.result() for f in futures]
    return assemble_degradation(
        values,
        loss_rates=tuple(loss_rates),
        crash_fractions=tuple(crash_fractions),
    )


def main() -> str:
    result = run()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
