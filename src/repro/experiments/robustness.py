"""§4.2 robustness arguments, turned into measurements (extension).

The paper argues four defences qualitatively; this experiment quantifies
each on a live system:

1. **Identity spoofing** — forged reports must be rejected 100%.
2. **Recommendation manipulation** — with attackers forging discovery
   replies (bad-mouthing good agents, ballot-stuffing poor ones), good
   agents must still reach trusted lists and the trained MSE must stay
   near the unattacked level.
3. **Sybil damping** — sybil agents get evicted like any poor agent; the
   trained MSE with sybils injected must stay well below the untrained
   (poisoned) level.
4. **DoS recovery** — knocking out the most popular agents dips accuracy
   at most transiently; after recovery transactions the MSE returns to the
   trained level.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.dos import restore_agents, take_down_top_agents
from repro.attacks.models import install_recommendation_attack
from repro.attacks.spoofing import mount_spoofing_attack
from repro.attacks.sybil import SybilOperator
from repro.core.system import HiRepSystem
from repro.experiments.common import ExperimentResult
from repro.workloads.scenarios import default_config

__all__ = ["run", "main"]


def _small(network_size: int, seed: int):
    return default_config(network_size=network_size, seed=seed).with_(
        trusted_agents=20,
        refill_threshold=12,
        agents_queried=8,
        tokens=8,
        onion_relays=3,
    )


def run(network_size: int = 250, seed: int = 2006) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="robust42",
        title="Robustness against §4.2 attacks",
        x_label="-",
        y_label="-",
    )
    rng = np.random.default_rng(seed + 1)

    # --- 1. spoofing ------------------------------------------------------
    system = HiRepSystem(_small(network_size, seed))
    system.bootstrap()
    # A handful of requestors so agents learn several identities.
    for req in (0, 1, 2, 3):
        system.run(20, requestor=req)
    # Target the agent that knows the most identities (worst case for the
    # defence — the forged victim nodeIDs are all in its key list).
    agent_ip = max(
        system.agents, key=lambda ip: len(system.agents[ip].public_key_list)
    )
    attacker_ip = next(ip for ip in range(4, network_size) if ip != agent_ip)
    report = mount_spoofing_attack(system, attacker_ip, agent_ip, attempts=50, rng=rng)
    result.scalars["spoofing_rejection_rate"] = report.rejection_rate
    result.note(
        "spoofed reports rejected — "
        + ("HOLDS (100%)" if report.rejection_rate == 1.0 else f"VIOLATED ({report.rejection_rate:.0%})")
    )

    # --- 2. recommendation manipulation ------------------------------------
    clean = HiRepSystem(_small(network_size, seed))
    clean.bootstrap()
    clean.reset_metrics()
    clean.run(150, requestor=0)
    clean_mse = clean.mse.tail_mse(50)

    attacked = HiRepSystem(_small(network_size, seed))
    install_recommendation_attack(attacked, attacker_fraction=0.3, rng=rng)
    attacked.bootstrap()
    attacked.reset_metrics()
    attacked.run(150, requestor=0)
    attacked_mse = attacked.mse.tail_mse(50)
    result.scalars["recommendation_clean_mse"] = clean_mse
    result.scalars["recommendation_attacked_mse"] = attacked_mse
    result.note(
        "trained MSE under recommendation attack stays < 2.5x clean — "
        + ("HOLDS" if attacked_mse < max(2.5 * clean_mse, 0.1) else "VIOLATED")
    )

    # --- 3. sybil damping -----------------------------------------------------
    sybil_sys = HiRepSystem(_small(network_size, seed))
    host = next(iter(sybil_sys.agents))
    operator = SybilOperator(sybil_sys, host, count=15, rng=rng)
    operator.install(compromised=set(range(0, network_size, 7)))
    sybil_sys.bootstrap()
    sybil_sys.reset_metrics()
    sybil_sys.run(40, requestor=0)
    early_mse = float(np.mean(sybil_sys.mse.squared_errors[:40]))
    sybil_sys.run(160, requestor=0)
    trained_mse = sybil_sys.mse.tail_mse(50)
    result.scalars["sybil_early_mse"] = early_mse
    result.scalars["sybil_trained_mse"] = trained_mse
    result.note(
        "sybil agents filtered by expertise (trained < early MSE) — "
        + ("HOLDS" if trained_mse < early_mse else "VIOLATED")
    )

    # --- 4. DoS recovery ---------------------------------------------------
    dos_sys = HiRepSystem(_small(network_size, seed))
    dos_sys.bootstrap()
    dos_sys.reset_metrics()
    dos_sys.run(120, requestor=0)
    before_mse = dos_sys.mse.tail_mse(40)
    outcome = take_down_top_agents(
        dos_sys, count=max(2, len(dos_sys.agents) // 4), exclude={0}
    )
    dos_sys.run(80, requestor=0)
    during_answered = float(
        np.mean([o.answered for o in dos_sys.outcomes[-80:]])
    )
    restore_agents(dos_sys, outcome)
    dos_sys.run(80, requestor=0)
    after_mse = dos_sys.mse.tail_mse(40)
    result.scalars["dos_before_mse"] = before_mse
    result.scalars["dos_after_mse"] = after_mse
    result.scalars["dos_answered_during"] = during_answered
    result.note(
        "service continues during DoS (queries still answered) — "
        + ("HOLDS" if during_answered > 0 else "VIOLATED")
    )
    result.note(
        "MSE recovers after DoS (within 2x pre-attack) — "
        + ("HOLDS" if after_mse < max(2.0 * before_mse, 0.1) else "VIOLATED")
    )
    return result


def main() -> str:
    result = run()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
