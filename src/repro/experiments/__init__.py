"""Experiment harness: one module per reproduced table/figure.

==============  =========================================================
id              regenerates
==============  =========================================================
table1          Table 1 (simulation parameters, with provenance)
fig5            Fig. 5 (trust-query traffic, hiREP vs voting-2/3/4)
fig6            Fig. 6 (MSE vs transactions, voting vs hirep-4/6/8)
fig7            Fig. 7 (MSE vs attacker ratio)
fig8            Fig. 8 (cumulative response time, voting vs hirep-10/7/5)
traffic_bound   §4.1 analytic bound 2c(o_i+o_j) vs measurement
robustness      §4.2 attack-resistance measurements (extension)
degradation     loss-rate × crash-fraction graceful-degradation sweep (ext.)
ablations       design-choice ablations (extension)
==============  =========================================================
"""

from repro.experiments import (
    ablations,
    baseline_comparison,
    churn_resilience,
    degradation,
    fig5_traffic,
    fig6_accuracy,
    fig7_malicious,
    fig8_response,
    replication,
    report_models,
    robustness,
    table1_params,
    traffic_analysis,
    traffic_bound,
)
from repro.experiments.common import ExperimentResult, Series, format_table

__all__ = [
    "ablations",
    "baseline_comparison",
    "churn_resilience",
    "degradation",
    "fig5_traffic",
    "fig6_accuracy",
    "fig7_malicious",
    "fig8_response",
    "replication",
    "report_models",
    "robustness",
    "table1_params",
    "traffic_analysis",
    "traffic_bound",
    "ExperimentResult",
    "Series",
    "format_table",
]
