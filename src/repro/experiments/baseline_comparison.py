"""Extension experiment: all five reputation systems on one world.

The paper compares hiREP against pure voting only; §2 surveys TrustMe,
local/limited sharing, and the structured-overlay systems EigenTrust
represents.  This experiment lines every implemented system up on a
bit-identical world and reports the three paper metrics side by side, plus
coverage — making the design space the paper argues about measurable:

    local      zero traffic, no coverage
    hiREP      O(c) traffic, trained accuracy, onion anonymity
    voting     O(n) traffic, un-curated accuracy
    TrustMe    2 broadcasts/tx, remote storage without curation
    EigenTrust global scores, needs structured aggregation (traffic n/a)
"""

from __future__ import annotations

import numpy as np

from repro.baselines.credibility import CredibilityVotingSystem
from repro.baselines.eigentrust import EigenTrustSystem
from repro.baselines.local import LocalReputationSystem
from repro.baselines.trustme import TrustMeSystem
from repro.baselines.voting import PureVotingSystem
from repro.core.system import HiRepSystem
from repro.experiments.common import ExperimentResult, format_table
from repro.workloads.scenarios import default_config

__all__ = ["run", "main"]


def run(
    network_size: int = 300,
    transactions: int = 150,
    seed: int = 2006,
    attacker_ratio: float = 0.2,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="baselines",
        title="All reputation systems on one world",
        x_label="-",
        y_label="-",
    )
    cfg = default_config(network_size=network_size, seed=seed).with_(
        poor_agent_fraction=attacker_ratio,
        malicious_fraction=attacker_ratio,
        trusted_agents=20,
        refill_threshold=12,
        agents_queried=8,
        onion_relays=3,
    )

    hirep = HiRepSystem(cfg)
    hirep.bootstrap()
    hirep.reset_metrics()
    hirep.run(transactions, requestor=0)
    result.scalars["hirep_msgs_per_tx"] = float(
        np.mean([o.trust_messages for o in hirep.outcomes])
    )
    result.scalars["hirep_mse"] = hirep.mse.tail_mse(transactions // 3)
    result.scalars["hirep_resp_ms"] = hirep.response_times.mean()

    voting = PureVotingSystem(cfg)
    voting.run(transactions, requestor=0)
    result.scalars["voting_msgs_per_tx"] = float(
        np.mean([o.messages for o in voting.outcomes])
    )
    result.scalars["voting_mse"] = voting.mse.tail_mse(transactions // 3)
    result.scalars["voting_resp_ms"] = voting.response_times.mean()

    cred = CredibilityVotingSystem(cfg)
    cred.run(transactions, requestor=0)
    result.scalars["credvoting_msgs_per_tx"] = float(
        np.mean([o.messages for o in cred.outcomes])
    )
    result.scalars["credvoting_mse"] = cred.mse.tail_mse(transactions // 3)

    trustme = TrustMeSystem(cfg)
    trustme.run(transactions, requestor=0)
    result.scalars["trustme_msgs_per_tx"] = float(
        np.mean([o.messages for o in trustme.outcomes])
    )
    result.scalars["trustme_mse"] = trustme.mse.tail_mse(transactions // 3)

    local = LocalReputationSystem(cfg)
    local.run(transactions, requestor=0)
    result.scalars["local_msgs_per_tx"] = float(
        np.mean([o.messages for o in local.outcomes])
    )
    result.scalars["local_mse"] = local.mse.tail_mse(transactions // 3)
    result.scalars["local_coverage"] = local.coverage()

    eigen = EigenTrustSystem(cfg)
    eigen.run(transactions * 3)  # needs global mixing
    result.scalars["eigentrust_mse"] = eigen.mse.tail_mse(transactions // 3)
    result.scalars["eigentrust_msgs_per_tx"] = float(
        np.mean([o.messages for o in eigen.outcomes])
    )

    # The decomposition insight: credibility-weighted voting matches
    # hiREP's accuracy (curation) but not its traffic (hierarchy).
    result.note(
        "curation-vs-hierarchy: cred. voting accuracy ~ hiREP, traffic ~ voting — "
        + (
            "HOLDS"
            if result.scalars["credvoting_mse"] < result.scalars["voting_mse"]
            and result.scalars["credvoting_msgs_per_tx"]
            > 5 * result.scalars["hirep_msgs_per_tx"]
            else "VIOLATED"
        )
    )

    # Headline orderings the design space predicts.
    result.note(
        "traffic ordering local < hirep < voting — "
        + (
            "HOLDS"
            if result.scalars["local_msgs_per_tx"]
            < result.scalars["hirep_msgs_per_tx"]
            < result.scalars["voting_msgs_per_tx"]
            else "VIOLATED"
        )
    )
    result.note(
        "accuracy: trained hiREP best of the unstructured systems — "
        + (
            "HOLDS"
            if result.scalars["hirep_mse"]
            <= min(
                result.scalars["voting_mse"],
                result.scalars["trustme_mse"],
                result.scalars["local_mse"],
            )
            else "VIOLATED"
        )
    )
    return result


def render_result(result: ExperimentResult) -> str:
    s = result.scalars
    rows = [
        ("hiREP", f"{s['hirep_msgs_per_tx']:.0f}", f"{s['hirep_mse']:.4f}", f"{s['hirep_resp_ms']:.0f}"),
        ("pure voting", f"{s['voting_msgs_per_tx']:.0f}", f"{s['voting_mse']:.4f}", f"{s['voting_resp_ms']:.0f}"),
        ("cred. voting", f"{s['credvoting_msgs_per_tx']:.0f}", f"{s['credvoting_mse']:.4f}", "-"),
        ("TrustMe", f"{s['trustme_msgs_per_tx']:.0f}", f"{s['trustme_mse']:.4f}", "-"),
        ("local sharing", f"{s['local_msgs_per_tx']:.0f}", f"{s['local_mse']:.4f}", "-"),
        ("EigenTrust/DHT", f"{s['eigentrust_msgs_per_tx']:.0f}", f"{s['eigentrust_mse']:.4f}", "-"),
    ]
    text = format_table(
        ["system", "msgs/tx", "tail MSE", "mean resp (ms)"],
        rows,
        title=result.title,
    )
    text += "\n" + "\n".join(f"  note: {n}" for n in result.notes)
    return text


def main() -> str:
    text = render_result(run())
    print(text)
    return text


if __name__ == "__main__":
    main()
