"""Extension experiment: every registered reputation system on one world.

The paper compares hiREP against pure voting only; §2 surveys TrustMe,
local/limited sharing, and the structured-overlay systems EigenTrust
represents.  This experiment lines every system in the
:mod:`repro.core.registry` up on a bit-identical world and reports the
three paper metrics side by side, plus coverage — making the design space
the paper argues about measurable:

    local      zero traffic, no coverage
    gossip     O(fanout^rounds) sampled poll, distance-discounted votes
    hiREP      O(c) traffic, trained accuracy, onion anonymity
    voting     O(n) traffic, un-curated accuracy
    TrustMe    2 broadcasts/tx, remote storage without curation
    EigenTrust global scores, needs structured aggregation (traffic n/a)

System kind is a first-class sweep dimension: ``plan()`` fans out one
orchestrator job per system, each cell cached under its
``system="<name>"`` kwarg like any other JobSpec dimension.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.core.registry import build_system
from repro.experiments.common import ExperimentResult, format_table
from repro.workloads.scenarios import default_config

__all__ = ["run", "plan", "system_cell", "assemble_baselines", "SYSTEMS", "main"]

#: registry name -> scalar prefix, in the table's display order.
SYSTEMS = {
    "hirep": "hirep",
    "voting": "voting",
    "credibility": "credvoting",
    "trustme": "trustme",
    "local": "local",
    "eigentrust": "eigentrust",
    "gossip": "gossip",
}


def _comparison_config(network_size: int, seed: int, attacker_ratio: float):
    return default_config(network_size=network_size, seed=seed).with_(
        poor_agent_fraction=attacker_ratio,
        malicious_fraction=attacker_ratio,
        trusted_agents=20,
        refill_threshold=12,
        agents_queried=8,
        onion_relays=3,
    )


def system_cell(
    system: str,
    network_size: int = 300,
    transactions: int = 150,
    seed: int = 2006,
    attacker_ratio: float = 0.2,
) -> dict:
    """Run one reputation system over the shared world; return its scalars.

    The picklable per-job entry point: worker processes call this by
    import path, so the payload must survive a JSON round-trip.  The
    ``system`` kwarg is the sweep dimension — one cache entry per
    (system, cell).
    """
    cfg = _comparison_config(network_size, seed, attacker_ratio)
    instance = build_system(system, cfg)
    scalars: dict[str, float] = {}
    if system == "hirep":
        instance.bootstrap()
        instance.reset_metrics()
        instance.run(transactions, requestor=0)
        scalars["msgs_per_tx"] = float(
            np.mean([o.trust_messages for o in instance.outcomes])
        )
        scalars["resp_ms"] = instance.response_times.mean()
    elif system == "eigentrust":
        instance.run(transactions * 3)  # needs global mixing
        scalars["msgs_per_tx"] = float(
            np.mean([o.messages for o in instance.outcomes])
        )
    else:
        instance.run(transactions, requestor=0)
        scalars["msgs_per_tx"] = float(
            np.mean([o.messages for o in instance.outcomes])
        )
        if system == "voting":
            scalars["resp_ms"] = instance.response_times.mean()
        if system == "local":
            scalars["coverage"] = instance.coverage()
    scalars["mse"] = instance.mse.tail_mse(transactions // 3)
    return scalars


def assemble_baselines(
    values: list[dict], systems: list[str]
) -> ExperimentResult:
    """Fold per-system scalar payloads (in ``systems`` order) into the result.

    Module-level (bound with :func:`functools.partial`) so the assemble
    callable pickles and stays inside the fingerprinted module — see lint
    rule EXC001.
    """
    result = ExperimentResult(
        experiment_id="baselines",
        title="All reputation systems on one world",
        x_label="-",
        y_label="-",
    )
    for system, scalars in zip(systems, values):
        prefix = SYSTEMS[system]
        for key, value in scalars.items():
            result.scalars[f"{prefix}_{key}"] = value

    # The decomposition insight: credibility-weighted voting matches
    # hiREP's accuracy (curation) but not its traffic (hierarchy).
    result.note(
        "curation-vs-hierarchy: cred. voting accuracy ~ hiREP, traffic ~ voting — "
        + (
            "HOLDS"
            if result.scalars["credvoting_mse"] < result.scalars["voting_mse"]
            and result.scalars["credvoting_msgs_per_tx"]
            > 5 * result.scalars["hirep_msgs_per_tx"]
            else "VIOLATED"
        )
    )

    # Headline orderings the design space predicts.
    result.note(
        "traffic ordering local < gossip < voting — "
        + (
            "HOLDS"
            if result.scalars["local_msgs_per_tx"]
            < result.scalars["gossip_msgs_per_tx"]
            < result.scalars["voting_msgs_per_tx"]
            else "VIOLATED"
        )
    )
    result.note(
        "traffic ordering local < hirep < voting — "
        + (
            "HOLDS"
            if result.scalars["local_msgs_per_tx"]
            < result.scalars["hirep_msgs_per_tx"]
            < result.scalars["voting_msgs_per_tx"]
            else "VIOLATED"
        )
    )
    result.note(
        "accuracy: trained hiREP best of the unstructured systems — "
        + (
            "HOLDS"
            if result.scalars["hirep_mse"]
            <= min(
                result.scalars["voting_mse"],
                result.scalars["trustme_mse"],
                result.scalars["local_mse"],
            )
            else "VIOLATED"
        )
    )
    return result


def plan(
    network_size: int = 300,
    transactions: int = 150,
    seed: int = 2006,
    attacker_ratio: float = 0.2,
):
    """One orchestrator job per reputation system; assembles the table."""
    from repro.exec.job import JobSpec
    from repro.exec.sweeps import SweepPlan

    systems = list(SYSTEMS)
    specs = [
        JobSpec(
            module=__name__,
            func="system_cell",
            kwargs={
                "system": system,
                "network_size": network_size,
                "transactions": transactions,
                "seed": seed,
                "attacker_ratio": attacker_ratio,
            },
            label=f"baselines[{system}]",
        )
        for system in systems
    ]
    return SweepPlan(
        specs=specs, assemble=partial(assemble_baselines, systems=systems)
    )


def run(
    network_size: int = 300,
    transactions: int = 150,
    seed: int = 2006,
    attacker_ratio: float = 0.2,
    executor=None,
) -> ExperimentResult:
    systems = list(SYSTEMS)
    if executor is None:
        values = [
            system_cell(system, network_size, transactions, seed, attacker_ratio)
            for system in systems
        ]
    else:
        futures = [
            executor.submit(
                system_cell, system, network_size, transactions, seed, attacker_ratio
            )
            for system in systems
        ]
        values = [f.result() for f in futures]
    return assemble_baselines(values, systems)


def render_result(result: ExperimentResult) -> str:
    s = result.scalars
    rows = [
        ("hiREP", f"{s['hirep_msgs_per_tx']:.0f}", f"{s['hirep_mse']:.4f}", f"{s['hirep_resp_ms']:.0f}"),
        ("pure voting", f"{s['voting_msgs_per_tx']:.0f}", f"{s['voting_mse']:.4f}", f"{s['voting_resp_ms']:.0f}"),
        ("cred. voting", f"{s['credvoting_msgs_per_tx']:.0f}", f"{s['credvoting_mse']:.4f}", "-"),
        ("TrustMe", f"{s['trustme_msgs_per_tx']:.0f}", f"{s['trustme_mse']:.4f}", "-"),
        ("local sharing", f"{s['local_msgs_per_tx']:.0f}", f"{s['local_mse']:.4f}", "-"),
        ("EigenTrust/DHT", f"{s['eigentrust_msgs_per_tx']:.0f}", f"{s['eigentrust_mse']:.4f}", "-"),
        ("gossip", f"{s['gossip_msgs_per_tx']:.0f}", f"{s['gossip_mse']:.4f}", "-"),
    ]
    text = format_table(
        ["system", "msgs/tx", "tail MSE", "mean resp (ms)"],
        rows,
        title=result.title,
    )
    text += "\n" + "\n".join(f"  note: {n}" for n in result.notes)
    return text


def main() -> str:
    text = render_result(run())
    print(text)
    return text


if __name__ == "__main__":
    main()
