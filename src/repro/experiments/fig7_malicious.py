"""Fig. 7 — trust accuracy vs attacker ratio.

Paper: voting degrades fast as the attacker ratio grows; hiREP degrades
slowly because inconsistent agents lose their voice through expertise
maintenance.  Two headline claims:

* voting can be *more* accurate when attackers are very few (it averages
  hundreds of votes, so its variance is tiny) — a crossover at small ratios;
* "in an extreme case that 90% of reputation agents are poor performed,
  MSE of trust evaluation accuracy in hiREP is still under 25%".
"""

from __future__ import annotations

from repro.attacks.collusion import sweep_attacker_ratio
from repro.experiments.common import ExperimentResult, Series
from repro.sim.stats import crossover_index
from repro.workloads.scenarios import default_config

__all__ = ["run", "main", "RATIOS"]

RATIOS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def run(
    network_size: int = 1000,
    train_transactions: int = 200,
    measure_transactions: int = 100,
    seed: int = 2006,
    ratios: tuple[float, ...] = RATIOS,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig7",
        title="Trust accuracy vs malicious-node ratio",
        x_label="attacker ratio",
        y_label="MSE of trust value",
    )
    base = default_config(network_size=network_size, seed=seed)
    points = sweep_attacker_ratio(
        base,
        list(ratios),
        train_transactions=train_transactions,
        measure_transactions=measure_transactions,
    )
    xs = [p.attacker_ratio for p in points]
    hirep_y = [p.hirep_mse for p in points]
    voting_y = [p.voting_mse for p in points]
    result.series.append(Series(name="hirep", x=xs, y=hirep_y))
    result.series.append(Series(name="voting", x=xs, y=voting_y))

    cross = crossover_index(hirep_y, voting_y)
    result.scalars["crossover_ratio"] = (
        xs[cross] if cross is not None else float("nan")
    )
    result.scalars["hirep_mse_at_90"] = hirep_y[-1] if xs[-1] >= 0.9 else float("nan")
    result.note(
        "paper claim: hiREP MSE < 0.25 at 90% attackers — "
        + ("HOLDS" if hirep_y[-1] < 0.25 else "VIOLATED")
    )
    result.note(
        "paper claim: voting degrades faster than hiREP — "
        + (
            "HOLDS"
            if (voting_y[-1] - voting_y[0]) > (hirep_y[-1] - hirep_y[0])
            else "VIOLATED"
        )
    )
    return result


def main() -> str:
    result = run()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
