"""Extension: accuracy and maintenance cost under increasing churn.

§3.4.3's machinery (backup cache, probing, rediscovery) exists because
unstructured P2P populations churn; the paper never measures it.  This
experiment sweeps the per-transaction departure probability and reports,
with the backup cache enabled:

* service continuity — the fraction of queries still answered;
* trained accuracy — tail MSE;
* maintenance overhead — discovery + probe messages per transaction.

Expected shape: accuracy degrades gracefully (agents are replaceable, the
community is large — the same §4.2.4 argument as for DoS), while
maintenance traffic grows with churn since lists need constant repair.
"""

from __future__ import annotations

import numpy as np

from repro.core.registry import build_system
from repro.experiments.common import ExperimentResult, Series
from repro.net.churn import ChurnModel
from repro.net.messages import Category
from repro.workloads.scenarios import default_config

__all__ = ["run", "main", "CHURN_RATES"]

CHURN_RATES = (0.0, 0.02, 0.05, 0.10)


def run(
    network_size: int = 250,
    transactions: int = 200,
    seed: int = 2006,
    churn_rates: tuple[float, ...] = CHURN_RATES,
    system: str = "hirep",
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="churn",
        title="Accuracy and maintenance cost under churn",
        x_label="per-transaction leave probability",
        y_label="(per series)",
    )
    cfg = default_config(network_size=network_size, seed=seed).with_(
        trusted_agents=20,
        refill_threshold=12,
        agents_queried=8,
        onion_relays=3,
    )
    xs: list[float] = []
    mse_y: list[float] = []
    answered_y: list[float] = []
    maintenance_y: list[float] = []
    for rate in churn_rates:
        churn = (
            ChurnModel(leave_prob=rate, rejoin_prob=0.4, protected={0})
            if rate > 0
            else None
        )
        instance = build_system(system, cfg, churn=churn)
        instance.bootstrap()
        instance.reset_metrics()
        instance.run(transactions, requestor=0)
        xs.append(rate)
        mse_y.append(instance.mse.tail_mse(transactions // 3))
        answered_y.append(
            float(np.mean([o.answered > 0 for o in instance.outcomes]))
        )
        maintenance = (
            instance.counter.by_category.get(Category.AGENT_DISCOVERY, 0)
            + instance.counter.by_category.get(Category.AGENT_DISCOVERY_REPLY, 0)
            + instance.counter.by_category.get(Category.CONTROL, 0)
        )
        maintenance_y.append(maintenance / transactions)
    result.series.append(Series(name="tail_mse", x=xs, y=mse_y))
    result.series.append(Series(name="answered_fraction", x=xs, y=answered_y))
    result.series.append(Series(name="maintenance_msgs_per_tx", x=xs, y=maintenance_y))

    result.note(
        "service continues under heavy churn (most queries answered) — "
        + ("HOLDS" if answered_y[-1] > 0.7 else "VIOLATED")
    )
    result.note(
        "accuracy degrades gracefully (MSE < 3x the churn-free level) — "
        + ("HOLDS" if mse_y[-1] < max(3 * mse_y[0], 0.15) else "VIOLATED")
    )
    result.note(
        "maintenance traffic grows with churn — "
        + ("HOLDS" if maintenance_y[-1] > maintenance_y[0] else "VIOLATED")
    )
    return result


def main() -> str:
    result = run()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
