"""Command-line entry point: regenerate any table/figure.

Usage::

    hirep-experiments --list
    hirep-experiments fig5 fig6 --scale small
    hirep-experiments all --scale paper

``--scale small`` (default) runs CI-sized networks in seconds; ``--scale
paper`` uses the paper's 1000-peer configuration.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    ablations,
    baseline_comparison,
    churn_resilience,
    degradation,
    fig5_traffic,
    fig6_accuracy,
    fig7_malicious,
    fig8_response,
    report_models,
    robustness,
    table1_params,
    traffic_analysis,
    traffic_bound,
)

__all__ = ["main", "EXPERIMENTS"]

#: experiment id -> (module, small-scale kwargs, paper-scale kwargs)
EXPERIMENTS = {
    "table1": (table1_params, {}, {}),
    "fig5": (
        fig5_traffic,
        {"network_size": 300, "transactions": 60},
        {"network_size": 1000, "transactions": 300},
    ),
    "fig6": (
        fig6_accuracy,
        {"network_size": 300, "transactions": 150},
        {"network_size": 1000, "transactions": 400},
    ),
    "fig7": (
        fig7_malicious,
        {"network_size": 250, "train_transactions": 80, "measure_transactions": 40},
        {"network_size": 1000, "train_transactions": 200, "measure_transactions": 100},
    ),
    "fig8": (
        fig8_response,
        {"network_size": 300, "transactions": 60},
        {"network_size": 1000, "transactions": 200},
    ),
    "traffic_bound": (
        traffic_bound,
        {"network_size": 200, "transactions": 15},
        {"network_size": 300, "transactions": 40},
    ),
    "robustness": (
        robustness,
        {"network_size": 200},
        {"network_size": 250},
    ),
    "degradation": (
        degradation,
        {"network_size": 120, "transactions": 40},
        {"network_size": 250, "transactions": 120},
    ),
    "ablations": (
        ablations,
        {"network_size": 200},
        {"network_size": 250},
    ),
    "baselines": (
        baseline_comparison,
        {"network_size": 200, "transactions": 80},
        {"network_size": 300, "transactions": 150},
    ),
    "traffic_analysis": (
        traffic_analysis,
        {"network_size": 200, "transactions": 100},
        {"network_size": 250, "transactions": 200},
    ),
    "churn": (
        churn_resilience,
        {"network_size": 150, "transactions": 100},
        {"network_size": 250, "transactions": 200},
    ),
    "report_models": (
        report_models,
        {"network_size": 150, "transactions": 200, "providers": 8},
        {"network_size": 250, "transactions": 400},
    ),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment ids (or 'all'); see --list",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--scale",
        choices=("small", "paper"),
        default="small",
        help="small = CI-sized, paper = the paper's parameters",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render each figure as an ASCII chart too",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="also write <experiment>.json and <experiment>.csv under DIR",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the experiment seed (default: the archived runs' 2006)",
    )
    parser.add_argument(
        "--replicate",
        type=int,
        metavar="N",
        default=None,
        help="run each experiment over N seeds and print mean ± CI per scalar",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    wanted = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [w for w in wanted if w not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2

    for name in wanted:
        module, small_kwargs, paper_kwargs = EXPERIMENTS[name]
        kwargs = dict(small_kwargs if args.scale == "small" else paper_kwargs)
        if args.seed is not None and name != "table1":
            kwargs["seed"] = args.seed
        if args.replicate and name != "table1":
            from repro.experiments.replication import replicate

            base_seed = args.seed if args.seed is not None else 2006
            kwargs.pop("seed", None)
            start = time.perf_counter()
            rep = replicate(
                module.run,
                seeds=range(base_seed, base_seed + args.replicate),
                **kwargs,
            )
            elapsed = time.perf_counter() - start
            print(rep.render())
            print(f"   [{name} x{args.replicate} in {elapsed:.1f}s at scale={args.scale}]\n")
            continue
        start = time.perf_counter()
        result = module.run(**kwargs)
        elapsed = time.perf_counter() - start
        if name == "table1":
            module.main()
        elif name == "baselines":
            print(baseline_comparison.render_result(result))
        elif name == "ablations":
            module_text = []
            for series in result.series:
                pairs = ", ".join(
                    f"{x:g}->{y:.4g}" for x, y in zip(series.x, series.y)
                )
                module_text.append(f"  {series.name}: {pairs}")
            print(f"== {result.experiment_id}: {result.title} ==")
            print("\n".join(module_text))
            for note in result.notes:
                print(f"  note: {note}")
        else:
            print(result.render())
            if args.plot and result.series:
                from repro.experiments.plotting import render_result_chart

                logy = name in ("fig5", "fig8")  # order-of-magnitude gaps
                print(render_result_chart(result, logy=logy))
        if args.out:
            from repro.experiments.export import export_result

            for path in export_result(result, args.out):
                print(f"   wrote {path}")
        print(f"   [{name} completed in {elapsed:.1f}s at scale={args.scale}]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
