"""Command-line entry point: regenerate any table/figure.

Usage::

    hirep-experiments --list
    hirep-experiments fig5 fig6 --scale small
    hirep-experiments all --scale paper --jobs 8
    hirep-experiments --resume .hirep-cache/runs/run-<id>.jsonl

``--scale small`` (default) runs CI-sized networks in seconds; ``--scale
paper`` uses the paper's 1000-peer configuration.

Every invocation goes through the :mod:`repro.exec` orchestrator: each
experiment — and each sweep cell / ``--replicate`` seed inside one —
becomes an independent job.  ``--jobs N`` fans the jobs across a process
pool (the default ``--jobs 1`` runs them serially, in-process, with
bit-identical results); the content-addressed cache makes re-runs of
unchanged jobs instant, and the JSONL run manifest makes an interrupted
sweep resumable with ``--resume``.  See ``docs/orchestration.md``.
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import time
from pathlib import Path

from repro.exec.cache import ResultCache
from repro.exec.manifest import RunManifest
from repro.exec.progress import ProgressReporter, summary_line, summary_table
from repro.exec.scheduler import SweepScheduler
from repro.exec.sweeps import SweepPlan, plan_for, replication_plan
from repro.experiments import (
    ablations,
    baseline_comparison,
    churn_resilience,
    degradation,
    fig5_traffic,
    fig6_accuracy,
    fig7_malicious,
    fig8_response,
    report_models,
    robustness,
    table1_params,
    traffic_analysis,
    traffic_bound,
)
from repro.obs.clock import WallClock

__all__ = ["main", "EXPERIMENTS", "DEFAULT_CACHE_DIR", "DEFAULT_SEED"]

#: experiment id -> (module, small-scale kwargs, paper-scale kwargs)
EXPERIMENTS = {
    "table1": (table1_params, {}, {}),
    "fig5": (
        fig5_traffic,
        {"network_size": 300, "transactions": 60},
        {"network_size": 1000, "transactions": 300},
    ),
    "fig6": (
        fig6_accuracy,
        {"network_size": 300, "transactions": 150},
        {"network_size": 1000, "transactions": 400},
    ),
    "fig7": (
        fig7_malicious,
        {"network_size": 250, "train_transactions": 80, "measure_transactions": 40},
        {"network_size": 1000, "train_transactions": 200, "measure_transactions": 100},
    ),
    "fig8": (
        fig8_response,
        {"network_size": 300, "transactions": 60},
        {"network_size": 1000, "transactions": 200},
    ),
    "traffic_bound": (
        traffic_bound,
        {"network_size": 200, "transactions": 15},
        {"network_size": 300, "transactions": 40},
    ),
    "robustness": (
        robustness,
        {"network_size": 200},
        {"network_size": 250},
    ),
    "degradation": (
        degradation,
        {"network_size": 120, "transactions": 40},
        {"network_size": 250, "transactions": 120},
    ),
    "ablations": (
        ablations,
        {"network_size": 200},
        {"network_size": 250},
    ),
    "baselines": (
        baseline_comparison,
        {"network_size": 200, "transactions": 80},
        {"network_size": 300, "transactions": 150},
    ),
    "traffic_analysis": (
        traffic_analysis,
        {"network_size": 200, "transactions": 100},
        {"network_size": 250, "transactions": 200},
    ),
    "churn": (
        churn_resilience,
        {"network_size": 150, "transactions": 100},
        {"network_size": 250, "transactions": 200},
    ),
    "report_models": (
        report_models,
        {"network_size": 150, "transactions": 200, "providers": 8},
        {"network_size": 250, "transactions": 400},
    ),
}

#: seed of the archived runs; --seed overrides it.
DEFAULT_SEED = 2006

#: where results are cached when caching is on but --cache-dir wasn't given.
DEFAULT_CACHE_DIR = ".hirep-cache"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help="experiment ids (or 'all', the default); see --list",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--scale",
        choices=("small", "paper"),
        default=None,
        help="small = CI-sized (default), paper = the paper's parameters",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render each figure as an ASCII chart too",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="also write <experiment>.json and <experiment>.csv under DIR",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help=f"override the experiment seed (default: the archived runs' {DEFAULT_SEED})",
    )
    parser.add_argument(
        "--system",
        metavar="NAME",
        default=None,
        help="registry name of the hiREP execution backend (e.g. 'hirep-array' "
        "for the vectorized kernel; see repro.core.registry).  Applied to "
        "experiments whose run() accepts a 'system' parameter; others keep "
        "their built-in backend and are noted on stderr",
    )
    parser.add_argument(
        "--replicate",
        type=int,
        metavar="N",
        default=None,
        help="run each experiment over N seeds and print mean ± CI per scalar",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="run up to N jobs in parallel worker processes "
        "(default 1 = serial, bit-identical to the pre-orchestrator path)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="content-addressed result cache; unchanged jobs replay instantly "
        f"(implied at {DEFAULT_CACHE_DIR!r} when --jobs > 1 or --resume)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache even when --jobs/--resume imply it",
    )
    parser.add_argument(
        "--manifest",
        metavar="FILE",
        default=None,
        help="write the JSONL run manifest here "
        "(default: <cache-dir>/runs/run-<stamp>.jsonl when caching)",
    )
    parser.add_argument(
        "--resume",
        metavar="FILE",
        default=None,
        help="re-run the sweep recorded in a manifest; finished jobs are "
        "served from the cache instead of re-running",
    )
    parser.add_argument(
        "--retries",
        type=int,
        metavar="N",
        default=1,
        help="retry a crashed/failed job up to N more times (default 1)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        metavar="S",
        default=None,
        help="per-job timeout in seconds (enforced when --jobs > 1)",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="print the per-job timing table at the end of the run",
    )
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="capture a telemetry bundle per executed job under DIR "
        "(inspect with hirep-obs; see docs/observability.md)",
    )
    return parser


def _accepts_system(module) -> bool:
    """Whether the experiment's ``run()`` takes a ``system`` backend name."""
    runner = getattr(module, "run", None)
    if runner is None:
        return False
    return "system" in inspect.signature(runner).parameters


def _render_ablations(result) -> str:
    lines = [f"== {result.experiment_id}: {result.title} =="]
    for series in result.series:
        pairs = ", ".join(f"{x:g}->{y:.4g}" for x, y in zip(series.x, series.y))
        lines.append(f"  {series.name}: {pairs}")
    for note in result.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    # --resume restores the recorded run configuration; flags given
    # explicitly on this invocation still win.
    resumed: dict = {}
    if args.resume:
        try:
            resumed = RunManifest.run_config(RunManifest.load(args.resume)) or {}
        except OSError as exc:
            print(f"cannot read manifest {args.resume}: {exc}", file=sys.stderr)
            return 2
    experiments = args.experiments or resumed.get("experiments") or ["all"]
    scale = args.scale or resumed.get("scale") or "small"
    seed = args.seed if args.seed is not None else resumed.get("seed")
    replicate = (
        args.replicate if args.replicate is not None else resumed.get("replicate")
    )
    jobs = args.jobs if args.jobs is not None else resumed.get("jobs") or 1
    system_name = args.system or resumed.get("system")
    out_dir = args.out or resumed.get("out")
    cache_dir = args.cache_dir or resumed.get("cache_dir")
    telemetry_dir = args.telemetry or resumed.get("telemetry")

    wanted = list(EXPERIMENTS) if "all" in experiments else list(experiments)
    unknown = [w for w in wanted if w not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2

    # Caching is implied whenever it pays (parallel runs, resume) or the
    # user pointed at a directory; a bare serial run stays side-effect
    # free on the filesystem.
    if cache_dir is None and not args.no_cache and (jobs > 1 or args.resume):
        cache_dir = DEFAULT_CACHE_DIR
    cache = (
        ResultCache(cache_dir) if cache_dir is not None and not args.no_cache else None
    )

    manifest_path = args.manifest
    if manifest_path is None and cache is not None:
        stamp = time.strftime("%Y%m%d-%H%M%S") + f"-{os.getpid()}"
        manifest_path = str(Path(cache.root) / "runs" / f"run-{stamp}.jsonl")
    manifest = RunManifest(manifest_path) if manifest_path else None
    if manifest is not None:
        manifest.append(
            "run_start",
            experiments=wanted,
            scale=scale,
            seed=seed,
            replicate=replicate,
            jobs=jobs,
            system=system_name,
            out=out_dir,
            cache_dir=str(cache.root) if cache is not None else None,
            telemetry=telemetry_dir,
            resumed_from=args.resume,
        )

    # -- plan: every experiment becomes one or many jobs -------------------
    plans: list[tuple[str, SweepPlan]] = []
    kept_backend: list[str] = []
    for name in wanted:
        module, small_kwargs, paper_kwargs = EXPERIMENTS[name]
        kwargs = dict(small_kwargs if scale == "small" else paper_kwargs)
        if seed is not None and name != "table1":
            kwargs["seed"] = seed
        if system_name is not None:
            if _accepts_system(module):
                kwargs["system"] = system_name
            else:
                kept_backend.append(name)
        if replicate and name != "table1":
            base_seed = seed if seed is not None else DEFAULT_SEED
            kwargs.pop("seed", None)
            plan = replication_plan(
                name, module, range(base_seed, base_seed + replicate), kwargs
            )
        else:
            plan = plan_for(name, module, kwargs)
        plans.append((name, plan))
    all_specs = [spec for _, plan in plans for spec in plan.specs]
    if kept_backend:
        print(
            f"note: --system {system_name} not supported by "
            f"{', '.join(kept_backend)}; those keep their built-in backend",
            file=sys.stderr,
        )

    # -- execute -----------------------------------------------------------
    progress = ProgressReporter()
    scheduler = SweepScheduler(
        jobs=jobs,
        cache=cache,
        manifest=manifest,
        timeout_s=args.timeout,
        retries=args.retries,
        progress=progress,
        telemetry_dir=telemetry_dir,
    )
    wall_clock = WallClock()  # wall-time telemetry, not sim time
    try:
        outcomes = scheduler.run(all_specs)
    except KeyboardInterrupt:
        progress.close()
        if manifest is not None:
            manifest.append("run_end", interrupted=True)
            manifest.close()
            print(
                f"\ninterrupted — resume with: hirep-experiments --resume {manifest_path}",
                file=sys.stderr,
            )
        return 130
    wall_s = wall_clock.now / 1000.0
    progress.close()

    # -- assemble + render, in submission order ----------------------------
    status = 0
    offset = 0
    for name, plan in plans:
        outs = outcomes[offset : offset + len(plan.specs)]
        offset += len(plan.specs)
        elapsed = sum(o.elapsed_s for o in outs)
        failed = [o for o in outs if not o.ok]
        if failed:
            for o in failed:
                print(
                    f"   {o.spec.display()} FAILED after {o.attempts} "
                    f"attempt(s): {o.error}",
                    file=sys.stderr,
                )
            print(f"   [{name} FAILED at scale={scale}]\n", file=sys.stderr)
            status = 1
            continue
        assembled = plan.assemble([o.value() for o in outs])
        if replicate and name != "table1":
            print(assembled.render())
            print(f"   [{name} x{replicate} in {elapsed:.1f}s at scale={scale}]\n")
            continue
        result = assembled
        if name == "table1":
            EXPERIMENTS[name][0].main()
        elif name == "baselines":
            print(baseline_comparison.render_result(result))
        elif name == "ablations":
            print(_render_ablations(result))
        else:
            print(result.render())
            if args.plot and result.series:
                from repro.experiments.plotting import render_result_chart

                logy = name in ("fig5", "fig8")  # order-of-magnitude gaps
                print(render_result_chart(result, logy=logy))
        if out_dir:
            from repro.experiments.export import export_result

            for path in export_result(result, out_dir):
                print(f"   wrote {path}")
        print(f"   [{name} completed in {elapsed:.1f}s at scale={scale}]\n")

    # -- telemetry ---------------------------------------------------------
    if args.timings:
        print(summary_table(outcomes))
    print(summary_line(outcomes, wall_s=wall_s))
    if telemetry_dir:
        captured = sum(1 for o in outcomes if o.telemetry)
        print(f"telemetry: {captured} bundle(s) under {telemetry_dir}")
    if manifest is not None:
        manifest.append(
            "run_end",
            total=len(outcomes),
            cached=sum(1 for o in outcomes if o.cached),
            failed=sum(1 for o in outcomes if not o.ok),
            wall_s=round(wall_s, 3),
        )
        manifest.close()
        print(f"manifest: {manifest_path}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
