"""Graceful-degradation sweep: message loss × node crashes (extension).

Thin CLI wrapper around
:func:`repro.experiments.robustness.run_degradation` so the runner can
regenerate the degradation curves independently of the (slow) §4.2 attack
suite.  See that function for the measured claims.

This module also defines the sweep's orchestration :func:`plan`: each
loss × crash cell is an independent job
(:func:`repro.experiments.robustness.degradation_cell`), so
``hirep-experiments degradation --jobs N`` runs the grid across worker
processes and reassembles the exact serial result.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.robustness import (
    assemble_degradation,
    degradation_cells,
    run_degradation as run,
)

__all__ = ["run", "plan", "main"]


def plan(
    network_size: int = 120,
    seed: int = 2006,
    transactions: int = 40,
    loss_rates: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3),
    crash_fractions: tuple[float, ...] = (0.0, 0.15),
):
    """One orchestrator job per sweep cell; assembles the serial result."""
    from repro.exec.job import JobSpec
    from repro.exec.sweeps import SweepPlan

    loss_rates = tuple(loss_rates)
    crash_fractions = tuple(crash_fractions)
    specs = [
        JobSpec(
            module="repro.experiments.robustness",
            func="degradation_cell",
            kwargs={
                "network_size": network_size,
                "seed": seed,
                "transactions": transactions,
                "loss": loss,
                "crash_fraction": crash_fraction,
            },
            label=f"degradation[crash={crash_fraction:g},loss={loss:g}]",
        )
        for crash_fraction, loss in degradation_cells(loss_rates, crash_fractions)
    ]
    return SweepPlan(
        specs=specs,
        assemble=partial(
            assemble_degradation, loss_rates=loss_rates, crash_fractions=crash_fractions
        ),
    )


def main() -> str:
    result = run()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
