"""Graceful-degradation sweep: message loss × node crashes (extension).

Thin CLI wrapper around
:func:`repro.experiments.robustness.run_degradation` so the runner can
regenerate the degradation curves independently of the (slow) §4.2 attack
suite.  See that function for the measured claims.
"""

from __future__ import annotations

from repro.experiments.robustness import run_degradation as run

__all__ = ["run", "main"]


def main() -> str:
    result = run()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
