"""Terminal plotting for experiment results.

Renders an :class:`~repro.experiments.common.ExperimentResult` as an ASCII
line chart so ``hirep-experiments fig5 --plot`` shows the figure's shape
directly in the terminal, matplotlib-free (the execution environment is
offline).  One character glyph per series, nearest-cell rasterization,
labelled y extremes and x range.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, Series

__all__ = ["ascii_chart", "render_result_chart"]

_GLYPHS = "ox+*#@%&"


def ascii_chart(
    series: list[Series],
    *,
    width: int = 70,
    height: int = 18,
    y_label: str = "",
    x_label: str = "",
    logy: bool = False,
) -> str:
    """Rasterize series into a text grid.

    Series may have different x grids; each is interpolated onto the shared
    x range.  ``logy`` plots log10(y) (useful for Fig. 5/8 where voting and
    hiREP differ by an order of magnitude).
    """
    drawable = [s for s in series if len(s.x) > 0]
    if not drawable:
        return "(no data)"
    xs_all = np.concatenate([np.asarray(s.x, dtype=float) for s in drawable])
    ys_all = np.concatenate([np.asarray(s.y, dtype=float) for s in drawable])
    finite = np.isfinite(ys_all)
    if logy:
        finite &= ys_all > 0
    if not finite.any():
        return "(no finite data)"
    x_lo, x_hi = float(xs_all.min()), float(xs_all.max())
    ys_for_range = np.log10(ys_all[finite]) if logy else ys_all[finite]
    y_lo, y_hi = float(ys_for_range.min()), float(ys_for_range.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for glyph, s in zip(_GLYPHS, drawable):
        xv = np.asarray(s.x, dtype=float)
        yv = np.asarray(s.y, dtype=float)
        ok = np.isfinite(yv)
        if logy:
            ok &= yv > 0
        xv, yv = xv[ok], yv[ok]
        if xv.size == 0:
            continue
        if logy:
            yv = np.log10(yv)
        # Interpolate onto one sample per column for continuous lines.
        cols = np.arange(width)
        col_x = x_lo + (x_hi - x_lo) * cols / (width - 1)
        col_y = np.interp(col_x, xv, yv, left=np.nan, right=np.nan)
        for col, y in zip(cols, col_y):
            if not np.isfinite(y):
                continue
            row = int(round((y_hi - y) / (y_hi - y_lo) * (height - 1)))
            row = min(max(row, 0), height - 1)
            grid[row][col] = glyph

    top_label = f"{10**y_hi:.4g}" if logy else f"{y_hi:.4g}"
    bot_label = f"{10**y_lo:.4g}" if logy else f"{y_lo:.4g}"
    pad = max(len(top_label), len(bot_label))
    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(pad)
        elif i == height - 1:
            prefix = bot_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    x_line = f"{x_lo:.4g}".ljust(width - 8) + f"{x_hi:.4g}"
    lines.append(" " * pad + "  " + x_line)
    legend = "   ".join(
        f"{glyph}={s.name}" for glyph, s in zip(_GLYPHS, drawable)
    )
    suffix = "  [log y]" if logy else ""
    lines.append(f"{'y: ' + y_label if y_label else ''}{suffix}")
    lines.append(f"x: {x_label}   {legend}" if x_label else legend)
    return "\n".join(lines)


def render_result_chart(result: ExperimentResult, *, logy: bool = False) -> str:
    """Chart an experiment result with its own axis labels."""
    header = f"== {result.experiment_id}: {result.title} =="
    chart = ascii_chart(
        result.series,
        y_label=result.y_label,
        x_label=result.x_label,
        logy=logy,
    )
    return f"{header}\n{chart}"
