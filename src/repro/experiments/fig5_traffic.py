"""Fig. 5 — trust-query traffic: hiREP vs pure voting.

Paper: cumulative messages (×10²) against transactions, with voting run in
networks of average degree 2, 3 and 4 and a single hiREP curve (its traffic
does not depend on the overlay degree).  Expected shape:

* voting grows with network density (voting-4 > voting-3 > voting-2);
* hiREP is flat per-transaction and "less than ½ of that produced in pure
  voting" even against voting-2.
"""

from __future__ import annotations

import numpy as np

from repro.core.registry import build_system
from repro.experiments.common import ExperimentResult, Series
from repro.workloads.scenarios import fig5_config

__all__ = ["run", "main", "VOTING_DEGREES"]

VOTING_DEGREES = (2.0, 3.0, 4.0)


def run(
    network_size: int = 1000,
    transactions: int = 300,
    seed: int = 2006,
    system: str = "hirep",
) -> ExperimentResult:
    """``system`` names the registry backend for the hiREP curve
    (``hirep`` or ``hirep-array``); the voting baselines are unaffected."""
    result = ExperimentResult(
        experiment_id="fig5",
        title="Trust query traffic cost of hiREP vs pure voting",
        x_label="transactions",
        y_label="cumulative messages (x10^2)",
    )
    x = list(range(1, transactions + 1))

    for degree in VOTING_DEGREES:
        cfg = fig5_config(degree, network_size=network_size, seed=seed)
        voting = build_system("voting", cfg)
        voting.run(transactions)
        cumulative = voting.counter.snapshots / 100.0
        result.series.append(
            Series(name=f"voting-{int(degree)}", x=x, y=[float(v) for v in cumulative])
        )

    cfg = fig5_config(4.0, network_size=network_size, seed=seed)
    hirep = build_system(system, cfg)
    hirep.bootstrap()
    hirep.reset_metrics()
    hirep.run(transactions)
    # The paper counts "messages induced in the trust query process":
    # query + response + report traffic (all onion hops included).
    trust = np.asarray(
        [o.trust_messages for o in hirep.outcomes], dtype=np.float64
    ).cumsum() / 100.0
    result.series.append(Series(name="hirep", x=x, y=[float(v) for v in trust]))

    v2 = result.get("voting-2").final()
    hp = result.get("hirep").final()
    result.scalars["hirep_over_voting2"] = hp / v2 if v2 else float("nan")
    result.scalars["hirep_msgs_per_tx"] = hp * 100.0 / transactions
    result.note(
        "paper claim: hirep < 1/2 of voting-2 — "
        + ("HOLDS" if hp < 0.5 * v2 else "VIOLATED")
    )
    return result


def main() -> str:
    result = run()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
