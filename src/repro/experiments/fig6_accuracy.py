"""Fig. 6 — trust accuracy (MSE) vs transactions, 10% malicious.

Paper: voting is flat; hirep-θ (θ ∈ {0.4, 0.6, 0.8}) starts no worse than
voting and converges to a much lower MSE "after a training process (about
100 transactions)", with higher θ converging faster.

The training effect lives in one requestor's trusted-agent list, so the
workload fixes the requestor (see ``repro.workloads.transactions``).
"""

from __future__ import annotations

from repro.core.registry import build_system
from repro.experiments.common import ExperimentResult, Series
from repro.workloads.scenarios import fig6_config

__all__ = ["run", "main", "THRESHOLDS"]

#: hirep-4 / hirep-6 / hirep-8.
THRESHOLDS = (0.4, 0.6, 0.8)


def run(
    network_size: int = 1000,
    transactions: int = 400,
    seed: int = 2006,
    window: int = 50,
    requestor: int = 0,
    system: str = "hirep",
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig6",
        title="Trust accuracy vs transactions (10% malicious)",
        x_label="transactions",
        y_label="windowed MSE of trust value",
    )
    x = list(range(1, transactions + 1))

    cfg = fig6_config(0.4, network_size=network_size, seed=seed)
    voting = build_system("voting", cfg)
    voting.mse.window = window
    voting.run(transactions, requestor=requestor)
    result.series.append(
        Series(name="voting", x=x, y=[float(v) for v in voting.mse.windowed_mse()])
    )

    for theta in THRESHOLDS:
        cfg = fig6_config(theta, network_size=network_size, seed=seed)
        hirep = build_system(system, cfg)
        hirep.mse.window = window
        hirep.bootstrap()
        hirep.reset_metrics()
        hirep.run(transactions, requestor=requestor)
        name = f"hirep-{int(theta * 10)}"
        result.series.append(
            Series(name=name, x=x, y=[float(v) for v in hirep.mse.windowed_mse()])
        )
        result.scalars[f"{name}_tail_mse"] = hirep.mse.tail_mse()
        # Convergence: where the windowed MSE settles into its final band
        # (the paper's "after a training process of about 100 transactions").
        from repro.analysis.convergence import convergence_point

        report = convergence_point(hirep.mse.windowed_mse())
        result.scalars[f"{name}_convergence_tx"] = (
            float(report.index) if report.converged else float("nan")
        )

    result.scalars["voting_tail_mse"] = voting.mse.tail_mse()
    tail_48 = result.scalars["hirep-4_tail_mse"]
    result.note(
        "paper claim: trained hiREP beats voting — "
        + ("HOLDS" if tail_48 < result.scalars["voting_tail_mse"] else "VIOLATED")
    )
    return result


def main() -> str:
    result = run()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
