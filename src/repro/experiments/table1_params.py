"""Table 1 — simulation parameters.

Regenerates the parameter table with provenance flags for the values that
had to be reconstructed from prose (the scan of the original is garbled;
see DESIGN.md for the reconstruction rationale).
"""

from __future__ import annotations

from repro.core.config import DEFAULT_CONFIG, TABLE1_ROWS
from repro.experiments.common import ExperimentResult, format_table

__all__ = ["run", "main"]


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table1",
        title="Simulation parameters",
        x_label="-",
        y_label="-",
    )
    # Cross-check the printed rows against the live defaults.
    cfg = DEFAULT_CONFIG
    live = {
        "Network size": str(cfg.network_size),
        "Neighbors per node": str(int(cfg.avg_neighbors)),
        "Good rating": f"[{cfg.good_rating[0]}, {cfg.good_rating[1]}]",
        "Bad rating": f"[{cfg.bad_rating[0]}, {cfg.bad_rating[1]}]",
        "Relays per onion": str(cfg.onion_relays),
        "Trusted agents": str(cfg.trusted_agents),
        "Poor performance agents": f"{cfg.poor_agent_fraction:.0%}",
        "TTL": str(cfg.ttl),
        "Token number": str(cfg.tokens),
    }
    for name, default, _desc, _prov in TABLE1_ROWS:
        if live.get(name) != default:
            result.note(f"default drift: {name} table says {default}, config says {live.get(name)}")
    result.scalars["rows"] = len(TABLE1_ROWS)
    return result


def main() -> str:
    result = run()
    text = format_table(
        ["Name", "Default", "Description", "Provenance"],
        TABLE1_ROWS,
        title="Table 1: simulation parameters",
    )
    if result.notes:
        text += "\n" + "\n".join(f"  ! {n}" for n in result.notes)
    print(text)
    return text


if __name__ == "__main__":
    main()
