"""§4.1 — the analytic traffic bound, verified against measurement.

The paper derives that one transaction's trust-value distribution costs
``2·c·(o_i + o_j)`` messages, where ``c`` is the number of trusted agents
consulted and ``o_i``/``o_j`` the onion lengths of agent and reporter.  In
this implementation both onions have the configured relay count ``o`` and a
delivery through an ``o``-relay onion takes ``o + 1`` hops, so the exact
count is

    c · (o+1)   (requests)  +  c · (o+1)  (responses)  +  c · (o+1) (reports)
    = 3·c·(o+1)

against the paper's approximation ``2c(o_i + o_j) = 4·c·o``.  The
experiment sweeps (c, o), measures actual messages per transaction, and
reports both forms — the point being that traffic is **O(c)**, independent
of network size and degree.
"""

from __future__ import annotations

import numpy as np

from repro.core.registry import build_system
from repro.experiments.common import ExperimentResult, Series
from repro.workloads.scenarios import default_config

__all__ = ["run", "main", "exact_messages_per_tx", "paper_bound_per_tx"]


def exact_messages_per_tx(c: int, o: int) -> int:
    """Exact per-transaction trust traffic in this implementation."""
    return 3 * c * (o + 1)


def paper_bound_per_tx(c: int, o_i: int, o_j: int) -> int:
    """The paper's §4.1 closed form, 2c(o_i + o_j)."""
    return 2 * c * (o_i + o_j)


def run(
    network_size: int = 300,
    transactions: int = 40,
    seed: int = 2006,
    agents_counts: tuple[int, ...] = (2, 5, 10),
    relay_counts: tuple[int, ...] = (3, 5, 7),
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="analysis41",
        title="Traffic bound: measured vs 2c(o_i+o_j)",
        x_label="trusted agents consulted (c)",
        y_label="messages per transaction",
    )
    for o in relay_counts:
        measured: list[float] = []
        exact: list[float] = []
        paper: list[float] = []
        for c in agents_counts:
            cfg = default_config(network_size=network_size, seed=seed).with_(
                agents_queried=c,
                onion_relays=o,
                trusted_agents=max(c * 3, 15),
                refill_threshold=max(c, 5),
            )
            system = build_system("hirep", cfg)
            system.bootstrap()
            system.reset_metrics()
            system.run(transactions, requestor=0)
            per_tx = float(
                np.mean([out.trust_messages for out in system.outcomes])
            )
            measured.append(per_tx)
            exact.append(float(exact_messages_per_tx(c, o)))
            paper.append(float(paper_bound_per_tx(c, o, o)))
        result.series.append(
            Series(name=f"measured(o={o})", x=list(agents_counts), y=measured)
        )
        result.series.append(
            Series(name=f"exact(o={o})", x=list(agents_counts), y=exact)
        )
        result.series.append(
            Series(name=f"paper(o={o})", x=list(agents_counts), y=paper)
        )
    # O(c) check: per-tx traffic under the exact model is linear in c.
    holds = all(
        abs(m - e) <= 0.15 * e
        for s_m, s_e in zip(result.series[0::3], result.series[1::3])
        for m, e in zip(s_m.y, s_e.y)
    )
    result.note(
        "measured traffic matches 3c(o+1) within 15% and is O(c) — "
        + ("HOLDS" if holds else "VIOLATED")
    )
    return result


def main() -> str:
    result = run()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
