"""Shared experiment machinery: result containers and text rendering.

Every experiment module exposes ``run(**knobs) -> ExperimentResult`` plus a
``main()`` that prints the result the way the paper's figure/table reads
(series of points, or labelled rows).  Benchmarks and tests call ``run``
directly; the CLI runner calls ``main``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Series", "ExperimentResult", "format_table"]


@dataclass
class Series:
    """One named curve of an experiment figure."""

    name: str
    x: list[float]
    y: list[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.name!r}: len(x)={len(self.x)} != len(y)={len(self.y)}"
            )

    def final(self) -> float:
        """Last y value (e.g. cumulative total at the end of the run)."""
        return self.y[-1]

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.x, dtype=np.float64), np.asarray(self.y, dtype=np.float64)


@dataclass
class ExperimentResult:
    """The regenerated figure/table: series plus free-form findings."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    scalars: dict[str, float] = field(default_factory=dict)

    def get(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"no series named {name!r} in {self.experiment_id}")

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self, points: int = 11) -> str:
        """Plain-text rendering: a column per series, downsampled."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(f"   x = {self.x_label};  y = {self.y_label}")
        if self.series:
            # Use the densest series' x grid for display.
            ref = max(self.series, key=lambda s: len(s.x))
            idx = np.unique(
                np.linspace(0, len(ref.x) - 1, min(points, len(ref.x)))
                .round()
                .astype(int)
            )
            header = ["x".rjust(10)] + [s.name.rjust(14) for s in self.series]
            lines.append(" ".join(header))
            for i in idx:
                xv = ref.x[int(i)]
                row = [f"{xv:10.4g}"]
                for s in self.series:
                    yv = _value_at(s, xv)
                    row.append(f"{yv:14.6g}" if yv == yv else " " * 13 + "-")
                lines.append(" ".join(row))
        for key, value in self.scalars.items():
            lines.append(f"   {key} = {value:.6g}")
        for note in self.notes:
            lines.append(f"   note: {note}")
        return "\n".join(lines)


def _value_at(series: Series, x: float) -> float:
    """y at the largest series x not exceeding ``x`` (NaN before start)."""
    xs, ys = series.as_arrays()
    pos = int(np.searchsorted(xs, x, side="right")) - 1
    if pos < 0:
        return float("nan")
    return float(ys[pos])


def format_table(
    headers: list[str], rows: list[tuple], title: str | None = None
) -> str:
    """Fixed-width text table used by the table1 and robustness outputs."""
    cols = len(headers)
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in cells), default=0))
        for i in range(cols)
    ]
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
