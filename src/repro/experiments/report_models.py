"""Extension: accuracy with report-driven agents (no quality oracle).

The paper's simulation grants agents an innate evaluation quality (§5.2) —
good agents "just know".  §4.2.3 sketches the deployed story instead: "with
the authentic transaction reports, reputation agents can decide the trust
value of the peer using the next level computation model".  This experiment
drops the oracle entirely: every agent starts ignorant and computes trust
values only from the authenticated reports it accumulates, so accuracy must
be *earned* through the report channel the protocol secures.

Compared models:

* ``report-average`` — running mean of reports per subject;
* ``report-ewma``    — exponentially weighted (recency-biased) reports;
* ``oracle``         — the paper's quality-driven model, as the ceiling.

Expected shape: both report-driven curves start at the prior's MSE (0.25)
— far worse than the oracle — and descend as the requestor's reports teach
its agents.  On a small, repeatedly-visited provider pool they eventually
*beat* the oracle: reports carry exact observed outcomes while the oracle
model draws noisy ratings from [0.6, 1] / [0, 0.4], so accumulated
evidence out-resolves innate-but-noisy judgement.
"""

from __future__ import annotations

from repro.core.registry import build_system
from repro.core.trust_models import (
    EWMAReportModel,
    ReportAverageModel,
)
from repro.experiments.common import ExperimentResult, Series
from repro.workloads.scenarios import default_config

__all__ = ["run", "main"]

MODEL_FACTORIES = {
    "report-average": lambda good, rng: ReportAverageModel(),
    "report-ewma": lambda good, rng: EWMAReportModel(alpha=0.3),
    "oracle": None,  # default quality-driven
}


def run(
    network_size: int = 250,
    transactions: int = 400,
    seed: int = 2006,
    window: int = 60,
    providers: int = 12,
) -> ExperimentResult:
    """Fixed requestor, small provider pool (so reports accumulate)."""
    result = ExperimentResult(
        experiment_id="report_models",
        title="Accuracy with report-driven agents (no quality oracle)",
        x_label="transactions",
        y_label="windowed MSE of trust value",
    )
    cfg = default_config(network_size=network_size, seed=seed).with_(
        trusted_agents=15,
        refill_threshold=10,
        agents_queried=6,
        onion_relays=2,
        poor_agent_fraction=0.0,  # no oracle ⇒ no innate quality split
    )
    for name, factory in MODEL_FACTORIES.items():
        system = build_system("hirep", cfg, model_factory=factory)
        system.mse.window = window
        system.bootstrap()
        system.reset_metrics()
        # Cycle a small provider pool so each provider accrues reports.
        pool = [ip for ip in range(1, providers + 1)]
        for i in range(transactions):
            system.run_transaction(requestor=0, provider=pool[i % len(pool)])
        series = system.mse.windowed_mse()
        result.series.append(
            Series(name=name, x=list(range(1, len(series) + 1)),
                   y=[float(v) for v in series])
        )
        result.scalars[f"{name}_tail_mse"] = system.mse.tail_mse()
        result.scalars[f"{name}_early_mse"] = float(series[min(20, len(series) - 1)])

    for name in ("report-average", "report-ewma"):
        early = result.scalars[f"{name}_early_mse"]
        tail = result.scalars[f"{name}_tail_mse"]
        result.note(
            f"{name}: reports teach ignorant agents (tail << early MSE) — "
            + ("HOLDS" if tail < 0.5 * early else "VIOLATED")
        )
    result.note(
        "untrained report agents start far worse than the oracle — "
        + (
            "HOLDS"
            if result.scalars["report-average_early_mse"]
            > 2 * result.scalars["oracle_early_mse"]
            else "VIOLATED"
        )
    )
    result.note(
        "accumulated exact reports out-resolve the noisy oracle on repeat "
        "providers — "
        + (
            "HOLDS"
            if result.scalars["report-average_tail_mse"]
            < result.scalars["oracle_tail_mse"]
            else "VIOLATED"
        )
    )
    return result


def main() -> str:
    result = run()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
