"""Design-choice ablations (extension; the choices DESIGN.md calls out).

Each ablation isolates one mechanism:

* ``tokens``   — discovery reply volume vs token budget (bounded replies are
  the point of the token scheme);
* ``ttl``      — discovery reach vs TTL;
* ``alpha``    — expertise EWMA responsiveness: how many transactions until
  a poor agent is evicted;
* ``theta``    — eviction threshold vs trained accuracy and convergence;
* ``merge``    — the paper's max-rank recommendation merge vs a mean merge
  under a bad-mouthing attack (max must resist, mean must suffer);
* ``backup``   — churn tolerance with and without the backup agent cache;
* ``onion``    — response time and traffic vs onion length (anonymity cost).
"""

from __future__ import annotations

import numpy as np

from repro.core.discovery import discover_agent_lists
from repro.core.messages import AgentListEntry
from repro.core.ranking import rank_within_list, select_agents
from repro.core.registry import build_system
from repro.core.system import HiRepSystem
from repro.experiments.common import ExperimentResult, Series
from repro.net.churn import ChurnModel
from repro.workloads.scenarios import default_config

__all__ = ["run", "plan", "ablation_job", "assemble_ablations", "ABLATIONS", "main"]


def _cfg(network_size: int, seed: int, **kw):
    base = default_config(network_size=network_size, seed=seed).with_(
        trusted_agents=20,
        refill_threshold=12,
        agents_queried=8,
        tokens=8,
        onion_relays=3,
    )
    return base.with_(**kw)


def _trained_mse(system: HiRepSystem, transactions: int = 150) -> float:
    system.bootstrap()
    system.reset_metrics()
    system.run(transactions, requestor=0)
    return system.mse.tail_mse(40)


def ablate_tokens(network_size: int, seed: int) -> Series:
    """Discovery replies are bounded by the token budget, not the overlay."""
    xs, ys = [], []
    for tokens in (2, 4, 8, 16):
        system = build_system("hirep", _cfg(network_size, seed, tokens=tokens))
        outcome = discover_agent_lists(
            system.topology,
            0,
            tokens,
            system.config.ttl,
            rng=np.random.default_rng(seed),
            get_list=lambda n: None,
            get_self_entry=system.self_entry_for,
            online=system.network.is_online,
        )
        xs.append(float(tokens))
        ys.append(float(len(outcome.replies)))
    return Series(name="discovery_replies_vs_tokens", x=xs, y=ys)


def ablate_ttl(network_size: int, seed: int) -> Series:
    """Discovery reach (distinct repliers) vs TTL at a fixed token budget."""
    xs, ys = [], []
    system = build_system("hirep", _cfg(network_size, seed))
    for ttl in (1, 2, 3, 5):
        outcome = discover_agent_lists(
            system.topology,
            0,
            16,
            ttl,
            rng=np.random.default_rng(seed),
            get_list=lambda n: None,
            get_self_entry=system.self_entry_for,
            online=system.network.is_online,
        )
        xs.append(float(ttl))
        ys.append(float(len(outcome.replies)))
    return Series(name="discovery_replies_vs_ttl", x=xs, y=ys)


def ablate_alpha(network_size: int, seed: int) -> Series:
    """Transactions until a poor agent falls below θ=0.4, per α."""
    from repro.core.expertise import ExpertiseTracker

    xs, ys = [], []
    for alpha in (0.1, 0.3, 0.5, 0.7, 0.9):
        tracker = ExpertiseTracker(alpha=alpha, value=1.0)
        steps = tracker.steps_to_evict(0.4)
        xs.append(alpha)
        ys.append(float(steps))
    return Series(name="evict_steps_vs_alpha", x=xs, y=ys)


def ablate_theta(network_size: int, seed: int) -> Series:
    """Trained MSE per eviction threshold."""
    xs, ys = [], []
    for theta in (0.2, 0.4, 0.6, 0.8):
        system = build_system("hirep", _cfg(network_size, seed, eviction_threshold=theta))
        xs.append(theta)
        ys.append(_trained_mse(system))
    return Series(name="trained_mse_vs_theta", x=xs, y=ys)


def ablate_merge(network_size: int, seed: int) -> tuple[Series, str]:
    """Max-rank vs mean-rank merge under bad-mouthing.

    A single honest list recommends the good agent at top weight; many
    attacker lists bad-mouth it with weight 0.  Max-rank keeps it on top;
    mean-rank buries it.
    """
    system = build_system("hirep", _cfg(network_size, seed))
    good_ip = system.good_agent_ips()[0]
    poor_ips = system.poor_agent_ips()[:3]
    good = system.self_entry_for(good_ip)
    poor = [system.self_entry_for(ip) for ip in poor_ips]
    poor = [p for p in poor if p is not None]
    assert good is not None and poor

    def entry_with_weight(entry: AgentListEntry, weight: float) -> AgentListEntry:
        return AgentListEntry(
            weight=weight,
            agent_node_id=entry.agent_node_id,
            agent_onion=entry.agent_onion,
            agent_sp=entry.agent_sp,
            agent_ip=entry.agent_ip,
        )

    honest_list = [entry_with_weight(good, 1.0)] + [
        entry_with_weight(p, 0.2) for p in poor
    ]
    attack_list = [entry_with_weight(good, 0.0)] + [
        entry_with_weight(p, 1.0) for p in poor
    ]
    lists = [honest_list] + [attack_list] * 10
    wanted = 2
    ranks = [rank_within_list(lst, wanted) for lst in lists]
    candidates = {e.agent_node_id: e for lst in lists for e in lst}
    rng = np.random.default_rng(seed)
    picked_max = select_agents(list(candidates.values()), ranks, wanted, rng, merge="max")
    picked_mean = select_agents(list(candidates.values()), ranks, wanted, rng, merge="mean")
    good_in_max = any(e.agent_node_id == good.agent_node_id for e in picked_max)
    good_in_mean = any(e.agent_node_id == good.agent_node_id for e in picked_mean)
    series = Series(
        name="good_agent_selected",
        x=[0.0, 1.0],  # 0 = max merge, 1 = mean merge
        y=[float(good_in_max), float(good_in_mean)],
    )
    verdict = (
        "max-rank merge resists bad-mouthing — "
        + ("HOLDS" if good_in_max and not good_in_mean else
           ("HOLDS (weakly: mean also survived)" if good_in_max else "VIOLATED"))
    )
    return series, verdict


def ablate_backup(network_size: int, seed: int) -> tuple[Series, str]:
    """Churn tolerance with vs without the backup agent cache."""
    results = []
    for backup in (0, 20):
        cfg = _cfg(network_size, seed, backup_cache_size=backup)
        churn = ChurnModel(leave_prob=0.05, rejoin_prob=0.4, protected={0})
        system = build_system("hirep", cfg, churn=churn)
        system.bootstrap()
        system.reset_metrics()
        system.run(150, requestor=0)
        discovery = system.counter.by_category.get("agent_discovery", 0)
        results.append((backup, system.mse.tail_mse(40), float(discovery)))
    series = Series(
        name="discovery_msgs_vs_backup",
        x=[float(r[0]) for r in results],
        y=[r[2] for r in results],
    )
    verdict = (
        "backup cache reduces rediscovery traffic under churn — "
        + ("HOLDS" if results[1][2] <= results[0][2] else "VIOLATED")
    )
    return series, verdict


def ablate_onion(network_size: int, seed: int) -> Series:
    """Per-transaction trust traffic vs onion length (anonymity's price)."""
    xs, ys = [], []
    for relays in (0, 2, 4, 8):
        system = build_system("hirep", _cfg(network_size, seed, onion_relays=relays))
        system.bootstrap()
        system.reset_metrics()
        system.run(30, requestor=0)
        per_tx = float(np.mean([o.trust_messages for o in system.outcomes]))
        xs.append(float(relays))
        ys.append(per_tx)
    return Series(name="trust_msgs_vs_onion_len", x=xs, y=ys)


#: ablation name -> measuring function, in the figure's display order.
#: Each is independent (own systems, own seed-derived RNGs), which is
#: what lets the orchestrator run them as sibling jobs.
ABLATIONS = {
    "tokens": ablate_tokens,
    "ttl": ablate_ttl,
    "alpha": ablate_alpha,
    "theta": ablate_theta,
    "merge": ablate_merge,
    "backup": ablate_backup,
    "onion": ablate_onion,
}


def ablation_job(kind: str, network_size: int = 250, seed: int = 2006) -> dict:
    """Run one ablation and return a JSON-able ``{"series", "note"}``.

    The picklable per-job entry point: worker processes call this by
    import path, so the payload must survive a JSON round-trip.
    """
    measured = ABLATIONS[kind](network_size, seed)
    note = None
    if isinstance(measured, tuple):
        measured, note = measured
    return {
        "series": {"name": measured.name, "x": list(map(float, measured.x)),
                   "y": list(map(float, measured.y))},
        "note": note,
    }


def assemble_ablations(values: list[dict]) -> ExperimentResult:
    """Fold per-ablation payloads (in ``ABLATIONS`` order) into the figure."""
    result = ExperimentResult(
        experiment_id="ablations",
        title="Design-choice ablations",
        x_label="(per series)",
        y_label="(per series)",
    )
    for value in values:
        s = value["series"]
        result.series.append(Series(name=s["name"], x=list(s["x"]), y=list(s["y"])))
        if s["name"] == "discovery_replies_vs_ttl":
            result.note(
                "discovery reach is non-decreasing in TTL — "
                + ("HOLDS" if s["y"] == sorted(s["y"]) else "VIOLATED")
            )
        if value["note"]:
            result.note(value["note"])
    onion = result.get("trust_msgs_vs_onion_len")
    result.note(
        "trust traffic grows linearly with onion length — "
        + ("HOLDS" if onion.y == sorted(onion.y) else "VIOLATED")
    )
    return result


def plan(network_size: int = 250, seed: int = 2006):
    """One orchestrator job per ablation; assembles the serial result."""
    from repro.exec.job import JobSpec
    from repro.exec.sweeps import SweepPlan

    specs = [
        JobSpec(
            module=__name__,
            func="ablation_job",
            kwargs={"kind": kind, "network_size": network_size, "seed": seed},
            label=f"ablations[{kind}]",
        )
        for kind in ABLATIONS
    ]
    return SweepPlan(specs=specs, assemble=assemble_ablations)


def run(network_size: int = 250, seed: int = 2006, executor=None) -> ExperimentResult:
    if executor is None:
        values = [
            ablation_job(kind, network_size, seed) for kind in ABLATIONS
        ]
    else:
        futures = [
            executor.submit(ablation_job, kind, network_size, seed)
            for kind in ABLATIONS
        ]
        values = [f.result() for f in futures]
    return assemble_ablations(values)


def main() -> str:
    result = run()
    # The shared render() assumes a common x axis; ablations print per-series.
    lines = [f"== {result.experiment_id}: {result.title} =="]
    for series in result.series:
        pairs = ", ".join(f"{x:g}->{y:.4g}" for x, y in zip(series.x, series.y))
        lines.append(f"  {series.name}: {pairs}")
    for note in result.notes:
        lines.append(f"  note: {note}")
    text = "\n".join(lines)
    print(text)
    return text


if __name__ == "__main__":
    main()
