"""§4.2.4 — can a global eavesdropper find the good agents? (extension)

Runs the same workload twice, once with onions disabled (o = 0, every
trust message goes straight to its agent) and once with the configured
onion length, while a global passive wiretap counts per-node traffic.  The
attacker then names the top-k traffic sinks as its DoS target list; we
report its precision against the truly most-popular agents.

Expected shape (the paper's §4.2.4 argument): near-perfect precision
without onions, sharply degraded with them — the relays soak up and
randomize the observable flow.
"""

from __future__ import annotations

from repro.attacks.traffic_analysis import (
    TrafficObserver,
    top_k_precision,
    true_popular_agents,
)
from repro.core.registry import build_system
from repro.experiments.common import ExperimentResult, Series
from repro.workloads.scenarios import default_config

__all__ = ["run", "main"]


def _measure(onion_relays: int, network_size: int, transactions: int, seed: int, k: int) -> float:
    cfg = default_config(network_size=network_size, seed=seed).with_(
        onion_relays=onion_relays,
        trusted_agents=15,
        refill_threshold=10,
        agents_queried=6,
        tokens=8,
    )
    system = build_system("hirep", cfg)
    system.bootstrap()
    observer = TrafficObserver().attach(system)
    # Many different requestors, so agent popularity (not requestor
    # identity) is what shapes the traffic.
    for requestor in range(0, 20):
        system.run(transactions // 20, requestor=requestor)
    actual = true_popular_agents(system, k)
    suspected = observer.suspected_agents(k)
    return top_k_precision(suspected, actual)


def run(
    network_size: int = 250,
    transactions: int = 200,
    seed: int = 2006,
    k: int = 10,
    relay_counts: tuple[int, ...] = (0, 2, 5, 8),
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="traffic_analysis",
        title="Traffic-analysis attacker precision vs onion length",
        x_label="onion relays",
        y_label=f"attacker top-{k} precision",
    )
    xs, ys = [], []
    for relays in relay_counts:
        precision = _measure(relays, network_size, transactions, seed, k)
        xs.append(float(relays))
        ys.append(precision)
    result.series.append(Series(name="precision", x=xs, y=ys))
    result.scalars["precision_no_onion"] = ys[0]
    result.scalars["precision_full_onion"] = ys[-1]
    result.note(
        "paper §4.2.4: onions hide the high-performance agents from traffic "
        "analysis — "
        + ("HOLDS" if ys[-1] <= 0.6 * ys[0] else "VIOLATED")
    )
    result.note(
        "without onions the agents are exposed — "
        + ("HOLDS" if ys[0] >= 0.5 else "VIOLATED")
    )
    return result


def main() -> str:
    result = run()
    text = result.render()
    print(text)
    return text


if __name__ == "__main__":
    main()
