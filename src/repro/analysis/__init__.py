"""Post-run analysis: convergence detection, traffic breakdowns."""

from repro.analysis.convergence import (
    ConvergenceReport,
    compare_convergence,
    convergence_point,
)
from repro.analysis.traffic import PHASE_OF_CATEGORY, TrafficBreakdown, breakdown

__all__ = [
    "ConvergenceReport",
    "compare_convergence",
    "convergence_point",
    "PHASE_OF_CATEGORY",
    "TrafficBreakdown",
    "breakdown",
]
