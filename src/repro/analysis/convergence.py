"""Convergence detection for accuracy series.

Fig. 6's narrative needs a number: *when* has the system trained?  The
paper eyeballs "about 100 transactions"; this module makes it a measurement
— the first index after which a series stays within a band of its final
level — plus a summary comparing multiple systems' convergence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["ConvergenceReport", "convergence_point", "compare_convergence"]


@dataclass(frozen=True)
class ConvergenceReport:
    """Where and to what a series converged."""

    converged: bool
    index: int               # first index of sustained convergence (-1 if never)
    final_level: float       # mean over the settle window
    band: float              # tolerance used

    def __str__(self) -> str:
        if not self.converged:
            return f"not converged (final level {self.final_level:.4g})"
        return f"converged at index {self.index} to {self.final_level:.4g} (±{self.band:.4g})"


def convergence_point(
    series: np.ndarray | list[float],
    *,
    settle_fraction: float = 0.2,
    band_fraction: float = 0.25,
    min_band: float = 0.01,
) -> ConvergenceReport:
    """First index after which the series stays inside the final band.

    Parameters
    ----------
    settle_fraction:
        The trailing fraction of the series used to define the final level.
    band_fraction:
        Band half-width as a fraction of the final level.
    min_band:
        Absolute floor on the band (handles final levels near zero).
    """
    arr = np.asarray(series, dtype=np.float64)
    if arr.size < 5:
        raise ConfigError(f"series too short to assess convergence ({arr.size})")
    if not 0.0 < settle_fraction < 1.0:
        raise ConfigError(f"settle_fraction must be in (0,1), got {settle_fraction}")
    settle = max(2, int(arr.size * settle_fraction))
    final_level = float(np.mean(arr[-settle:]))
    band = max(abs(final_level) * band_fraction, min_band)
    inside = np.abs(arr - final_level) <= band
    # Find the first index from which `inside` holds for the whole tail.
    outside_idx = np.nonzero(~inside)[0]
    first = 0 if outside_idx.size == 0 else int(outside_idx[-1]) + 1
    if first >= arr.size:
        return ConvergenceReport(False, -1, final_level, band)
    return ConvergenceReport(True, first, final_level, band)


def compare_convergence(
    series_by_name: dict[str, np.ndarray | list[float]],
    **kwargs,
) -> dict[str, ConvergenceReport]:
    """Convergence reports for several systems at once."""
    return {
        name: convergence_point(series, **kwargs)
        for name, series in series_by_name.items()
    }
