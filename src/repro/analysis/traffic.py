"""Traffic breakdown reports.

Turns a :class:`~repro.sim.metrics.MessageCounter` into the kind of table
an evaluation section needs: messages and share per protocol phase, plus a
phase grouping that maps raw categories onto the paper's vocabulary
(trust distribution / discovery / membership / key exchange).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.metrics import MessageCounter

__all__ = ["TrafficBreakdown", "breakdown", "PHASE_OF_CATEGORY"]

#: Raw category -> paper-level phase.
PHASE_OF_CATEGORY = {
    "trust_query": "trust distribution",
    "trust_response": "trust distribution",
    "transaction_report": "trust distribution",
    "agent_discovery": "agent discovery",
    "agent_discovery_reply": "agent discovery",
    "key_exchange": "key exchange",
    "flood_query": "polling",
    "flood_response": "polling",
    "gnutella_ping": "membership",
    "gnutella_pong": "membership",
    "gnutella_connect": "membership",
    "dht_route": "dht",
    "dht_put": "dht",
    "dht_get": "dht",
    "control": "control",
}


@dataclass(frozen=True)
class TrafficBreakdown:
    """Aggregated traffic per phase."""

    total: int
    by_phase: dict[str, int]
    by_category: dict[str, int]

    def share(self, phase: str) -> float:
        if self.total == 0:
            return float("nan")
        return self.by_phase.get(phase, 0) / self.total

    def render(self) -> str:
        lines = [f"total messages: {self.total}"]
        for phase, count in sorted(
            self.by_phase.items(), key=lambda kv: kv[1], reverse=True
        ):
            lines.append(f"  {phase:<20} {count:>10}  ({self.share(phase):6.1%})")
        return "\n".join(lines)


def breakdown(counter: MessageCounter) -> TrafficBreakdown:
    """Aggregate a counter's categories into paper-level phases."""
    by_phase: dict[str, int] = {}
    by_category = dict(counter.by_category)
    for category, count in by_category.items():
        phase = PHASE_OF_CATEGORY.get(category, "other")
        by_phase[phase] = by_phase.get(phase, 0) + count
    return TrafficBreakdown(
        total=counter.total, by_phase=by_phase, by_category=by_category
    )
