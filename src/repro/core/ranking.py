"""Agent ranking and selection (§3.4.2).

Given the trusted-agent lists collected during discovery, the requestor:

1. within each received list, ranks agents by weight — the greatest weight
   gets rank ``n`` (where ``n`` is how many agents the requestor wants), the
   second greatest ``n-1``, and so on; when a list holds ``m > n`` agents,
   every agent ranked below ``n - m`` gets rank 0 (i.e. ranks floor at 0);
2. merges across lists by taking each agent's **highest** rank — this is the
   defence against bad-mouthing: one genuine high recommendation beats any
   number of low ones (§4.2.1), at the cost of admitting single
   ballot-stuffers (ablated in the ``ablations`` experiment);
3. selects the top ``n`` agents by final rank, breaking ties uniformly at
   random.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.messages import AgentListEntry
from repro.crypto.hashing import NodeID
from repro.errors import ConfigError

__all__ = ["rank_within_list", "merge_ranks", "select_agents"]


def rank_within_list(
    entries: Sequence[AgentListEntry], n: int
) -> dict[NodeID, int]:
    """Rank one received list: best weight → n, next → n-1, …, floored at 0."""
    if n < 1:
        raise ConfigError(f"requestor must want at least one agent, got {n}")
    ordered = sorted(entries, key=lambda e: e.weight, reverse=True)
    ranks: dict[NodeID, int] = {}
    for position, entry in enumerate(ordered):
        rank = max(n - position, 0)
        # An agent duplicated inside one list keeps its best position.
        prev = ranks.get(entry.agent_node_id)
        if prev is None or rank > prev:
            ranks[entry.agent_node_id] = rank
    return ranks


def merge_ranks(
    per_list_ranks: Sequence[dict[NodeID, int]],
) -> dict[NodeID, int]:
    """Merge across lists by the paper's max rule (§3.4.2/§4.2.1)."""
    merged: dict[NodeID, int] = {}
    for ranks in per_list_ranks:
        for node_id, rank in ranks.items():
            if merged.get(node_id, -1) < rank:
                merged[node_id] = rank
    return merged


def select_agents(
    candidates: Sequence[AgentListEntry],
    per_list_ranks: Sequence[dict[NodeID, int]],
    n: int,
    rng: np.random.Generator,
    *,
    merge: str = "max",
) -> list[AgentListEntry]:
    """Pick the requestor's ``n`` trusted agents.

    Parameters
    ----------
    candidates:
        All distinct entries seen across the received lists (one entry per
        agent; callers dedupe by nodeID keeping any representative).
    per_list_ranks:
        Output of :func:`rank_within_list` per received list.
    merge:
        ``"max"`` is the paper's rule; ``"mean"`` averages an agent's ranks
        across lists (used only by the ablation study).
    """
    if n < 1:
        raise ConfigError(f"must select at least one agent, got {n}")
    if merge == "max":
        final = merge_ranks(per_list_ranks)
    elif merge == "mean":
        sums: dict[NodeID, float] = {}
        counts: dict[NodeID, int] = {}
        for ranks in per_list_ranks:
            for node_id, rank in ranks.items():
                sums[node_id] = sums.get(node_id, 0.0) + rank
                counts[node_id] = counts.get(node_id, 0) + 1
        final = {nid: sums[nid] / counts[nid] for nid in sums}
    else:
        raise ConfigError(f"unknown merge rule {merge!r}")

    by_id = {entry.agent_node_id: entry for entry in candidates}
    scored = [(final.get(nid, 0), nid) for nid in by_id]
    if not scored:
        return []
    # Random tie-break: shuffle first, then stable-sort by rank descending.
    order = np.arange(len(scored))
    rng.shuffle(order)
    shuffled = [scored[int(i)] for i in order]
    shuffled.sort(key=lambda pair: pair[0], reverse=True)
    return [by_id[nid] for _rank, nid in shuffled[:n]]
