"""The reputation-agent role (§3.2, §3.5).

A reputation agent is a peer with > 64 kbps that has chosen to serve trust
values.  It keeps:

* a **public-key list** ``{nodeID_i: SP_i}`` of every peer that trusts it —
  populated from trust-value requests after verifying that the claimed
  nodeID really is the hash of the presented SP (spoofing defence);
* a **trust model** producing trust values (quality-driven in the paper's
  simulation, report-driven in extension experiments);
* a **report log** of authenticated transaction results.

Incoming messages arrive through the agent's own onion; replies leave
through the requestor's onion, so neither side ever learns the other's IP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.messages import (
    KeyUpdateAnnouncement,
    SignedResult,
    TransactionReport,
    TrustRequestBody,
    TrustResponseBody,
    TrustValueRequest,
    TrustValueResponse,
)
from repro.core.trust_models import TrustModel
from repro.crypto.backend import CipherBackend, PublicKey
from repro.crypto.hashing import NodeID, node_id_from_key, verify_node_id
from repro.crypto.keys import PeerKeys
from repro.errors import CryptoError, ProtocolError
from repro.onion.onion import Onion

__all__ = ["ReputationAgent", "AgentStats"]


@dataclass
class AgentStats:
    """Counters for analysis and the robustness experiments."""

    requests_served: int = 0
    reports_accepted: int = 0
    reports_rejected: int = 0
    keys_learned: int = 0
    replays_blocked: int = 0


class ReputationAgent:
    """Agent-side protocol logic; transport-agnostic (pure state machine)."""

    def __init__(
        self,
        ip: int,
        keys: PeerKeys,
        backend: CipherBackend,
        model: TrustModel,
        rng: np.random.Generator,
        truth_oracle,
    ) -> None:
        """``truth_oracle(node_id) -> float`` supplies the simulation's
        ground truth to quality-driven models (§5.2); report-driven models
        ignore it."""
        self.ip = ip
        self.keys = keys
        self.backend = backend
        self.model = model
        self.rng = rng
        self.truth_oracle = truth_oracle
        self.public_key_list: dict[NodeID, PublicKey] = {}
        self.report_log: dict[NodeID, list[float]] = {}
        self.stats = AgentStats()
        self._seen_report_nonces: set[int] = set()

    @property
    def node_id(self) -> NodeID:
        return self.keys.node_id

    # -- trust value request handling (§3.5.1–3.5.2) -------------------------

    def handle_trust_request(
        self, request: TrustValueRequest, fresh_onion: Onion
    ) -> TrustValueResponse:
        """Serve one trust-value request.

        Decrypts ``SP_e(R)`` with the agent's private signature key, learns
        the requestor's (nodeID, SP) pair, evaluates the subject, and seals
        the response to the requestor's SP — echoing the request nonce and
        attaching ``fresh_onion`` as the new Onion_e.

        Raises
        ------
        ProtocolError
            When the sealed body cannot be opened or is malformed.
        """
        try:
            body = self.backend.decrypt(self.keys.sr, request.sealed_body)
        except CryptoError as exc:
            raise ProtocolError(f"trust request not sealed to this agent: {exc}") from exc
        if not isinstance(body, TrustRequestBody):
            raise ProtocolError("trust request body malformed")

        # "E computes the nodeID of P using the pre-known hash function"
        # and adds (nodeID, SP) to its public key list if absent.
        requestor_id = node_id_from_key(request.requestor_sp)
        if requestor_id not in self.public_key_list:
            self.public_key_list[requestor_id] = request.requestor_sp
            self.stats.keys_learned += 1

        truth = float(self.truth_oracle(body.subject))
        value = float(self.model.evaluate(body.subject, truth, self.rng))
        response_body = TrustResponseBody(
            subject=body.subject, trust_value=value, nonce=body.nonce
        )
        self.stats.requests_served += 1
        return TrustValueResponse(
            sealed_body=self.backend.encrypt(request.requestor_sp, response_body),
            agent_sp=self.keys.sp,
            agent_onion=fresh_onion,
        )

    # -- transaction report handling (§3.5.3) ---------------------------------

    def handle_report(self, report: TransactionReport) -> bool:
        """Verify and store a transaction report; returns acceptance.

        The agent locates SP_p in its public-key list by the claimed
        nodeID and verifies the signature; anything that fails — unknown
        reporter, bad signature, replayed nonce — is dropped, which is the
        entirety of the spoofing defence (§4.2.2).
        """
        sp = self.public_key_list.get(report.reporter_node_id)
        if sp is None:
            self.stats.reports_rejected += 1
            return False
        if not verify_node_id(report.reporter_node_id, sp):
            # Defensive: a poisoned key list entry would be caught here.
            self.stats.reports_rejected += 1
            return False
        if not self.backend.verify(sp, report.result, report.signature):
            self.stats.reports_rejected += 1
            return False
        if report.result.nonce in self._seen_report_nonces:
            self.stats.replays_blocked += 1
            self.stats.reports_rejected += 1
            return False
        self._seen_report_nonces.add(report.result.nonce)
        self.report_log.setdefault(report.result.subject, []).append(
            report.result.outcome
        )
        self.model.observe_report(report.result.subject, report.result.outcome)
        self.stats.reports_accepted += 1
        return True

    # -- key update handling (§3.5, last paragraph) -----------------------------

    def handle_key_update(self, announcement: KeyUpdateAnnouncement) -> bool:
        """Map an old nodeID to its announced successor.

        Accepts only when (a) the old nodeID is in the key list, (b) the
        signature over the new SP verifies under the *old* SP, and (c) the
        new SP actually hashes to a fresh, unclaimed nodeID.  On success the
        peer's accumulated reputation (its report history is keyed by the
        *subject*, not the reporter, so nothing moves there) carries over to
        the new identity in the public-key list.
        """
        old_sp = self.public_key_list.get(announcement.old_node_id)
        if old_sp is None:
            self.stats.reports_rejected += 1
            return False
        payload = ("key-update", announcement.new_sp.to_bytes())
        if not self.backend.verify(old_sp, payload, announcement.signature):
            self.stats.reports_rejected += 1
            return False
        new_id = node_id_from_key(announcement.new_sp)
        if new_id in self.public_key_list:
            self.stats.reports_rejected += 1
            return False
        del self.public_key_list[announcement.old_node_id]
        self.public_key_list[new_id] = announcement.new_sp
        return True

    # -- introspection ----------------------------------------------------------

    def reports_for(self, subject: NodeID) -> list[float]:
        return list(self.report_log.get(subject, ()))

    @staticmethod
    def make_signed_result(
        backend: CipherBackend,
        reporter_keys: PeerKeys,
        subject: NodeID,
        outcome: float,
        nonce: int,
    ) -> TransactionReport:
        """Build the ``(SR_p(result, nonce), nodeID_p)`` report a peer sends."""
        result = SignedResult(subject=subject, outcome=outcome, nonce=nonce)
        signature = backend.sign(reporter_keys.sr, result)
        return TransactionReport(
            result=result,
            signature=signature,
            reporter_node_id=reporter_keys.node_id,
        )
