"""Backend-agnostic protocol semantics shared by both execution kernels.

hiREP now has two interchangeable execution backends behind the
:class:`~repro.core.interface.ReputationSystem` interface:

* the **object kernel** (``repro.core``): one Python object per peer, agent
  and trust row, driven through the discrete-event network — the reference
  implementation used for paper-scale (≈1000 node) replication; and
* the **array kernel** (``repro.vector``): struct-of-arrays state with
  vectorized update rules, built for 10⁵–10⁶ peer sweeps.

Everything that *defines* hiREP's numeric behaviour — the expertise EWMA,
the consistency predicate, the query-time agent ordering, the weighted
vote aggregation and the hirep-θ eviction rule — lives here, in one place,
expressed both as scalar steps (object kernel) and as vectorized
equivalents (array kernel).  Keeping a single source of truth is what
makes the kernel-parity suite (``tests/integration/test_kernel_parity.py``)
meaningful: both kernels literally execute the same arithmetic, so final
trust vectors agree bit-for-bit and estimates agree to float tolerance.

Scalar/vector pairs and their proof obligations:

``ewma_step`` / ``ewma_update``
    ``α·A_c + (1-α)·A_p`` — numpy's elementwise multiply/add perform the
    identical IEEE-754 double operations as the scalar expression, so the
    vectorized form is bit-equal per element.
``selection_order``
    random shuffle followed by a *stable* descending sort on
    ``(value, updates)``.  ``np.lexsort`` is stable and ascending; sorting
    the negated keys of the shuffled permutation reproduces Python's
    ``list.sort(key=..., reverse=True)`` exactly.
``aggregate_estimate``
    the weighted-mean fold is kept as an explicit left-to-right sum (at
    most ``agents_queried`` terms) so both kernels accumulate in the same
    order; a zero weight contributes exactly nothing (``x + 0.0 == x``),
    which lets the array kernel pass weight 0 for vanished agents instead
    of filtering.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.net.messages import Category

__all__ = [
    "TRUST_TRAFFIC_CATEGORIES",
    "aggregate_estimate",
    "confidence",
    "confidence_array",
    "consistency_bit",
    "consistent",
    "eviction_mask",
    "ewma_step",
    "ewma_update",
    "selection_order",
]

#: Message categories that count as *trust traffic* in Fig. 5-style
#: accounting (queries, responses and transaction reports; discovery,
#: onion relaying and key exchange are overlay maintenance).
TRUST_TRAFFIC_CATEGORIES: tuple[str, str, str] = (
    Category.TRUST_QUERY,
    Category.TRUST_RESPONSE,
    Category.TRANSACTION_REPORT,
)


def consistent(evaluation: float, outcome: float) -> bool:
    """Whether an agent's trust evaluation agrees with the observed outcome.

    Both values live in [0, 1]; they agree when they fall on the same side
    of 0.5 (the paper's good/bad rating scopes are [0.6, 1] and [0, 0.4],
    so 0.5 separates them cleanly).
    """
    return (evaluation >= 0.5) == (outcome >= 0.5)


def consistency_bit(evaluation: float, outcome: float) -> float:
    """The paper's current accuracy ``A_c``: 1.0 when consistent else 0.0."""
    return 1.0 if consistent(evaluation, outcome) else 0.0


def ewma_step(alpha: float, value: float, a_c: float) -> float:
    """One expertise EWMA step: ``α·A_c + (1-α)·A_p`` (§3.4.3)."""
    return alpha * a_c + (1.0 - alpha) * value


def ewma_update(
    alpha: float, values: np.ndarray, bits: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`ewma_step` over parallel value/accuracy arrays.

    Elementwise ``α·bits + (1-α)·values``; bit-identical to the scalar
    step applied per element.
    """
    return alpha * bits + (1.0 - alpha) * values


def confidence(updates: int) -> float:
    """Track-record confidence ``updates / (updates + 1)`` in [0, 1)."""
    return updates / (updates + 1.0)


def confidence_array(updates: np.ndarray) -> np.ndarray:
    """Vectorized :func:`confidence` (float64 result)."""
    return updates / (updates + 1.0)


def selection_order(
    values: np.ndarray, updates: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Query-time agent ordering: expertise desc, updates desc, random ties.

    Returns a permutation of ``arange(len(values))``.  Draw-for-draw and
    output-for-output identical to the object kernel's historic
    ``select_for_query``: one shuffle of ``arange(m)`` on ``rng`` followed
    by a stable descending sort on ``(value, updates)``.
    """
    m = int(len(values))
    if m == 0:
        return np.empty(0, dtype=np.int64)
    order = np.arange(m)
    rng.shuffle(order)
    # Stable ascending lexsort on negated keys == stable descending sort;
    # the last key in the tuple is the primary key.
    rank = np.lexsort((-np.asarray(updates)[order], -np.asarray(values)[order]))
    return order[rank]


def aggregate_estimate(
    values: Sequence[float], weights: Sequence[float]
) -> float:
    """Fold trust responses into one estimate (§3.5).

    ``values[i]`` is agent *i*'s trust evaluation and ``weights[i]`` its
    ``expertise · confidence`` weight (pass 0.0 for agents that vanished
    from the list before settlement — numerically identical to skipping
    them).  Falls back to the unweighted mean when no agent carries weight
    (all-fresh lists have confidence 0), and to the neutral prior 0.5 when
    there were no responses at all.
    """
    num = 0.0
    den = 0.0
    for value, weight in zip(values, weights):
        num += weight * value
        den += weight
    if den > 0:
        return num / den
    if values:
        return float(np.mean(values))
    return 0.5


def eviction_mask(values: np.ndarray, threshold: float) -> np.ndarray:
    """hirep-θ rule, vectorized: True where expertise fell below θ."""
    return values < threshold
