"""hiREP protocol wire formats (§3.4–3.5).

Message shapes follow the paper exactly:

* trust value request  — ``{SP_e(R), SP_p, Onion_p}`` with ``R = {subject,
  nonce}`` sealed to the agent's public signature key;
* trust value response — ``{SP_p(T), SP_e, Onion_e}`` with ``T = {trust
  value, nonce}`` sealed to the requesting peer, echoing the request nonce
  and piggy-backing a fresh onion of the agent;
* transaction report   — ``(SR_p(result, nonce), nodeID_p)``: the outcome
  signed with the reporter's private signature key, located in the agent's
  public-key list by nodeID;
* agent-list request   — ``{R_al, token, TTL}`` (Fig. 4);
* agent-list reply     — the responder's trusted-agent list (or its own
  nodeID when it has none).

The dataclasses carry *sealed/signed* fields as opaque values produced by a
cipher backend; nothing here depends on which backend sealed them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.crypto.backend import PublicKey
from repro.crypto.hashing import NodeID
from repro.onion.onion import Onion

__all__ = [
    "TrustRequestBody",
    "TrustValueRequest",
    "TrustResponseBody",
    "TrustValueResponse",
    "SignedResult",
    "TransactionReport",
    "AgentListEntry",
    "AgentListRequest",
    "AgentListReply",
    "KeyUpdateAnnouncement",
]


# --------------------------------------------------------------------------
# Trust value request / response (§3.5.1–3.5.2)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TrustRequestBody:
    """Plaintext ``R = {request, nonce}``: asks for one subject's trust value."""

    subject: NodeID
    nonce: int


@dataclass(frozen=True)
class TrustValueRequest:
    """``{SP_e(R), SP_p, Onion_p}`` — travels to the agent via its onion."""

    sealed_body: Any          # SP_e(R)
    requestor_sp: PublicKey   # SP_p — lets the agent learn/verify nodeID_p
    requestor_onion: Onion    # Onion_p — the reply path


@dataclass(frozen=True)
class TrustResponseBody:
    """Plaintext ``T = {trust value, nonce}``; nonce echoes the request."""

    subject: NodeID
    trust_value: float
    nonce: int


@dataclass(frozen=True)
class TrustValueResponse:
    """``{SP_p(T), SP_e, Onion_e}`` — travels back via the peer's onion."""

    sealed_body: Any          # SP_p(T)
    agent_sp: PublicKey       # SP_e
    agent_onion: Onion        # fresh Onion_e for future reports


# --------------------------------------------------------------------------
# Transaction result report (§3.5.3)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SignedResult:
    """What SR_p signs: the transaction outcome for a subject, plus a nonce."""

    subject: NodeID
    outcome: float            # observed transaction quality in [0, 1]
    nonce: int


@dataclass(frozen=True)
class TransactionReport:
    """``(SR_p(result, nonce), nodeID_p)`` — signature located via nodeID."""

    result: SignedResult
    signature: Any
    reporter_node_id: NodeID


# --------------------------------------------------------------------------
# Periodic key update (§3.5, last paragraph)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class KeyUpdateAnnouncement:
    """``New public keys signed by current private key`` (§3.5).

    The holder of ``old_node_id``'s private key announces a successor SP;
    the signature (under the *old* SR, over the new SP bytes) lets
    correspondents "map and replace an old nodeID to a new nodeID" without
    any third party.
    """

    old_node_id: NodeID
    new_sp: PublicKey
    signature: Any


# --------------------------------------------------------------------------
# Trusted-agent-list discovery (§3.4.1, Fig. 4)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AgentListEntry:
    """One row of a trusted-agent list: ``{weight, nodeID, Onion, SP}``."""

    weight: float
    agent_node_id: NodeID
    agent_onion: Onion | None
    agent_sp: PublicKey
    agent_ip: int = -1
    """Transport hint used by the simulation to address the agent; real
    deployments reach agents through their onions only."""


@dataclass
class AgentListRequest:
    """``{R_al, token, TTL}``; tokens are consumed by repliers (Fig. 4)."""

    requestor_ip: int
    tokens: int
    ttl: int
    request_id: int = 0


@dataclass(frozen=True)
class AgentListReply:
    """A responder's list, or its own identity when it has no list yet."""

    responder_ip: int
    entries: tuple[AgentListEntry, ...] = field(default_factory=tuple)
    self_entry: AgentListEntry | None = None
