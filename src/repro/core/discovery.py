"""Trusted-agent-list discovery: the token + TTL protocol of §3.4.1 / Fig. 4.

A requestor floods ``{R_al, token, TTL}`` to its neighbours with the tokens
split among them.  A node holding a trusted-agent list returns it to the
requestor (consuming one token) and forwards the remainder; a node without
a list forwards its tokens untouched, optionally returning its own identity
as a candidate reputation agent.  Propagation stops when tokens are used up
or the TTL expires — so, unlike pure flooding, the reply volume is bounded
by the token budget no matter how dense the overlay is.

Message accounting: one message per request edge traversed; each reply
costs ``depth`` messages (it routes back along the reverse path, Gnutella
query-hit style).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.messages import AgentListEntry, AgentListReply
from repro.errors import ConfigError
from repro.net.topology import Topology

__all__ = ["DiscoveryOutcome", "discover_agent_lists"]


@dataclass
class DiscoveryOutcome:
    """Replies gathered by one discovery round plus its traffic bill."""

    replies: list[AgentListReply] = field(default_factory=list)
    request_messages: int = 0
    reply_messages: int = 0
    tokens_spent: int = 0

    @property
    def total_messages(self) -> int:
        return self.request_messages + self.reply_messages

    def all_entries(self) -> list[AgentListEntry]:
        """Every advertised agent entry across replies (lists + self-offers)."""
        out: list[AgentListEntry] = []
        for reply in self.replies:
            out.extend(reply.entries)
            if reply.self_entry is not None:
                out.append(reply.self_entry)
        return out


def _split_tokens(
    tokens: int, ways: int, rng: np.random.Generator
) -> list[int]:
    """Distribute ``tokens`` across ``ways`` branches, remainder randomized."""
    if ways <= 0:
        return []
    base, extra = divmod(tokens, ways)
    shares = [base] * ways
    if extra:
        lucky = rng.choice(ways, size=extra, replace=False)
        for i in lucky:
            shares[int(i)] += 1
    return shares


def discover_agent_lists(
    topology: Topology,
    requestor: int,
    tokens: int,
    ttl: int,
    *,
    rng: np.random.Generator,
    get_list: Callable[[int], tuple[AgentListEntry, ...] | None],
    get_self_entry: Callable[[int], AgentListEntry | None],
    online: Callable[[int], bool] | None = None,
) -> DiscoveryOutcome:
    """Run one agent-list request round from ``requestor``.

    Parameters
    ----------
    get_list:
        ``node -> entries`` — the node's trusted-agent list, or ``None`` /
        empty when it has none (it then forwards tokens untouched).
    get_self_entry:
        ``node -> entry`` — the node's self-advertisement when it is a
        reputation agent willing to serve, else ``None``.
    online:
        Liveness predicate (offline nodes swallow tokens sent to them:
        charged but lost, like datagrams to a dead host).
    """
    if tokens < 1:
        raise ConfigError(f"tokens must be >= 1, got {tokens}")
    if ttl < 1:
        raise ConfigError(f"ttl must be >= 1, got {ttl}")
    is_online = online if online is not None else (lambda _n: True)
    outcome = DiscoveryOutcome()
    replied: set[int] = set()

    # (node, tokens carried, depth, came_from)
    queue: deque[tuple[int, int, int, int]] = deque()

    def fan_out(node: int, carry: int, depth: int, came_from: int) -> None:
        """Forward ``carry`` tokens from ``node`` to its other neighbours."""
        if carry <= 0 or depth >= ttl:
            return
        nbrs = [n for n in topology.neighbors(node) if n != came_from]
        if not nbrs:
            return
        shares = _split_tokens(carry, len(nbrs), rng)
        for nbr, share in zip(nbrs, shares):
            if share <= 0:
                continue
            outcome.request_messages += 1
            if not is_online(nbr):
                continue  # tokens lost with the dead host
            queue.append((nbr, share, depth + 1, node))

    fan_out(requestor, tokens, 0, -1)
    while queue:
        node, carry, depth, came_from = queue.popleft()
        if node == requestor:
            continue
        if node not in replied:
            entries = get_list(node)
            has_list = bool(entries)
            if has_list:
                outcome.replies.append(
                    AgentListReply(responder_ip=node, entries=tuple(entries or ()))
                )
                outcome.reply_messages += depth
                outcome.tokens_spent += 1
                replied.add(node)
                carry -= 1
            else:
                self_entry = get_self_entry(node)
                if self_entry is not None:
                    # "The node can return its own nodeID if it has no
                    # trusted agent list" — this also costs a token, which
                    # is how I in Fig. 4 'uses up the last token'.
                    outcome.replies.append(
                        AgentListReply(responder_ip=node, self_entry=self_entry)
                    )
                    outcome.reply_messages += depth
                    outcome.tokens_spent += 1
                    replied.add(node)
                    carry -= 1
        fan_out(node, carry, depth, came_from)
    return outcome
