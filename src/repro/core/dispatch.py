"""Dispatch layer: typed routing of onion-delivered protocol messages.

The pre-kernel ``HiRepSystem._make_endpoint`` buried message routing in a
closure with an isinstance-chain; this module makes the routing table a
first-class object.  A :class:`ProtocolDispatcher` maps (node role,
message type) → handler:

* **roles** are named predicates over node indices (``"peer"`` — every
  node; ``"agent"`` — nodes serving as reputation agents), so a handler
  registered for a role simply never sees messages at nodes outside it —
  exactly the old behaviour of ``agents.get(ip) is None: drop``;
* **handlers** are ``(ip, message, sent_at) -> None`` callables;
* an optional :class:`Tracer` tap observes every dispatch —
  handled or dropped — without touching protocol code.

``dispatcher.endpoint(ip)`` adapts a node's dispatch entry to the
``(message, sent_at)`` endpoint signature the onion router expects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from repro.errors import ConfigError

__all__ = [
    "DispatchRecord",
    "ProtocolDispatcher",
    "RecordingTracer",
    "Tracer",
]

#: A protocol-message handler at a node: (ip, message, sent_at) -> None.
Handler = Callable[[int, Any, float], None]


@dataclass
class DispatchRecord:
    """One dispatched message as seen by a tracer."""

    ip: int
    message: Any
    sent_at: float
    role: str | None  #: role whose handler ran (None = no handler: dropped)

    @property
    def handled(self) -> bool:
        return self.role is not None


class Tracer(Protocol):
    """Passive tap on every protocol-message dispatch."""

    def __call__(self, record: DispatchRecord) -> None: ...


@dataclass
class RecordingTracer:
    """A tracer that keeps every :class:`DispatchRecord` (tests, debugging)."""

    records: list[DispatchRecord] = field(default_factory=list)

    def __call__(self, record: DispatchRecord) -> None:
        self.records.append(record)

    def handled(self) -> list[DispatchRecord]:
        return [r for r in self.records if r.handled]

    def dropped(self) -> list[DispatchRecord]:
        return [r for r in self.records if not r.handled]


class ProtocolDispatcher:
    """Message-type → handler registry, scoped per node role."""

    def __init__(self, *, tracer: Tracer | None = None) -> None:
        self.tracer = tracer
        #: role name -> membership predicate over node indices.
        self._roles: dict[str, Callable[[int], bool]] = {}
        #: role name -> message type -> handler (insertion-ordered).
        self._handlers: dict[str, dict[type, Handler]] = {}

    def define_role(self, role: str, member: Callable[[int], bool]) -> None:
        """Declare ``role`` with its node-membership predicate."""
        if role in self._roles:
            raise ConfigError(f"role {role!r} already defined")
        self._roles[role] = member
        self._handlers[role] = {}

    def register(self, role: str, message_type: type, handler: Handler) -> None:
        """Route ``message_type`` at nodes holding ``role`` to ``handler``."""
        if role not in self._roles:
            raise ConfigError(f"unknown role {role!r}; define_role first")
        table = self._handlers[role]
        if message_type in table:
            raise ConfigError(
                f"{message_type.__name__} already routed for role {role!r}"
            )
        table[message_type] = handler

    def routes(self) -> list[tuple[str, type]]:
        """Every (role, message type) pair with a handler, in order."""
        return [
            (role, message_type)
            for role, table in self._handlers.items()
            for message_type in table
        ]

    def dispatch(self, ip: int, message: Any, sent_at: float) -> bool:
        """Route one delivered message; returns True when a handler ran.

        Roles are consulted in definition order; within a role, the
        message's MRO is walked so a handler registered for a base class
        also receives subclasses.  Unroutable messages are dropped (and
        traced), mirroring a deployed node ignoring unknown traffic.
        """
        for role, member in self._roles.items():
            if not member(ip):
                continue
            table = self._handlers[role]
            for klass in type(message).__mro__:
                handler = table.get(klass)
                if handler is not None:
                    if self.tracer is not None:
                        self.tracer(DispatchRecord(ip, message, sent_at, role))
                    handler(ip, message, sent_at)
                    return True
        if self.tracer is not None:
            self.tracer(DispatchRecord(ip, message, sent_at, None))
        return False

    def endpoint(self, ip: int) -> Callable[[Any, float], None]:
        """The onion-router endpoint for node ``ip``."""

        def endpoint(message: Any, sent_at: float) -> None:
            self.dispatch(ip, message, sent_at)

        return endpoint
