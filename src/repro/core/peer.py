"""The hiREP peer (§3.2–3.6).

A :class:`HiRepPeer` owns one node's protocol state: key material, its
trusted-agent list, its current onion, and any in-flight trust query.  It is
deliberately transport-thin — messages go out through the
:class:`~repro.onion.routing.OnionRouter` and arrive back via
:meth:`on_onion_message`, which the system wires as the node's onion
endpoint — so the full protocol stack is exercised on every query exactly
as the paper describes:

1. the peer seals ``R = {subject, nonce}`` to each chosen agent's SP and
   sends it through **the agent's onion**, attaching its own SP and onion;
2. the agent replies through **the peer's onion**, sealing ``T = {value,
   nonce}`` to SP_p and piggy-backing a fresh Onion_e;
3. after the download the peer updates each agent's expertise, applies the
   hirep-θ eviction rule, reports the signed outcome through the (fresh)
   agent onions, and tops its list back up when it falls below the refill
   threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.agent_list import TrustedAgent, TrustedAgentList
from repro.core.config import HiRepConfig
from repro.core.semantics import aggregate_estimate
from repro.core.messages import (
    AgentListEntry,
    TransactionReport,
    TrustRequestBody,
    TrustValueRequest,
    TrustValueResponse,
)
from repro.crypto.backend import CipherBackend
from repro.crypto.hashing import NodeID
from repro.crypto.keys import PeerKeys
from repro.crypto.nonce import NonceRegistry
from repro.errors import CryptoError, NoTrustedAgentsError, ProtocolError
from repro.net.messages import Category
from repro.net.network import P2PNetwork
from repro.onion.onion import Onion, build_onion
from repro.onion.relay import AnonymityKeyStore, RelayRegistry
from repro.onion.routing import OnionRouter

__all__ = ["HiRepPeer", "QueryResult", "PendingQuery"]


@dataclass
class QueryResult:
    """Outcome of one completed trust-value query."""

    subject: NodeID
    estimate: float
    responses: list[tuple[NodeID, float]]
    response_time_ms: float
    answered: int
    asked: int
    retries: int = 0
    timed_out: bool = False


@dataclass
class PendingQuery:
    """In-flight query bookkeeping.

    ``nonce_to_agent`` may hold several nonces per agent once retries are
    in play (the original request might be merely slow, not lost); the
    first response from an agent wins and invalidates its other nonces.
    """

    subject: NodeID
    started_at: float
    nonce_to_agent: dict[int, NodeID] = field(default_factory=dict)
    responses: list[tuple[NodeID, float]] = field(default_factory=list)
    last_arrival: float = float("nan")
    relay_pool: list[int] = field(default_factory=list)
    asked_agents: set[NodeID] = field(default_factory=set)
    attempt: int = 0
    retries_sent: int = 0
    timed_out: bool = False


class HiRepPeer:
    """One node's hiREP protocol state machine."""

    def __init__(
        self,
        ip: int,
        keys: PeerKeys,
        backend: CipherBackend,
        config: HiRepConfig,
        network: P2PNetwork,
        router: OnionRouter,
        relay_registry: RelayRegistry,
        rng: np.random.Generator,
    ) -> None:
        self.ip = ip
        self.keys = keys
        self.backend = backend
        self.config = config
        self.network = network
        self.router = router
        self.relay_registry = relay_registry
        self.rng = rng
        self.nonces = NonceRegistry(rng)
        self.key_store = AnonymityKeyStore(
            ip,
            backend,
            lambda: _make_initiator(backend, keys, ip),
        )
        self.agent_list = TrustedAgentList(
            capacity=config.trusted_agents,
            alpha=config.expertise_alpha,
            eviction_threshold=config.eviction_threshold,
            backup_capacity=config.backup_cache_size,
            initial_expertise=config.initial_expertise,
        )
        self._onion_seq = 0
        self._relay_ips: list[int] = []
        self._current_onion: Onion | None = None
        self._pending: PendingQuery | None = None
        self.queries_completed = 0
        self.probe_messages = 0
        # Timeout/retry plane accounting (active when query_timeout_ms set).
        self.retries_sent = 0
        self.queries_timed_out = 0
        self.unresponsive_parked = 0
        self.circuits_rebuilt = 0

    @property
    def node_id(self) -> NodeID:
        return self.keys.node_id

    # ------------------------------------------------------------------
    # Onion management (§3.3)
    # ------------------------------------------------------------------

    def ensure_onion(self, relay_pool: list[int]) -> Onion:
        """Return a usable onion, rebuilding if relays churned away.

        Building a new path triggers the Fig. 3 handshake with each relay
        whose anonymity key is not yet cached — those messages are charged
        to the network counter by the handshake driver.
        """
        relays_alive = self._relay_ips and all(
            self.network.is_online(r) for r in self._relay_ips
        )
        if self._current_onion is not None and relays_alive:
            return self._current_onion
        return self.rebuild_onion(relay_pool)

    def rebuild_onion(self, relay_pool: list[int]) -> Onion:
        """Pick fresh relays from ``relay_pool`` and build a new onion."""
        pool = [
            r for r in relay_pool if r != self.ip and self.network.is_online(r)
        ]
        n_relays = min(self.config.onion_relays, len(pool))
        if n_relays > 0:
            idx = self.rng.choice(len(pool), size=n_relays, replace=False)
            relays = [pool[int(i)] for i in idx]
        else:
            relays = []
        relay_keys = []
        for r in relays:
            ap = self.key_store.learn(self.network, self.relay_registry, r)
            relay_keys.append((r, ap))
        self._relay_ips = relays
        self._onion_seq += 1
        self._current_onion = build_onion(
            self.backend,
            self.keys.ap,
            self.keys.sr,
            self.ip,
            relay_keys,
            seq=self._onion_seq,
        )
        return self._current_onion

    def fresh_onion(self, relay_pool: list[int]) -> Onion:
        """A new-sequence onion over the current relays (§3.5.2's Onion_e).

        Falls back to a full rebuild when any relay went offline.
        """
        if self._current_onion is None or not self._relay_ips or not all(
            self.network.is_online(r) for r in self._relay_ips
        ):
            return self.ensure_onion(relay_pool)
        relay_keys = [(r, self.key_store.get(r)) for r in self._relay_ips]
        self._onion_seq += 1
        self._current_onion = build_onion(
            self.backend,
            self.keys.ap,
            self.keys.sr,
            self.ip,
            relay_keys,
            seq=self._onion_seq,
        )
        return self._current_onion

    # ------------------------------------------------------------------
    # Trust value query (§3.5.1)
    # ------------------------------------------------------------------

    def start_query(
        self, subject: NodeID, relay_pool: list[int]
    ) -> list[TrustedAgent]:
        """Send trust-value requests for ``subject`` to the chosen agents.

        Returns the consulted agents.  Raises
        :class:`~repro.errors.NoTrustedAgentsError` when the list is empty.

        When ``config.query_timeout_ms`` is set, a DES deadline is armed:
        agents that have not answered by then are retried with exponential
        backoff (up to ``max_query_retries`` rounds), and agents that
        exhaust every retry accrue a consecutive-miss strike (see
        :meth:`_on_query_deadline`).
        """
        if self._pending is not None:
            raise ProtocolError(f"peer {self.ip} already has a query in flight")
        agents = self.agent_list.select_for_query(
            self.config.agents_queried, self.rng
        )
        if not agents:
            raise NoTrustedAgentsError(f"peer {self.ip} has no trusted agents")
        own_onion = self.ensure_onion(relay_pool)
        pending = PendingQuery(
            subject=subject,
            started_at=self.network.engine.now,
            relay_pool=list(relay_pool),
        )
        for agent in agents:
            if agent.entry.agent_onion is None:
                continue
            self._send_request(pending, agent, own_onion)
        self._pending = pending
        if self.config.query_timeout_ms is not None and pending.nonce_to_agent:
            self._arm_deadline(pending)
        return agents

    def awaiting_responses(self) -> bool:
        """True while an in-flight query still has unanswered requests.

        The DES drives queries to quiescence with ``network.run()``; the
        live service plane (``repro.serve``) has no event queue, so it
        polls this between actor wake-ups to decide when to finish.
        """
        return self._pending is not None and bool(self._pending.nonce_to_agent)

    def _send_request(
        self, pending: PendingQuery, agent: TrustedAgent, own_onion: Onion
    ) -> None:
        """Seal and send one trust-value request to ``agent``."""
        nonce = self.nonces.issue()
        pending.nonce_to_agent[nonce] = agent.node_id
        pending.asked_agents.add(agent.node_id)
        body = TrustRequestBody(subject=pending.subject, nonce=nonce)
        request = TrustValueRequest(
            sealed_body=self.backend.encrypt(agent.entry.agent_sp, body),
            requestor_sp=self.keys.sp,
            requestor_onion=own_onion,
        )
        self.router.send(
            self.ip, agent.entry.agent_onion, request, category=Category.TRUST_QUERY
        )

    # -- timeout / retry / backoff (robustness extension) -----------------

    def _arm_deadline(self, pending: PendingQuery) -> None:
        """Schedule the deadline for ``pending``'s current attempt.

        Attempt *k* waits ``query_timeout_ms * backoff_factor**k`` — the
        timeout and the exponential backoff are one knob, so a retried
        agent always gets strictly longer to answer than the round before.
        """
        delay = self.config.query_timeout_ms * (
            self.config.retry_backoff_factor ** pending.attempt
        )
        self.network.engine.schedule_in(
            delay,
            lambda: self._on_query_deadline(pending),
            label="query_deadline",
        )

    def _on_query_deadline(self, pending: PendingQuery) -> None:
        """Deadline fired: retry the silent agents or strike them out."""
        if self._pending is not pending:
            return  # query already finished (stale deadline)
        # Dedupe in nonce-issue order, NOT via a set: node ids are bytes,
        # and set iteration order follows the per-process hash salt, which
        # would leak PYTHONHASHSEED into retry order and break cross-run
        # determinism.
        unanswered = list(dict.fromkeys(pending.nonce_to_agent.values()))
        if not unanswered:
            return  # everyone made it in time
        if pending.attempt >= self.config.max_query_retries:
            # Out of retries: strike every silent agent; park the ones
            # that have now missed agent_miss_limit queries in a row so
            # they stop soaking up query slots (they keep their expertise
            # in the backup cache and may be probed back later).
            pending.timed_out = True
            self.queries_timed_out += 1
            limit = self.config.agent_miss_limit
            for agent_id in unanswered:
                misses = self.agent_list.record_miss(agent_id)
                if misses is not None and limit > 0 and misses >= limit:
                    if self.agent_list.park_offline(agent_id):
                        self.unresponsive_parked += 1
            return
        if not self.network.is_online(self.ip):
            return  # we crashed mid-query; nothing to retry from
        # A dead relay in our own circuit silently eats every reply, so
        # rebuild the circuit before spending retry traffic.
        if self._relay_ips and not all(
            self.network.is_online(r) for r in self._relay_ips
        ):
            self.circuits_rebuilt += 1
        own_onion = self.ensure_onion(pending.relay_pool)
        for agent_id in unanswered:
            agent = self.agent_list.get(agent_id)
            if agent is None or agent.entry.agent_onion is None:
                continue  # evicted/parked since we asked; let it strike out
            self._send_request(pending, agent, own_onion)
            pending.retries_sent += 1
            self.retries_sent += 1
        pending.attempt += 1
        self._arm_deadline(pending)

    def on_onion_message(self, message: object, sent_at: float) -> None:
        """Endpoint for everything that arrives through this peer's onion."""
        if isinstance(message, TrustValueResponse):
            self._on_trust_response(message)
        # TrustValueRequest / TransactionReport are handled by the agent
        # role; the system's dispatcher routes them there.

    def _on_trust_response(self, response: TrustValueResponse) -> None:
        pending = self._pending
        if pending is None:
            return
        try:
            body = self.backend.decrypt(self.keys.sr, response.sealed_body)
        except CryptoError:
            return  # not sealed to us — ignore, like a peer would
        if body.subject != pending.subject:
            return
        agent_id = pending.nonce_to_agent.pop(body.nonce, None)
        if agent_id is None:
            return  # unknown or already-answered nonce (replay/forgery)
        # Retries may have issued several nonces to this agent; the first
        # answer wins, the rest become dead nonces.
        stale = [n for n, a in pending.nonce_to_agent.items() if a == agent_id]
        for nonce in stale:
            del pending.nonce_to_agent[nonce]
        agent = self.agent_list.get(agent_id)
        if agent is not None and response.agent_onion is not None:
            agent.refresh_onion(response.agent_onion)
        self.agent_list.record_answer(agent_id)
        pending.responses.append((agent_id, float(body.trust_value)))
        pending.last_arrival = self.network.engine.now

    def finish_query(self) -> QueryResult:
        """Close the in-flight query and compute the trust estimate.

        The estimate weights each response by ``expertise × confidence``
        ("only the trust values provided by the agents of high expertise
        are accepted", §5.3): an agent with no track record contributes
        nothing once *any* proven agent answered, and agents evicted
        mid-query contribute weight 0.  When no agent has a track record
        yet (a fresh list), the estimate degrades to the plain mean — the
        same aggregation pure voting uses, which is why untrained hiREP
        starts at voting-level accuracy in Fig. 6.  Falls back to the
        uninformative prior 0.5 when nothing answered.
        """
        pending = self._pending
        if pending is None:
            raise ProtocolError(f"peer {self.ip} has no query in flight")
        self._pending = None
        if pending.asked_agents:
            asked = len(pending.asked_agents)
        else:
            asked = len(pending.nonce_to_agent) + len(pending.responses)
        values: list[float] = []
        weights: list[float] = []
        for agent_id, value in pending.responses:
            agent = self.agent_list.get(agent_id)
            values.append(value)
            if agent is None:
                weights.append(0.0)  # vanished mid-query: contributes nothing
            else:
                weights.append(agent.expertise.value * agent.expertise.confidence)
        estimate = aggregate_estimate(values, weights)
        if pending.responses and not np.isnan(pending.last_arrival):
            elapsed = pending.last_arrival - pending.started_at
        else:
            elapsed = float("nan")
        self.queries_completed += 1
        return QueryResult(
            subject=pending.subject,
            estimate=estimate,
            responses=pending.responses,
            response_time_ms=elapsed,
            answered=len(pending.responses),
            asked=asked,
            retries=pending.retries_sent,
            timed_out=pending.timed_out,
        )

    # ------------------------------------------------------------------
    # Post-transaction bookkeeping (§3.4.3, §3.5.3, §3.6)
    # ------------------------------------------------------------------

    def settle_transaction(
        self,
        result: QueryResult,
        outcome: float,
        relay_pool: list[int],
        *,
        report: bool = True,
    ) -> list[TransactionReport]:
        """Update expertise, evict, park offline agents, send reports.

        Returns the reports sent (useful to tests).
        """
        from repro.core.agent import ReputationAgent  # local: avoid cycle

        # 1. expertise updates for every agent that answered
        for agent_id, value in result.responses:
            self.agent_list.update_expertise(agent_id, value, outcome)
        # 2. hirep-θ eviction
        self.agent_list.evict_below_threshold()
        # 3. park agents that went offline (positive expertise → backup)
        for agent in list(self.agent_list.agents()):
            ip = agent.entry.agent_ip
            if ip >= 0 and not self.network.is_online(ip):
                self.agent_list.park_offline(agent.node_id)
        # 4. signed transaction reports through each surviving agent's onion
        reports: list[TransactionReport] = []
        if report:
            answered = {aid for aid, _v in result.responses}
            report_all = self.config.report_scope == "all"
            for agent in self.agent_list.agents():
                if not report_all and agent.node_id not in answered:
                    continue
                onion = agent.entry.agent_onion
                if onion is None:
                    continue
                tx_report = ReputationAgent.make_signed_result(
                    self.backend,
                    self.keys,
                    result.subject,
                    outcome,
                    self.nonces.issue(),
                )
                self.router.send(
                    self.ip,
                    onion,
                    tx_report,
                    category=Category.TRANSACTION_REPORT,
                )
                reports.append(tx_report)
        return reports

    # ------------------------------------------------------------------
    # Periodic key update (§3.5, last paragraph)
    # ------------------------------------------------------------------

    def announce_key_update(self, new_keys: PeerKeys) -> int:
        """Send ``(new SP) signed by current SR`` to every trusted agent.

        Uses "the most recently received onions" of the agents.  Returns
        how many announcements went out; the caller (the system, which owns
        the transport wiring) must follow up with :meth:`adopt_keys`.
        """
        from repro.core.messages import KeyUpdateAnnouncement

        payload = ("key-update", new_keys.sp.to_bytes())
        announcement = KeyUpdateAnnouncement(
            old_node_id=self.node_id,
            new_sp=new_keys.sp,
            signature=self.backend.sign(self.keys.sr, payload),
        )
        sent = 0
        for agent in self.agent_list.agents():
            onion = agent.entry.agent_onion
            if onion is None:
                continue
            self.router.send(
                self.ip, onion, announcement, category=Category.KEY_EXCHANGE
            )
            sent += 1
        return sent

    def adopt_keys(self, new_keys: PeerKeys) -> None:
        """Switch to the rotated key material and invalidate the old onion.

        The onion must be rebuilt because it is signed with SR and its core
        is sealed to AP — both rotated.
        """
        self.keys = new_keys
        self._current_onion = None
        self._relay_ips = []
        self.key_store = AnonymityKeyStore(
            self.ip,
            self.backend,
            lambda: _make_initiator(self.backend, new_keys, self.ip),
        )

    # ------------------------------------------------------------------
    # List maintenance (§3.4.3)
    # ------------------------------------------------------------------

    def probe_backups(self) -> int:
        """Probe parked agents; restore the ones that answered.

        Each probe costs one request message plus one reply when alive
        (category ``control``).  Returns how many were restored.
        """
        restored = 0
        for agent in self.agent_list.backup_agents():
            ip = agent.entry.agent_ip
            self.network.counter.count(Category.CONTROL)  # probe out
            self.probe_messages += 1
            if ip >= 0 and self.network.is_online(ip):
                self.network.counter.count(Category.CONTROL)  # probe reply
                self.probe_messages += 1
                if self.agent_list.restore_from_backup(agent.node_id):
                    restored += 1
            else:
                self.agent_list.drop_backup(agent.node_id)
        return restored

    def adopt_entries(self, entries: list[AgentListEntry]) -> int:
        """Add newly selected agents (initial expertise 1); returns adds."""
        added = 0
        for entry in entries:
            if entry.agent_node_id == self.node_id:
                continue
            if self.agent_list.add(entry):
                added += 1
        return added


def _make_initiator(backend: CipherBackend, keys: PeerKeys, ip: int):
    from repro.onion.handshake import HandshakeInitiator

    return HandshakeInitiator(backend, keys.ap, keys.ar, ip)
