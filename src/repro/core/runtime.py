"""Shared transaction runtime — the kernel's common run loop and metrics.

Before the kernel refactor, hiREP (``repro.core.system``) and the baseline
tree (``repro.baselines.base``) each carried their own copy of the
pick-pair logic, the ``run`` loop, the metric collectors, the §5.2 rating
model and the FIFO arrival-serialization helper.  This module is the
single home for all of it:

* :class:`MetricsPipeline` — the three paper metrics (traffic, MSE,
  response time) plus the per-transaction :class:`~repro.core.interface.Outcome`
  log, recorded identically for every system;
* :class:`TransactionRuntime` — base class every reputation system
  extends: workload pair selection, the batch ``run`` loop,
  ``reset_metrics``, and outcome recording;
* :func:`draw_vote` — the §5.2 rating model (honest peers rate with the
  truth, malicious peers invert);
* :func:`serialize_arrivals` — FIFO serialization of response arrivals on
  the requestor's access link (shared by every flooding/gossip system).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import HiRepConfig
from repro.core.interface import Outcome
from repro.core.world import World
from repro.errors import SimulationError
from repro.net.messages import DEFAULT_MESSAGE_BYTES
from repro.net.network import P2PNetwork
from repro.sim.metrics import MessageCounter, MSETracker, ResponseTimeTracker

__all__ = [
    "MetricsPipeline",
    "TransactionRuntime",
    "draw_vote",
    "serialize_arrivals",
]


def draw_vote(
    honest: bool,
    truth: float,
    rng: np.random.Generator,
    good_range: tuple[float, float],
    bad_range: tuple[float, float],
) -> float:
    """One peer's vote about a subject (§5.2 rating model).

    Honest peers rate consistently with the truth; malicious peers invert.
    """
    trustable = truth >= 0.5
    use_good = trustable if honest else not trustable
    lo, hi = good_range if use_good else bad_range
    return float(rng.uniform(lo, hi))


def serialize_arrivals(
    network: P2PNetwork,
    req: int,
    arrivals: list[float],
    *,
    model_transmission: bool = True,
) -> float:
    """FIFO-serialize response arrivals on the requestor's access link.

    Returns the completion time of the last response (NaN when nothing
    arrived — the query never completes).
    """
    if not arrivals:
        return float("nan")
    if not model_transmission:
        return float(max(arrivals))
    bandwidth = network.node(req).bandwidth_kbps
    transmit = network.transmission_ms(bandwidth, DEFAULT_MESSAGE_BYTES)
    done = 0.0
    for arrival in sorted(arrivals):
        done = max(done, arrival) + transmit
    return done


class MetricsPipeline:
    """The paper's three metrics plus the per-transaction outcome log.

    One instance per system; every system records through
    :meth:`record`, so accuracy/latency bookkeeping can never drift
    between hiREP and a baseline.
    """

    def __init__(self, counter: MessageCounter) -> None:
        self.counter = counter
        self.mse = MSETracker()
        self.response_times = ResponseTimeTracker()
        self.outcomes: list[Outcome] = []
        self.transactions_run = 0

    def record(self, outcome: Outcome) -> Outcome:
        """Fold one finished transaction into every collector."""
        self.mse.record(outcome.estimate, outcome.truth)
        if not np.isnan(outcome.response_time_ms):
            self.response_times.record(outcome.response_time_ms)
        self.counter.snapshot()
        self.outcomes.append(outcome)
        self.transactions_run += 1
        return outcome

    def reset(self) -> None:
        """Zero every collector (typically right after bootstrap)."""
        self.counter.reset()
        self.mse.reset()
        self.response_times.reset()
        self.outcomes.clear()
        self.transactions_run = 0


class TransactionRuntime:
    """Base class for every reputation system: workload + metrics loop.

    Subclasses implement :meth:`run_transaction`; everything else — pair
    selection, the batch loop, metric plumbing — lives here once.
    """

    def __init__(
        self, config: HiRepConfig, world: World
    ) -> None:
        self.config = config
        self.world = world
        self.network = world.network
        self.topology = world.topology
        self.truth = world.truth
        #: Workload stream: pair selection (and, for baselines, votes).
        self.rng = world.rng_workload
        self.metrics = MetricsPipeline(self.network.counter)

    # -- metric attribute surface (kept flat for experiment code) ----------

    @property
    def counter(self) -> MessageCounter:
        return self.network.counter

    @property
    def mse(self) -> MSETracker:
        return self.metrics.mse

    @property
    def response_times(self) -> ResponseTimeTracker:
        return self.metrics.response_times

    @property
    def outcomes(self) -> list[Outcome]:
        return self.metrics.outcomes

    @property
    def transactions_run(self) -> int:
        return self.metrics.transactions_run

    @transactions_run.setter
    def transactions_run(self, value: int) -> None:
        self.metrics.transactions_run = value

    # -- workload ----------------------------------------------------------

    def pick_pair(self, requestor: int | None = None) -> tuple[int, int]:
        """Pick a (requestor, provider) pair of distinct online nodes."""
        online = self.network.online_nodes()
        if len(online) < 2:
            raise SimulationError("fewer than two online nodes")
        if requestor is None:
            requestor = online[int(self.rng.integers(0, len(online)))]
        provider = requestor
        while provider == requestor:
            provider = online[int(self.rng.integers(0, len(online)))]
        return requestor, provider

    def run_transaction(
        self, requestor: int | None = None, provider: int | None = None
    ) -> Outcome:
        """Execute one transaction cycle."""
        raise NotImplementedError

    def run(
        self, transactions: int, requestor: int | None = None
    ) -> list[Outcome]:
        """Run a batch of transactions (fixed requestor when given)."""
        return [self.run_transaction(requestor) for _ in range(transactions)]

    def reset_metrics(self) -> None:
        """Zero every collector (typically right after bootstrap)."""
        self.metrics.reset()

    def _record(self, outcome: Outcome) -> Outcome:
        return self.metrics.record(outcome)

    def _serialize_at(self, req: int, arrivals: list[float]) -> float:
        """FIFO response serialization at ``req`` under this config."""
        return serialize_arrivals(
            self.network,
            req,
            arrivals,
            model_transmission=self.config.model_transmission,
        )
