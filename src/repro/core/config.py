"""hiREP configuration — the paper's Table 1 plus protocol constants.

The scanned Table 1 is partially garbled; values marked *reconstructed* were
recovered from the prose and figure captions (the reconstruction rationale
is tabulated in DESIGN.md).  Everything is exposed as one frozen dataclass
so experiments can declare exactly which knob they sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any

from repro.errors import ConfigError

__all__ = ["HiRepConfig", "DEFAULT_CONFIG", "TABLE1_ROWS"]


@dataclass(frozen=True)
class HiRepConfig:
    """All simulation and protocol parameters.

    Attributes mirror Table 1 where applicable; additional attributes cover
    protocol details the paper fixes in prose (§3.4–3.5).
    """

    # --- Table 1 -----------------------------------------------------------
    network_size: int = 1000
    """Number of peers in the network (Table 1; *reconstructed*)."""

    avg_neighbors: float = 4.0
    """Average number of overlay neighbours per peer (Fig. 5 sweeps 2/3/4)."""

    good_rating: tuple[float, float] = (0.6, 1.0)
    """Scope of a *good* reputation rating (§5.2)."""

    bad_rating: tuple[float, float] = (0.0, 0.4)
    """Scope of a *bad* reputation rating (§5.2)."""

    onion_relays: int = 5
    """Relays a peer includes in its onion (Fig. 8 sweeps 5/7/10)."""

    trusted_agents: int = 60
    """Capacity of a peer's trusted-agent list (Table 1 default 60)."""

    poor_agent_fraction: float = 0.10
    """Fraction of reputation agents that evaluate inconsistently (Table 1)."""

    ttl: int = 4
    """Flood TTL for voting baseline and agent discovery (§5.3: 4 in sim)."""

    tokens: int = 10
    """Initial tokens on an agent-list request (Table 1)."""

    # --- protocol constants from prose --------------------------------------
    agents_queried: int = 10
    """Trusted agents contacted per trust-value query (*reconstructed*; the
    traffic bound is O(C) in this count — Fig. 5's 'hirep' curve requires a
    small C for 'less than half of voting-2' to hold)."""

    refill_threshold: int = 50
    """Probe backups / rediscover when the list drops below this (§3.4.3
    'some threshold, say 50')."""

    expertise_alpha: float = 0.5
    """EWMA factor α in accuracy = α·A_c + (1-α)·A_p, α ∈ (0, 1) (§3.4.3)."""

    eviction_threshold: float = 0.4
    """Evict agents whose expertise falls below this (Fig. 6: hirep-4/6/8 ⇒
    0.4 / 0.6 / 0.8)."""

    initial_expertise: float = 1.0
    """Expertise assigned to a freshly selected agent (§3.4.3)."""

    backup_cache_size: int = 30
    """Most-recently-first backup agent cache capacity (§3.4.3)."""

    malicious_fraction: float = 0.10
    """Fraction of *peers* voting maliciously in the voting baseline
    (Figs. 6–7 assume 10% by default)."""

    untrusted_peer_fraction: float = 0.5
    """Fraction of peers whose true trust value is 0 (§5.2: random)."""

    report_scope: str = "answered"
    """Who receives transaction reports: ``"answered"`` (the agents that
    served this query — keeps per-transaction traffic at 3c(o+1)) or
    ``"all"`` (§3.6's literal "all of its trusted agents" — the full list,
    costing an extra (|list|-c)·(o+1) messages per transaction)."""

    # --- timeout / retry / backoff (robustness extension) --------------------
    query_timeout_ms: float | None = None
    """Deadline for one trust-query attempt.  ``None`` (default) disables
    the whole timeout/retry plane and reproduces the paper runs bit for
    bit; set it (e.g. 3000.0) to notice unanswered agents and retry."""

    max_query_retries: int = 2
    """Retry rounds for agents that miss a query deadline (0 = give up
    after the first timeout).  Only active when ``query_timeout_ms`` is
    set."""

    retry_backoff_factor: float = 2.0
    """Exponential backoff: attempt *k* waits
    ``query_timeout_ms * factor**k`` before declaring the round lost."""

    agent_miss_limit: int = 3
    """Park an agent in the backup cache after this many *consecutive*
    queries it failed to answer (0 = never park on misses).  Only active
    when ``query_timeout_ms`` is set."""

    # --- engineering knobs ---------------------------------------------------
    crypto_backend: str = "simulated"
    """'simulated' for sweeps, 'rsa' for full-crypto runs."""

    seed: int = 2006
    """Master RNG seed."""

    topology_kind: str = "power_law"
    """Topology generator (power_law reproduces BRITE's Barabási model)."""

    model_transmission: bool = True
    """Model FIFO serialization on access links (needed for Fig. 8)."""

    def __post_init__(self) -> None:
        if self.network_size < 10:
            raise ConfigError(f"network_size must be >= 10, got {self.network_size}")
        if self.avg_neighbors < 1:
            raise ConfigError(f"avg_neighbors must be >= 1, got {self.avg_neighbors}")
        for name in ("good_rating", "bad_rating"):
            lo, hi = getattr(self, name)
            if not (0.0 <= lo <= hi <= 1.0):
                raise ConfigError(f"{name} must satisfy 0 <= lo <= hi <= 1, got ({lo}, {hi})")
        if self.onion_relays < 0:
            raise ConfigError(f"onion_relays must be >= 0, got {self.onion_relays}")
        if self.trusted_agents < 1:
            raise ConfigError(f"trusted_agents must be >= 1, got {self.trusted_agents}")
        if not 0.0 <= self.poor_agent_fraction <= 1.0:
            raise ConfigError(
                f"poor_agent_fraction must be in [0,1], got {self.poor_agent_fraction}"
            )
        if self.ttl < 0:
            raise ConfigError(f"ttl must be >= 0, got {self.ttl}")
        if self.tokens < 1:
            raise ConfigError(f"tokens must be >= 1, got {self.tokens}")
        if self.agents_queried < 1:
            raise ConfigError(f"agents_queried must be >= 1, got {self.agents_queried}")
        if not 0.0 < self.expertise_alpha < 1.0:
            raise ConfigError(
                f"expertise_alpha must be in (0,1), got {self.expertise_alpha}"
            )
        if not 0.0 <= self.eviction_threshold <= 1.0:
            raise ConfigError(
                f"eviction_threshold must be in [0,1], got {self.eviction_threshold}"
            )
        if not 0.0 <= self.malicious_fraction <= 1.0:
            raise ConfigError(
                f"malicious_fraction must be in [0,1], got {self.malicious_fraction}"
            )
        if not 0.0 <= self.untrusted_peer_fraction <= 1.0:
            raise ConfigError(
                f"untrusted_peer_fraction must be in [0,1], got {self.untrusted_peer_fraction}"
            )
        if self.query_timeout_ms is not None and self.query_timeout_ms <= 0:
            raise ConfigError(
                f"query_timeout_ms must be > 0 (or None), got {self.query_timeout_ms}"
            )
        if self.max_query_retries < 0:
            raise ConfigError(
                f"max_query_retries must be >= 0, got {self.max_query_retries}"
            )
        if self.retry_backoff_factor < 1.0:
            raise ConfigError(
                f"retry_backoff_factor must be >= 1, got {self.retry_backoff_factor}"
            )
        if self.agent_miss_limit < 0:
            raise ConfigError(
                f"agent_miss_limit must be >= 0, got {self.agent_miss_limit}"
            )
        if self.crypto_backend not in ("simulated", "rsa"):
            raise ConfigError(f"unknown crypto_backend {self.crypto_backend!r}")
        if self.report_scope not in ("answered", "all"):
            raise ConfigError(f"report_scope must be 'answered' or 'all', got {self.report_scope!r}")
        if self.backup_cache_size < 0:
            raise ConfigError(f"backup_cache_size must be >= 0, got {self.backup_cache_size}")

    def with_(self, **overrides: Any) -> "HiRepConfig":
        """Return a copy with the given fields replaced (validated)."""
        return replace(self, **overrides)

    def as_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


DEFAULT_CONFIG = HiRepConfig()

#: Table 1 rendered as (name, default, description, provenance) rows — the
#: ``table1`` experiment prints these.
TABLE1_ROWS: list[tuple[str, str, str, str]] = [
    ("Network size", "1000", "Number of peers in the network", "reconstructed"),
    ("Neighbors per node", "4", "Average number of neighbors each peer", "reconstructed (Fig. 5 sweeps 2/3/4)"),
    ("Good rating", "[0.6, 1.0]", "Scope of good reputation rating", "paper §5.2"),
    ("Bad rating", "[0.0, 0.4]", "Scope of bad reputation rating", "paper §5.2"),
    ("Relays per onion", "5", "Agencies a peer includes in its onion", "reconstructed (Fig. 8 sweeps 5/7/10)"),
    ("Trusted agents", "60", "Amount of trusted agents on a peer's list", "paper Table 1"),
    ("Poor performance agents", "10%", "Agents which cannot make proper evaluations", "paper Table 1"),
    ("TTL", "4", "TTL limit used in pure voting flooding", "paper Table 1"),
    ("Token number", "10", "Initial tokens for obtaining agent lists", "paper Table 1"),
]
