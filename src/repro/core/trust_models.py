"""Trust-value computation models used by reputation agents.

The paper deliberately leaves the computation model open ("a reputation
agent computes the trust value of each node using its own trust value
computation model", §3.2) and its *simulation* abstracts agent capability
into two classes (§5.2): a **good** agent rates trustable peers in
[0.6, 1.0] and untrustable peers in [0, 0.4]; a **poor** agent rates
inconsistently (the ranges swapped).  :class:`QualityDrivenModel` implements
exactly that.

Two report-driven models are also provided — they compute trust values from
the authentic transaction reports an agent accumulates (§4.2.3: "with the
authentic transaction reports, reputation agents can decide the trust value
of the peer using the next level computation model"), and are used in the
extension experiments.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.crypto.hashing import NodeID
from repro.errors import ConfigError

__all__ = [
    "TrustModel",
    "QualityDrivenModel",
    "ReportAverageModel",
    "EWMAReportModel",
]


class TrustModel(abc.ABC):
    """Strategy an agent uses to produce a trust value for a subject."""

    @abc.abstractmethod
    def evaluate(
        self,
        subject: NodeID,
        subject_truth: float,
        rng: np.random.Generator,
    ) -> float:
        """Return the agent's trust value for ``subject`` in [0, 1].

        ``subject_truth`` is the simulation's ground truth; models that are
        driven by accumulated reports ignore it.
        """

    def observe_report(self, subject: NodeID, outcome: float) -> None:
        """Fold an authenticated transaction report into the model."""
        # Default: evaluation does not depend on reports.


class QualityDrivenModel(TrustModel):
    """The paper's simulation model (§5.2).

    ``good=True``: consistent ratings; ``good=False``: inverted ratings.
    """

    def __init__(
        self,
        good: bool,
        good_range: tuple[float, float] = (0.6, 1.0),
        bad_range: tuple[float, float] = (0.0, 0.4),
    ) -> None:
        for lo, hi in (good_range, bad_range):
            if not 0.0 <= lo <= hi <= 1.0:
                raise ConfigError(f"invalid rating range ({lo}, {hi})")
        self.good = good
        self.good_range = good_range
        self.bad_range = bad_range

    def evaluate(
        self, subject: NodeID, subject_truth: float, rng: np.random.Generator
    ) -> float:
        trustable = subject_truth >= 0.5
        # A good agent matches range to truth; a poor agent inverts it.
        use_good_range = trustable if self.good else not trustable
        lo, hi = self.good_range if use_good_range else self.bad_range
        return float(rng.uniform(lo, hi))


class ReportAverageModel(TrustModel):
    """Mean of all authenticated reports; prior 0.5 before any evidence."""

    def __init__(self, prior: float = 0.5) -> None:
        if not 0.0 <= prior <= 1.0:
            raise ConfigError(f"prior must be in [0,1], got {prior}")
        self.prior = prior
        self._sums: dict[NodeID, float] = {}
        self._counts: dict[NodeID, int] = {}

    def observe_report(self, subject: NodeID, outcome: float) -> None:
        self._sums[subject] = self._sums.get(subject, 0.0) + outcome
        self._counts[subject] = self._counts.get(subject, 0) + 1

    def evaluate(
        self, subject: NodeID, subject_truth: float, rng: np.random.Generator
    ) -> float:
        count = self._counts.get(subject, 0)
        if count == 0:
            return self.prior
        return self._sums[subject] / count

    def report_count(self, subject: NodeID) -> int:
        return self._counts.get(subject, 0)


class EWMAReportModel(TrustModel):
    """Exponentially weighted report history — favours recent behaviour.

    Captures peers that turn malicious after building reputation (the
    oscillation attack EigenTrust-era systems worry about).
    """

    def __init__(self, alpha: float = 0.3, prior: float = 0.5) -> None:
        if not 0.0 < alpha < 1.0:
            raise ConfigError(f"alpha must be in (0,1), got {alpha}")
        if not 0.0 <= prior <= 1.0:
            raise ConfigError(f"prior must be in [0,1], got {prior}")
        self.alpha = alpha
        self.prior = prior
        self._values: dict[NodeID, float] = {}

    def observe_report(self, subject: NodeID, outcome: float) -> None:
        prev = self._values.get(subject, self.prior)
        self._values[subject] = self.alpha * outcome + (1.0 - self.alpha) * prev

    def evaluate(
        self, subject: NodeID, subject_truth: float, rng: np.random.Generator
    ) -> float:
        return self._values.get(subject, self.prior)
