"""System orchestrator: builds a complete hiREP deployment and runs the
paper's transaction workload over it (§3.6, §5.2).

One :class:`HiRepSystem` owns the network, every peer, every reputation
agent, the onion router, and the metric collectors.  A *transaction* is the
paper's full cycle:

1. churn step (optional);
2. requestor list maintenance (backup probes + token/TTL discovery);
3. trust-value query to the requestor's trusted agents through onions;
4. estimate → download → observed outcome (the provider's ground truth);
5. expertise updates, hirep-θ eviction, signed transaction reports.

Every message of steps 3–5 travels hop-by-hop through the DES engine, so
traffic counts (Fig. 5), accuracy (Figs. 6–7) and response times (Fig. 8)
all fall out of the same run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.agent import ReputationAgent
from repro.core.config import HiRepConfig
from repro.core.discovery import discover_agent_lists
from repro.core.messages import (
    AgentListEntry,
    KeyUpdateAnnouncement,
    TransactionReport,
    TrustValueRequest,
    TrustValueResponse,
)
from repro.core.peer import HiRepPeer, QueryResult
from repro.core.ranking import rank_within_list, select_agents
from repro.core.trust_models import QualityDrivenModel, TrustModel
from repro.core.world import World
from repro.crypto.backend import get_backend
from repro.crypto.hashing import NodeID
from repro.crypto.keys import PeerKeys
from repro.crypto.nonce import NonceRegistry
from repro.errors import NoTrustedAgentsError, ProtocolError, SimulationError
from repro.net.churn import ChurnModel
from repro.net.faults import FaultPlane
from repro.net.latency import LatencyModel
from repro.net.messages import Category
from repro.onion.handshake import HandshakeResponder
from repro.onion.relay import RelayRegistry
from repro.onion.routing import OnionRouter
from repro.sim.metrics import MessageCounter, MSETracker, ResponseTimeTracker
from repro.sim.rng import spawn

__all__ = ["HiRepSystem", "TransactionOutcome"]

#: Categories that constitute the paper's "trust query process" traffic.
TRUST_TRAFFIC_CATEGORIES = (
    Category.TRUST_QUERY,
    Category.TRUST_RESPONSE,
    Category.TRANSACTION_REPORT,
)


@dataclass
class TransactionOutcome:
    """Everything an experiment wants to know about one transaction."""

    index: int
    requestor: int
    provider: int
    estimate: float
    truth: float
    squared_error: float
    response_time_ms: float
    trust_messages: int
    total_messages: int
    answered: int
    asked: int


class HiRepSystem:
    """A full hiREP deployment over a simulated unstructured P2P network."""

    def __init__(
        self,
        config: HiRepConfig | None = None,
        *,
        latency_model: LatencyModel | None = None,
        churn: ChurnModel | None = None,
        model_factory=None,
        topology=None,
        faults: FaultPlane | None = None,
    ) -> None:
        """Build the network, keys, peers, agents, and wiring.

        Parameters
        ----------
        model_factory:
            ``(good: bool, rng) -> TrustModel`` — override the per-agent
            trust model (defaults to the paper's quality-driven model).
        topology:
            Optional explicit :class:`~repro.net.topology.Topology` (e.g.
            a :class:`~repro.net.overlay.DynamicOverlay` snapshot) instead
            of a generated one; node count must match the config.
        faults:
            Optional :class:`~repro.net.faults.FaultPlane` installed on
            the network before any traffic flows.  The plane draws from
            its own seeded generator, so passing ``None`` reproduces the
            reliable-network runs bit for bit.
        """
        self.config = config or HiRepConfig()
        cfg = self.config
        self.world = World.from_config(cfg, latency_model, topology=topology)
        self._rng_keys = self.world.rng_keys
        self._rng_agents = self.world.rng_agents
        self._rng_workload = self.world.rng_workload
        self._rng_peers = self.world.rng_peers

        self.backend = get_backend(cfg.crypto_backend)
        self.topology = self.world.topology
        self.network = self.world.network
        self.churn = churn
        self.faults = faults
        if faults is not None:
            faults.install(self.network)
        self.router = OnionRouter(self.network, self.backend)
        self.relay_registry = RelayRegistry()

        # Ground truth: each peer is trusted (1) or untrusted (0) (§5.2).
        self.truth = self.world.truth

        # Key material and peers.
        self.peers: list[HiRepPeer] = []
        self.truth_by_id: dict[NodeID, float] = {}
        peer_rngs = spawn(self._rng_peers, cfg.network_size)
        for ip in range(cfg.network_size):
            keys = PeerKeys.generate(self.backend, self._rng_keys)
            peer = HiRepPeer(
                ip=ip,
                keys=keys,
                backend=self.backend,
                config=cfg,
                network=self.network,
                router=self.router,
                relay_registry=self.relay_registry,
                rng=peer_rngs[ip],
            )
            self.peers.append(peer)
            self.truth_by_id[keys.node_id] = float(self.truth[ip])
            self.relay_registry.register(
                ip,
                HandshakeResponder(
                    self.backend, keys.ap, keys.ar, ip, NonceRegistry(peer_rngs[ip])
                ),
            )
            self.router.register_node(ip, keys.ar, self._make_endpoint(ip))
            self.network.register_handler(ip, self.router.handle)

        # Reputation agents: agent-capable nodes, split good/poor (§5.2).
        self.agents: dict[int, ReputationAgent] = {}
        factory = model_factory or (
            lambda good, rng: QualityDrivenModel(
                good, cfg.good_rating, cfg.bad_rating
            )
        )
        capable = self.network.agent_capable_nodes()
        poor_count = int(round(cfg.poor_agent_fraction * len(capable)))
        poor_set = set(
            int(i)
            for i in self._rng_agents.choice(
                capable, size=min(poor_count, len(capable)), replace=False
            )
        )
        agent_rngs = spawn(self._rng_agents, len(capable))
        for agent_rng, ip in zip(agent_rngs, capable):
            good = ip not in poor_set
            model: TrustModel = factory(good, agent_rng)
            self.agents[ip] = ReputationAgent(
                ip=ip,
                keys=self.peers[ip].keys,
                backend=self.backend,
                model=model,
                rng=agent_rng,
                truth_oracle=lambda node_id: self.truth_by_id.get(node_id, 0.5),
            )
        self.agent_quality: dict[int, bool] = {
            ip: ip not in poor_set for ip in capable
        }

        # Metrics.
        self.mse = MSETracker()
        self.response_times = ResponseTimeTracker()
        self.transactions_run = 0
        self.outcomes: list[TransactionOutcome] = []
        self._bootstrapped = False

        # Attack hook (repro.attacks): when set, discovery consults it first
        # so compromised nodes can return forged trusted-agent lists
        # (§4.2.1's recommendation-manipulation attack).
        self.discovery_list_hook = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _make_endpoint(self, ip: int):
        """Dispatch onion-delivered protocol messages at node ``ip``."""

        def endpoint(message, sent_at: float) -> None:
            if isinstance(message, TrustValueRequest):
                agent = self.agents.get(ip)
                if agent is None:
                    return  # not serving as an agent: drop
                fresh = self.peers[ip].fresh_onion(self.relay_pool())
                try:
                    response = agent.handle_trust_request(message, fresh)
                except ProtocolError:
                    # Sealed to a key this agent no longer holds (e.g. the
                    # requestor has a stale SP after a key rotation) or
                    # malformed: drop, as a deployed agent would.
                    return
                self.router.send(
                    ip,
                    message.requestor_onion,
                    response,
                    category=Category.TRUST_RESPONSE,
                )
            elif isinstance(message, TrustValueResponse):
                self.peers[ip].on_onion_message(message, sent_at)
            elif isinstance(message, TransactionReport):
                agent = self.agents.get(ip)
                if agent is not None:
                    agent.handle_report(message)
            elif isinstance(message, KeyUpdateAnnouncement):
                agent = self.agents.get(ip)
                if agent is not None:
                    agent.handle_key_update(message)

        return endpoint

    def relay_pool(self) -> list[int]:
        """Nodes eligible as onion relays (every online node)."""
        return self.network.online_nodes()

    @property
    def counter(self) -> MessageCounter:
        return self.network.counter

    # ------------------------------------------------------------------
    # Bootstrap (§3.4.1)
    # ------------------------------------------------------------------

    def self_entry_for(self, ip: int) -> AgentListEntry | None:
        """A reputation agent's self-advertisement during discovery."""
        if ip not in self.agents:
            return None
        peer = self.peers[ip]
        onion = peer.ensure_onion(self.relay_pool())
        return AgentListEntry(
            weight=self.config.initial_expertise,
            agent_node_id=peer.node_id,
            agent_onion=onion,
            agent_sp=peer.keys.sp,
            agent_ip=ip,
        )

    def _discover_for(self, peer: HiRepPeer, wanted: int) -> int:
        """One discovery round for ``peer``; rank, select, adopt. Returns adds."""
        cfg = self.config
        outcome = discover_agent_lists(
            self.topology,
            peer.ip,
            cfg.tokens,
            cfg.ttl,
            rng=peer.rng,
            get_list=self._discovery_list_for,
            get_self_entry=self.self_entry_for,
            online=self.network.is_online,
        )
        self.counter.count(Category.AGENT_DISCOVERY, outcome.request_messages)
        self.counter.count(Category.AGENT_DISCOVERY_REPLY, outcome.reply_messages)
        per_list_ranks = []
        candidates: dict[NodeID, AgentListEntry] = {}
        for reply in outcome.replies:
            entries = list(reply.entries)
            if reply.self_entry is not None:
                entries.append(reply.self_entry)
            per_list_ranks.append(rank_within_list(entries, wanted))
            for entry in entries:
                candidates.setdefault(entry.agent_node_id, entry)
        if not candidates:
            return 0
        selected = select_agents(
            list(candidates.values()), per_list_ranks, wanted, peer.rng
        )
        return peer.adopt_entries(selected)

    def _discovery_list_for(self, node: int):
        """Node ``node``'s trusted-agent list as seen by discovery.

        Compromised nodes (``discovery_list_hook``) may return forged lists.
        """
        if self.discovery_list_hook is not None:
            forged = self.discovery_list_hook(node)
            if forged is not None:
                return forged
        return self.peers[node].agent_list.as_entries() or None

    def bootstrap(self, rounds: int = 2) -> None:
        """Give every peer an initial trusted-agent list.

        Two rounds by default: the first seeds from agent self-entries, the
        second propagates the now-existing lists so peers reach capacity —
        "the reputation list initialization is executed only once for each
        peer" (§4.1), so experiments reset the message counter afterwards.
        """
        if self._bootstrapped:
            return
        order = np.arange(len(self.peers))
        for _ in range(rounds):
            self._rng_workload.shuffle(order)
            for i in order:
                peer = self.peers[int(i)]
                if not self.network.is_online(peer.ip):
                    continue
                wanted = peer.agent_list.capacity - len(peer.agent_list)
                if wanted > 0:
                    self._discover_for(peer, wanted)
        self._bootstrapped = True

    # ------------------------------------------------------------------
    # Transactions (§3.6, §5.2)
    # ------------------------------------------------------------------

    def maintain(self, peer: HiRepPeer) -> None:
        """§3.4.3 list maintenance: probe backups, rediscover if short."""
        if not peer.agent_list.needs_refill(self.config.refill_threshold):
            return
        peer.probe_backups()
        if peer.agent_list.needs_refill(self.config.refill_threshold):
            wanted = peer.agent_list.capacity - len(peer.agent_list)
            self._discover_for(peer, wanted)

    def pick_pair(self, requestor: int | None = None) -> tuple[int, int]:
        """Pick a (requestor, provider) pair of distinct online nodes."""
        online = self.network.online_nodes()
        if len(online) < 2:
            raise SimulationError("fewer than two online nodes")
        if requestor is None:
            r_idx = int(self._rng_workload.integers(0, len(online)))
            requestor = online[r_idx]
        provider = requestor
        while provider == requestor:
            provider = online[int(self._rng_workload.integers(0, len(online)))]
        return requestor, provider

    def run_transaction(
        self, requestor: int | None = None, provider: int | None = None
    ) -> TransactionOutcome:
        """Execute one full transaction cycle and record metrics.

        An explicitly requested ``provider`` must exist and be online —
        querying trust about a node that cannot serve the download is a
        caller bug, so it raises :class:`~repro.errors.SimulationError`
        instead of silently producing a meaningless estimate.
        """
        if not self._bootstrapped:
            self.bootstrap()
        if self.churn is not None:
            # Shield the requestor for this step only — a permanent
            # protected-set entry would exempt every past requestor from
            # churn for the rest of the run.
            protect = {requestor} if requestor is not None else set()
            self.churn.step(
                self.network, self._rng_workload, extra_protected=protect
            )
        req, prov = self.pick_pair(requestor)
        if provider is not None:
            if not 0 <= provider < len(self.peers):
                raise SimulationError(f"provider {provider} does not exist")
            if not self.network.is_online(provider):
                raise SimulationError(f"provider {provider} is offline")
            prov = provider
        peer = self.peers[req]

        self.maintain(peer)

        trust_before = self._trust_traffic()
        total_before = self.counter.total
        try:
            peer.start_query(self.truth_key(prov), self.relay_pool())
        except NoTrustedAgentsError:
            # Query impossible this round: still record the blind estimate.
            result = QueryResult(
                subject=self.truth_key(prov),
                estimate=0.5,
                responses=[],
                response_time_ms=float("nan"),
                answered=0,
                asked=0,
            )
        else:
            self.network.run()
            result = peer.finish_query()
            truth = float(self.truth[prov])
            peer.settle_transaction(result, truth, self.relay_pool())
            self.network.run()

        truth = float(self.truth[prov])
        sq = self.mse.record(result.estimate, truth)
        if not np.isnan(result.response_time_ms):
            self.response_times.record(result.response_time_ms)
        self.counter.snapshot()
        outcome = TransactionOutcome(
            index=self.transactions_run,
            requestor=req,
            provider=prov,
            estimate=result.estimate,
            truth=truth,
            squared_error=sq,
            response_time_ms=result.response_time_ms,
            trust_messages=self._trust_traffic() - trust_before,
            total_messages=self.counter.total - total_before,
            answered=result.answered,
            asked=result.asked,
        )
        self.outcomes.append(outcome)
        self.transactions_run += 1
        return outcome

    def run(
        self, transactions: int, requestor: int | None = None
    ) -> list[TransactionOutcome]:
        """Run a batch of transactions (fixed requestor when given)."""
        return [self.run_transaction(requestor) for _ in range(transactions)]

    # ------------------------------------------------------------------
    # Periodic key update (§3.5, last paragraph)
    # ------------------------------------------------------------------

    def rotate_peer_keys(self, ip: int) -> PeerKeys:
        """Rotate peer ``ip``'s keypairs and propagate the update.

        Protocol order matters: the announcement is signed with the *old*
        SR and travels first; only then does the peer adopt the new
        material and the simulation wiring (onion router key, handshake
        responder, truth oracle) follow the identity.
        """
        peer = self.peers[ip]
        old_node_id = peer.node_id
        new_keys = peer.keys.rotated(self.backend, self._rng_keys)
        peer.announce_key_update(new_keys)
        self.network.run()  # deliver announcements under the old identity
        peer.adopt_keys(new_keys)
        self.router.register_node(ip, new_keys.ar)
        self.relay_registry.register(
            ip,
            HandshakeResponder(
                self.backend, new_keys.ap, new_keys.ar, ip, NonceRegistry(peer.rng)
            ),
        )
        truth = self.truth_by_id.pop(old_node_id)
        self.truth_by_id[new_keys.node_id] = truth
        return new_keys

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def truth_key(self, ip: int) -> NodeID:
        """The nodeID of peer ``ip`` (what trust queries are keyed by)."""
        return self.peers[ip].node_id

    def _trust_traffic(self) -> int:
        return sum(
            self.counter.by_category.get(cat, 0)
            for cat in TRUST_TRAFFIC_CATEGORIES
        )

    def reset_metrics(self) -> None:
        """Zero every collector (typically right after bootstrap)."""
        self.counter.reset()
        self.mse.reset()
        self.response_times.reset()
        self.outcomes.clear()
        self.transactions_run = 0

    def retry_stats(self) -> dict[str, int]:
        """Aggregate timeout/retry accounting across every peer."""
        return {
            "retries_sent": sum(p.retries_sent for p in self.peers),
            "queries_timed_out": sum(p.queries_timed_out for p in self.peers),
            "unresponsive_parked": sum(p.unresponsive_parked for p in self.peers),
            "circuits_rebuilt": sum(p.circuits_rebuilt for p in self.peers),
        }

    def good_agent_ips(self) -> list[int]:
        return [ip for ip, good in self.agent_quality.items() if good]

    def poor_agent_ips(self) -> list[int]:
        return [ip for ip, good in self.agent_quality.items() if not good]
