"""System façade: builds a complete hiREP deployment and runs the
paper's transaction workload over it (§3.6, §5.2).

:class:`HiRepSystem` is the thin façade over the kernel's layers (see
``docs/architecture.md``): construction builds a
:class:`~repro.core.world.World` and the protocol wiring
(:func:`~repro.core.services.build_wiring`, which owns the
:class:`~repro.core.dispatch.ProtocolDispatcher` routing table), and the
transaction cycle composes the services:

1. churn step (optional);
2. requestor list maintenance (:class:`~repro.core.services.MaintenanceService`);
3. trust query + settlement (:class:`~repro.core.services.QueryService`);
4. metric recording (:class:`~repro.core.runtime.MetricsPipeline`).

Every message travels hop-by-hop through the DES engine, so traffic
counts (Fig. 5), accuracy (Figs. 6–7) and response times (Fig. 8) all
fall out of the same run.
"""

from __future__ import annotations

from repro.core.config import HiRepConfig
from repro.core.dispatch import Tracer
from repro.core.interface import Outcome
from repro.core.messages import AgentListEntry
from repro.core.peer import HiRepPeer
from repro.core.runtime import TransactionRuntime
from repro.core.services import (
    DiscoveryHook,
    KeyRotationService,
    MaintenanceService,
    ModelFactory,
    QueryService,
    build_wiring,
)
from repro.core.world import World
from repro.crypto.backend import get_backend
from repro.crypto.hashing import NodeID
from repro.crypto.keys import PeerKeys
from repro.errors import SimulationError
from repro.net.churn import ChurnModel
from repro.net.faults import FaultPlane
from repro.net.latency import LatencyModel
from repro.core.semantics import TRUST_TRAFFIC_CATEGORIES as _TRUST_TRAFFIC_CATEGORIES

__all__ = ["HiRepSystem", "TransactionOutcome"]

#: Categories that constitute the paper's "trust query process" traffic.
#: Canonical definition lives in the shared semantics seam; re-exported
#: here for backwards compatibility (repro.serve imports it from us).
TRUST_TRAFFIC_CATEGORIES = _TRUST_TRAFFIC_CATEGORIES

#: Historical alias — hiREP outcomes now use the unified kernel record.
TransactionOutcome = Outcome


class HiRepSystem(TransactionRuntime):
    """A full hiREP deployment over a simulated unstructured P2P network."""

    def __init__(
        self,
        config: HiRepConfig | None = None,
        *,
        latency_model: LatencyModel | None = None,
        churn: ChurnModel | None = None,
        model_factory: ModelFactory | None = None,
        topology=None,
        faults: FaultPlane | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        """Build the network, keys, peers, agents, and wiring.

        Parameters
        ----------
        model_factory:
            ``(good: bool, rng) -> TrustModel`` — override the per-agent
            trust model (defaults to the paper's quality-driven model).
        topology:
            Optional explicit :class:`~repro.net.topology.Topology` (e.g.
            a :class:`~repro.net.overlay.DynamicOverlay` snapshot) instead
            of a generated one; node count must match the config.
        faults:
            Optional :class:`~repro.net.faults.FaultPlane` installed on
            the network before any traffic flows.  The plane draws from
            its own seeded generator, so passing ``None`` reproduces the
            reliable-network runs bit for bit.
        tracer:
            Optional :class:`~repro.core.dispatch.Tracer` observing every
            dispatched protocol message (see ``docs/architecture.md``).
        """
        config = config or HiRepConfig()
        world = World.from_config(config, latency_model, topology=topology)
        super().__init__(config, world)
        self.churn = churn
        self.faults = faults
        if faults is not None:
            faults.install(self.network)

        self.backend = get_backend(config.crypto_backend)
        self.wiring = build_wiring(
            config,
            world,
            self.backend,
            model_factory=model_factory,
            tracer=tracer,
        )
        self.router = self.wiring.router
        self.relay_registry = self.wiring.relay_registry
        self.dispatcher = self.wiring.dispatcher
        self.peers = self.wiring.peers
        self.agents = self.wiring.agents
        self.agent_quality = self.wiring.agent_quality
        self.truth_by_id = self.wiring.truth_by_id

        self.maintenance = MaintenanceService(config, world, self.wiring)
        self.queries = QueryService(world, self.wiring)
        self.key_rotation = KeyRotationService(world, self.wiring)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _make_endpoint(self, ip: int):
        """The dispatch entry point for node ``ip`` (see repro.core.dispatch).

        Kept for callers that rewrap a node's endpoint (e.g. the sybil
        attack interposes on its host before delegating back).
        """
        return self.dispatcher.endpoint(ip)

    def relay_pool(self) -> list[int]:
        """Nodes eligible as onion relays (every online node)."""
        return self.network.online_nodes()

    # ------------------------------------------------------------------
    # Bootstrap (§3.4.1) and maintenance (§3.4.3)
    # ------------------------------------------------------------------

    @property
    def discovery_list_hook(self) -> DiscoveryHook | None:
        """Attack hook: forged discovery lists (see MaintenanceService)."""
        return self.maintenance.discovery_list_hook

    @discovery_list_hook.setter
    def discovery_list_hook(self, hook: DiscoveryHook | None) -> None:
        self.maintenance.discovery_list_hook = hook

    @property
    def _bootstrapped(self) -> bool:
        return self.maintenance.bootstrapped

    @_bootstrapped.setter
    def _bootstrapped(self, value: bool) -> None:
        self.maintenance.bootstrapped = value

    def self_entry_for(self, ip: int) -> AgentListEntry | None:
        """A reputation agent's self-advertisement during discovery."""
        return self.maintenance.self_entry_for(ip)

    def bootstrap(self, rounds: int = 2) -> None:
        """Give every peer an initial trusted-agent list (§3.4.1)."""
        self.maintenance.bootstrap(rounds)

    def maintain(self, peer: HiRepPeer) -> None:
        """§3.4.3 list maintenance: probe backups, rediscover if short."""
        self.maintenance.maintain(peer)

    # ------------------------------------------------------------------
    # Transactions (§3.6, §5.2)
    # ------------------------------------------------------------------

    def run_transaction(
        self, requestor: int | None = None, provider: int | None = None
    ) -> Outcome:
        """Execute one full transaction cycle and record metrics.

        An explicitly requested ``provider`` must exist and be online —
        querying trust about a node that cannot serve the download is a
        caller bug, so it raises :class:`~repro.errors.SimulationError`
        instead of silently producing a meaningless estimate.
        """
        if not self._bootstrapped:
            self.bootstrap()
        if self.churn is not None:
            # Shield the requestor for this step only — a permanent
            # protected-set entry would exempt every past requestor from
            # churn for the rest of the run.
            protect = {requestor} if requestor is not None else set()
            self.churn.step(self.network, self.rng, extra_protected=protect)
        req, prov = self.pick_pair(requestor)
        if provider is not None:
            if not 0 <= provider < len(self.peers):
                raise SimulationError(f"provider {provider} does not exist")
            if not self.network.is_online(provider):
                raise SimulationError(f"provider {provider} is offline")
            prov = provider

        self.maintain(self.peers[req])

        trust_before = self._trust_traffic()
        total_before = self.counter.total
        result = self.queries.execute(req, prov)

        truth = float(self.truth[prov])
        err = float(result.estimate) - truth
        outcome = Outcome(
            index=self.transactions_run,
            requestor=req,
            provider=prov,
            estimate=result.estimate,
            truth=truth,
            squared_error=err * err,
            response_time_ms=result.response_time_ms,
            trust_messages=self._trust_traffic() - trust_before,
            total_messages=self.counter.total - total_before,
            answered=result.answered,
            asked=result.asked,
        )
        return self._record(outcome)

    # ------------------------------------------------------------------
    # Periodic key update (§3.5, last paragraph)
    # ------------------------------------------------------------------

    def rotate_peer_keys(self, ip: int) -> PeerKeys:
        """Rotate peer ``ip``'s keypairs and propagate the update (§3.5)."""
        return self.key_rotation.rotate(ip)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def truth_key(self, ip: int) -> NodeID:
        """The nodeID of peer ``ip`` (what trust queries are keyed by)."""
        return self.queries.truth_key(ip)

    def _trust_traffic(self) -> int:
        return sum(
            self.counter.by_category.get(cat, 0)
            for cat in TRUST_TRAFFIC_CATEGORIES
        )

    def retry_stats(self) -> dict[str, int]:
        """Aggregate timeout/retry accounting across every peer."""
        return {
            "retries_sent": sum(p.retries_sent for p in self.peers),
            "queries_timed_out": sum(p.queries_timed_out for p in self.peers),
            "unresponsive_parked": sum(p.unresponsive_parked for p in self.peers),
            "circuits_rebuilt": sum(p.circuits_rebuilt for p in self.peers),
        }

    def good_agent_ips(self) -> list[int]:
        return [ip for ip, good in self.agent_quality.items() if good]

    def poor_agent_ips(self) -> list[int]:
        return [ip for ip, good in self.agent_quality.items() if not good]
