"""Wire sizes — and a real codec — for hiREP protocol messages.

The access-link serialization model (Fig. 8) needs per-message byte sizes.
Rather than a flat default, this module derives each protocol message's
wire size from its actual contents — key material lengths, onion depth,
signature sizes — using a compact TLV-style encoding model:

* every field costs a 2-byte length prefix plus its payload;
* sealed blobs cost the size of their plaintext plus cipher overhead
  (RSA: padded to modulus blocks; simulated backend: modelled at the same
  rate so both backends produce identical traffic *sizes*);
* an onion of depth d is d+1 nested sealed layers around a 16-byte core.

Absolute byte counts are a model, not a packet capture — what matters is
that *relative* sizes are right: onions grow linearly with depth, key
material dominates handshakes, reports are small.

The codec half (:func:`encode` / :func:`decode`) turns any protocol
message into a self-describing framed byte string and back, losslessly:
``decode(encode(m)) == m`` for every message in ``repro.core.messages``
plus the onion/crypto containers they carry.  Encoded bodies are padded up
to ``wire_size(message)`` so the transmitted frame length *is* the modelled
size (plus the fixed :data:`FRAME_OVERHEAD`) whenever the model's estimate
dominates the literal encoding — which holds for the simulated crypto
backend.  ``repro.serve`` ships these frames over real transports.
"""

from __future__ import annotations

import struct
from dataclasses import fields as dataclass_fields
from typing import Any, Callable

from repro.core.messages import (
    AgentListEntry,
    AgentListReply,
    AgentListRequest,
    KeyUpdateAnnouncement,
    SignedResult,
    TransactionReport,
    TrustRequestBody,
    TrustResponseBody,
    TrustValueRequest,
    TrustValueResponse,
)
from repro.crypto.backend import PublicKey
from repro.crypto.simulated import Envelope, SimSignature
from repro.errors import WireError
from repro.onion.onion import Onion, OnionLayer
from repro.onion.routing import OnionPacket

__all__ = [
    "wire_size",
    "encode",
    "decode",
    "FRAME_OVERHEAD",
    "WIRE_VERSION",
    "SEAL_BLOCK_BYTES",
]

_LEN_PREFIX = 2
#: Cipher block granularity: plaintext is padded up to multiples of this
#: (matches a 512-bit RSA modulus).
SEAL_BLOCK_BYTES = 64
_PUBLIC_KEY_BYTES = 72      # 512-bit modulus + exponent + framing
_SIGNATURE_BYTES = 66       # one modulus-sized block + framing
_NODE_ID_BYTES = 20         # SHA-1
_NONCE_BYTES = 8
_VALUE_BYTES = 8            # one float
_IP_BYTES = 4
_ONION_CORE_BYTES = 16


def _sealed(plaintext_bytes: int) -> int:
    """Ciphertext size for a plaintext of the given size."""
    blocks = max(1, -(-plaintext_bytes // SEAL_BLOCK_BYTES))
    return blocks * SEAL_BLOCK_BYTES + _LEN_PREFIX


def _field(n: int) -> int:
    return n + _LEN_PREFIX


def onion_size(onion: Onion | None) -> int:
    """An onion's wire size grows one sealed layer per relay."""
    if onion is None:
        return _LEN_PREFIX
    size = _ONION_CORE_BYTES
    # Each layer seals (next-hop IP + inner blob); depth recovered from
    # the blob since the Onion doesn't store it.
    for _ in range(_onion_depth(onion.blob)):
        size = _sealed(size + _IP_BYTES)
    return _field(size) + _field(_SIGNATURE_BYTES) + _NONCE_BYTES  # + seq


def _onion_depth(blob: Any) -> int:
    """Number of sealed layers in an onion blob (both backends)."""
    from repro.crypto.simulated import Envelope
    from repro.onion.onion import OnionLayer

    depth = 0
    current = blob
    while isinstance(current, Envelope):
        depth += 1
        payload = current.payload
        if isinstance(payload, OnionLayer):
            current = payload.inner
        else:
            break
    if depth:
        return depth
    # RSA backend: layers are opaque bytes; model depth from ciphertext
    # growth (each layer adds roughly one block round-trip).
    if isinstance(current, (bytes, bytearray)):
        return max(1, len(current) // (2 * SEAL_BLOCK_BYTES))
    return 1


def wire_size(message: Any) -> int:
    """Wire size in bytes of any hiREP protocol message."""
    if isinstance(message, OnionPacket):
        # blob (one peeled onion body) + the inner protocol message.
        blob_layers = _onion_depth(message.blob)
        blob_size = _ONION_CORE_BYTES
        for _ in range(blob_layers):
            blob_size = _sealed(blob_size + _IP_BYTES)
        return _field(blob_size) + wire_size(message.message)
    if isinstance(message, TrustValueRequest):
        body = _sealed(_NODE_ID_BYTES + _NONCE_BYTES)
        return body + _field(_PUBLIC_KEY_BYTES) + onion_size(message.requestor_onion)
    if isinstance(message, TrustValueResponse):
        body = _sealed(_NODE_ID_BYTES + _VALUE_BYTES + _NONCE_BYTES)
        return body + _field(_PUBLIC_KEY_BYTES) + onion_size(message.agent_onion)
    if isinstance(message, TransactionReport):
        return (
            _field(_NODE_ID_BYTES + _VALUE_BYTES + _NONCE_BYTES)
            + _field(_SIGNATURE_BYTES)
            + _field(_NODE_ID_BYTES)
        )
    if isinstance(message, KeyUpdateAnnouncement):
        return (
            _field(_NODE_ID_BYTES)
            + _field(_PUBLIC_KEY_BYTES)
            + _field(_SIGNATURE_BYTES)
        )
    if isinstance(message, AgentListEntry):
        return (
            _field(_VALUE_BYTES)
            + _field(_NODE_ID_BYTES)
            + onion_size(message.agent_onion)
            + _field(_PUBLIC_KEY_BYTES)
            + _IP_BYTES
        )
    if isinstance(message, AgentListReply):
        size = _field(_IP_BYTES)
        for entry in message.entries:
            size += wire_size(entry)
        if message.self_entry is not None:
            size += wire_size(message.self_entry)
        return size
    # Unknown payloads fall back to the network default.
    from repro.net.messages import DEFAULT_MESSAGE_BYTES

    return DEFAULT_MESSAGE_BYTES


# ---------------------------------------------------------------------------
# Codec: a self-describing tagged binary encoding of protocol messages.
#
# Scalars carry a one-byte type tag; variable-length payloads a 2-byte
# (u16) length — the same prefix width the size model charges per field,
# which is what lets encoded frames agree with wire_size().  Protocol
# dataclasses are encoded as (tag, field₁, …, fieldₙ) with the field order
# taken from the dataclass definition, so adding a message type is one
# entry in _WIRE_CLASSES.
# ---------------------------------------------------------------------------

#: Wire magic + codec version, prepended to every frame.
_MAGIC = b"hR"
WIRE_VERSION = 1
#: Fixed framing cost: 2-byte magic + 1-byte version + u32 body length.
FRAME_OVERHEAD = 7

_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07

#: Every composite type the codec understands, in tag order (tag is
#: 0x20 + index — stable as long as entries are only appended).
_WIRE_CLASSES: tuple[type, ...] = (
    PublicKey,
    Envelope,
    SimSignature,
    OnionLayer,
    Onion,
    OnionPacket,
    TrustRequestBody,
    TrustValueRequest,
    TrustResponseBody,
    TrustValueResponse,
    SignedResult,
    TransactionReport,
    KeyUpdateAnnouncement,
    AgentListEntry,
    AgentListRequest,
    AgentListReply,
)
_CLASS_TAG_BASE = 0x20
_TAG_OF_CLASS: dict[type, int] = {
    cls: _CLASS_TAG_BASE + i for i, cls in enumerate(_WIRE_CLASSES)
}
_CLASS_OF_TAG: dict[int, type] = {tag: cls for cls, tag in _TAG_OF_CLASS.items()}
_FIELDS_OF_CLASS: dict[type, tuple[str, ...]] = {
    cls: tuple(f.name for f in dataclass_fields(cls)) for cls in _WIRE_CLASSES
}

_U16_MAX = 0xFFFF


def _pack_len(n: int, what: str) -> bytes:
    if n > _U16_MAX:
        raise WireError(f"{what} of {n} bytes exceeds the u16 field limit")
    return struct.pack(">H", n)


def _encode_value(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_T_NONE)
        return
    kind = type(value)
    if kind is bool:
        out.append(_T_TRUE if value else _T_FALSE)
        return
    if isinstance(value, int) and not isinstance(value, bool):
        # Two's-complement big-endian, minimal width (nonces need 9 bytes
        # to cover the unsigned 64-bit range as a signed value).
        width = max(1, (value.bit_length() + 8) // 8)
        if width > 255:
            raise WireError(f"integer too large to encode ({value.bit_length()} bits)")
        out.append(_T_INT)
        out.append(width)
        out += value.to_bytes(width, "big", signed=True)
        return
    if isinstance(value, float):
        out.append(_T_FLOAT)
        out += struct.pack(">d", value)
        return
    if kind is str:
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += _pack_len(len(raw), "string")
        out += raw
        return
    if kind in (bytes, bytearray):
        out.append(_T_BYTES)
        out += _pack_len(len(value), "bytes")
        out += bytes(value)
        return
    if kind is tuple:
        out.append(_T_TUPLE)
        out += _pack_len(len(value), "tuple")
        for item in value:
            _encode_value(item, out)
        return
    tag = _TAG_OF_CLASS.get(kind)
    if tag is not None:
        out.append(tag)
        for name in _FIELDS_OF_CLASS[kind]:
            _encode_value(getattr(value, name), out)
        return
    raise WireError(f"cannot encode value of type {kind.__name__!r} on the wire")


def _need(buf: bytes, offset: int, n: int) -> None:
    if offset + n > len(buf):
        raise WireError("truncated frame: field runs past the end of the body")


def _decode_value(buf: bytes, offset: int) -> tuple[Any, int]:
    _need(buf, offset, 1)
    tag = buf[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_INT:
        _need(buf, offset, 1)
        width = buf[offset]
        offset += 1
        _need(buf, offset, width)
        value = int.from_bytes(buf[offset : offset + width], "big", signed=True)
        return value, offset + width
    if tag == _T_FLOAT:
        _need(buf, offset, 8)
        (value,) = struct.unpack_from(">d", buf, offset)
        return value, offset + 8
    if tag in (_T_STR, _T_BYTES, _T_TUPLE):
        _need(buf, offset, 2)
        (length,) = struct.unpack_from(">H", buf, offset)
        offset += 2
        if tag == _T_TUPLE:
            items = []
            for _ in range(length):
                item, offset = _decode_value(buf, offset)
                items.append(item)
            return tuple(items), offset
        _need(buf, offset, length)
        raw = bytes(buf[offset : offset + length])
        offset += length
        return (raw.decode("utf-8") if tag == _T_STR else raw), offset
    cls = _CLASS_OF_TAG.get(tag)
    if cls is None:
        raise WireError(f"unknown wire tag 0x{tag:02x}")
    kwargs: dict[str, Any] = {}
    for name in _FIELDS_OF_CLASS[cls]:
        kwargs[name], offset = _decode_value(buf, offset)
    factory: Callable[..., Any] = cls
    return factory(**kwargs), offset


def encode(message: Any) -> bytes:
    """Serialize a protocol message into one framed byte string.

    The frame is ``magic(2) | version(1) | body_len(4, u32) | body | pad``
    where ``pad`` zero-fills the body up to ``wire_size(message)``: the
    frame length equals ``wire_size(message) + FRAME_OVERHEAD`` whenever
    the model's estimate covers the literal encoding (always true for the
    simulated crypto backend), so serving traffic reproduces the modelled
    byte counts exactly.
    """
    body = bytearray()
    _encode_value(message, body)
    pad = max(0, wire_size(message) - len(body))
    return b"".join(
        (
            _MAGIC,
            bytes((WIRE_VERSION,)),
            struct.pack(">I", len(body)),
            bytes(body),
            b"\x00" * pad,
        )
    )


def decode(frame: bytes | bytearray) -> Any:
    """Deserialize one frame produced by :func:`encode`.

    Raises :class:`~repro.errors.WireError` on bad magic, version, length,
    or any malformed field.
    """
    buf = bytes(frame)
    if len(buf) < FRAME_OVERHEAD:
        raise WireError(f"frame of {len(buf)} bytes is shorter than the header")
    if buf[:2] != _MAGIC:
        raise WireError("bad frame magic")
    if buf[2] != WIRE_VERSION:
        raise WireError(f"unsupported wire version {buf[2]}")
    (body_len,) = struct.unpack_from(">I", buf, 3)
    if FRAME_OVERHEAD + body_len > len(buf):
        raise WireError("truncated frame: declared body exceeds frame length")
    value, end = _decode_value(buf[: FRAME_OVERHEAD + body_len], FRAME_OVERHEAD)
    if end != FRAME_OVERHEAD + body_len:
        raise WireError("malformed frame: body has trailing data")
    return value
