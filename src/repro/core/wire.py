"""Wire sizes of hiREP protocol messages.

The access-link serialization model (Fig. 8) needs per-message byte sizes.
Rather than a flat default, this module derives each protocol message's
wire size from its actual contents — key material lengths, onion depth,
signature sizes — using a compact TLV-style encoding model:

* every field costs a 2-byte length prefix plus its payload;
* sealed blobs cost the size of their plaintext plus cipher overhead
  (RSA: padded to modulus blocks; simulated backend: modelled at the same
  rate so both backends produce identical traffic *sizes*);
* an onion of depth d is d+1 nested sealed layers around a 16-byte core.

Absolute byte counts are a model, not a packet capture — what matters is
that *relative* sizes are right: onions grow linearly with depth, key
material dominates handshakes, reports are small.
"""

from __future__ import annotations

from typing import Any

from repro.core.messages import (
    AgentListEntry,
    AgentListReply,
    KeyUpdateAnnouncement,
    TransactionReport,
    TrustValueRequest,
    TrustValueResponse,
)
from repro.onion.onion import Onion
from repro.onion.routing import OnionPacket

__all__ = ["wire_size", "SEAL_BLOCK_BYTES"]

_LEN_PREFIX = 2
#: Cipher block granularity: plaintext is padded up to multiples of this
#: (matches a 512-bit RSA modulus).
SEAL_BLOCK_BYTES = 64
_PUBLIC_KEY_BYTES = 72      # 512-bit modulus + exponent + framing
_SIGNATURE_BYTES = 66       # one modulus-sized block + framing
_NODE_ID_BYTES = 20         # SHA-1
_NONCE_BYTES = 8
_VALUE_BYTES = 8            # one float
_IP_BYTES = 4
_ONION_CORE_BYTES = 16


def _sealed(plaintext_bytes: int) -> int:
    """Ciphertext size for a plaintext of the given size."""
    blocks = max(1, -(-plaintext_bytes // SEAL_BLOCK_BYTES))
    return blocks * SEAL_BLOCK_BYTES + _LEN_PREFIX


def _field(n: int) -> int:
    return n + _LEN_PREFIX


def onion_size(onion: Onion | None) -> int:
    """An onion's wire size grows one sealed layer per relay."""
    if onion is None:
        return _LEN_PREFIX
    size = _ONION_CORE_BYTES
    # Each layer seals (next-hop IP + inner blob); depth recovered from
    # the blob since the Onion doesn't store it.
    for _ in range(_onion_depth(onion.blob)):
        size = _sealed(size + _IP_BYTES)
    return _field(size) + _field(_SIGNATURE_BYTES) + _NONCE_BYTES  # + seq


def _onion_depth(blob: Any) -> int:
    """Number of sealed layers in an onion blob (both backends)."""
    from repro.crypto.simulated import Envelope
    from repro.onion.onion import OnionLayer

    depth = 0
    current = blob
    while isinstance(current, Envelope):
        depth += 1
        payload = current.payload
        if isinstance(payload, OnionLayer):
            current = payload.inner
        else:
            break
    if depth:
        return depth
    # RSA backend: layers are opaque bytes; model depth from ciphertext
    # growth (each layer adds roughly one block round-trip).
    if isinstance(current, (bytes, bytearray)):
        return max(1, len(current) // (2 * SEAL_BLOCK_BYTES))
    return 1


def wire_size(message: Any) -> int:
    """Wire size in bytes of any hiREP protocol message."""
    if isinstance(message, OnionPacket):
        # blob (one peeled onion body) + the inner protocol message.
        blob_layers = _onion_depth(message.blob)
        blob_size = _ONION_CORE_BYTES
        for _ in range(blob_layers):
            blob_size = _sealed(blob_size + _IP_BYTES)
        return _field(blob_size) + wire_size(message.message)
    if isinstance(message, TrustValueRequest):
        body = _sealed(_NODE_ID_BYTES + _NONCE_BYTES)
        return body + _field(_PUBLIC_KEY_BYTES) + onion_size(message.requestor_onion)
    if isinstance(message, TrustValueResponse):
        body = _sealed(_NODE_ID_BYTES + _VALUE_BYTES + _NONCE_BYTES)
        return body + _field(_PUBLIC_KEY_BYTES) + onion_size(message.agent_onion)
    if isinstance(message, TransactionReport):
        return (
            _field(_NODE_ID_BYTES + _VALUE_BYTES + _NONCE_BYTES)
            + _field(_SIGNATURE_BYTES)
            + _field(_NODE_ID_BYTES)
        )
    if isinstance(message, KeyUpdateAnnouncement):
        return (
            _field(_NODE_ID_BYTES)
            + _field(_PUBLIC_KEY_BYTES)
            + _field(_SIGNATURE_BYTES)
        )
    if isinstance(message, AgentListEntry):
        return (
            _field(_VALUE_BYTES)
            + _field(_NODE_ID_BYTES)
            + onion_size(message.agent_onion)
            + _field(_PUBLIC_KEY_BYTES)
            + _IP_BYTES
        )
    if isinstance(message, AgentListReply):
        size = _field(_IP_BYTES)
        for entry in message.entries:
            size += wire_size(entry)
        if message.self_entry is not None:
            size += wire_size(message.self_entry)
        return size
    # Unknown payloads fall back to the network default.
    from repro.net.messages import DEFAULT_MESSAGE_BYTES

    return DEFAULT_MESSAGE_BYTES
