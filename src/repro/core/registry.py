"""Construction layer: the name-keyed registry of reputation systems.

Every experiment, sweep plan, and example obtains systems through
:func:`build_system` instead of direct constructor calls (enforced by the
hirep-lint rule ARC001), which makes the system *kind* a first-class,
serializable dimension: ``repro.exec`` job specs carry ``system="voting"``
like any other kwarg, so ``baseline_comparison`` fans out one cacheable
job per (system, cell).

Builders are registered lazily — the target module is imported only when
its name is first built — so importing this module stays cheap and free
of circular imports.

Adding a backend (full recipe in ``docs/architecture.md``)::

    from repro.core.registry import register_system

    @register_system("mytrust", summary="my aggregation scheme")
    def _build_mytrust(config, **opts):
        from mypackage.mytrust import MyTrustSystem
        return MyTrustSystem(config, **opts)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigError
from repro.obs.capture import attach_current

if TYPE_CHECKING:
    from repro.core.config import HiRepConfig
    from repro.core.interface import ReputationSystem

__all__ = [
    "DEFAULT_REGISTRY",
    "SystemRegistry",
    "build_system",
    "register_system",
    "system_names",
]

#: (config, **opts) -> a ReputationSystem implementation.
SystemBuilder = Callable[..., "ReputationSystem"]


class SystemRegistry:
    """Name → builder registry for reputation systems."""

    def __init__(self) -> None:
        self._builders: dict[str, SystemBuilder] = {}
        self._summaries: dict[str, str] = {}

    def register(
        self, name: str, builder: SystemBuilder, *, summary: str = ""
    ) -> None:
        if name in self._builders:
            raise ConfigError(f"system {name!r} already registered")
        self._builders[name] = builder
        self._summaries[name] = summary

    def names(self) -> list[str]:
        """Registered system names, in registration order."""
        return list(self._builders)

    def summary(self, name: str) -> str:
        self._require(name)
        return self._summaries[name]

    def build(
        self,
        name: str,
        config: "HiRepConfig | None" = None,
        **opts: object,
    ) -> "ReputationSystem":
        """Construct the system registered as ``name``.

        ``config`` and any keyword options are passed through to the
        builder (e.g. ``build_system("hirep", cfg, churn=model)``).

        When a telemetry capture window is open (see
        :func:`repro.obs.capture.capture`), the built system is attached
        to the active plane before being returned; otherwise this costs
        one global ``is None`` check.
        """
        self._require(name)
        system = self._builders[name](config, **opts)
        attach_current(system)
        return system

    def _require(self, name: str) -> None:
        if name not in self._builders:
            known = ", ".join(self.names())
            raise ConfigError(f"unknown system {name!r} (known: {known})")


#: The process-wide registry :func:`build_system` consults.
DEFAULT_REGISTRY = SystemRegistry()


def register_system(
    name: str, *, summary: str = "", registry: SystemRegistry | None = None
) -> Callable[[SystemBuilder], SystemBuilder]:
    """Decorator: register ``name`` in ``registry`` (default: process-wide)."""

    def deco(builder: SystemBuilder) -> SystemBuilder:
        (registry or DEFAULT_REGISTRY).register(name, builder, summary=summary)
        return builder

    return deco


def build_system(
    name: str, config: "HiRepConfig | None" = None, **opts: object
) -> "ReputationSystem":
    """Build a registered reputation system by name (the one front door)."""
    return DEFAULT_REGISTRY.build(name, config, **opts)


def system_names() -> list[str]:
    """Every name :func:`build_system` accepts."""
    return DEFAULT_REGISTRY.names()


# ---------------------------------------------------------------------------
# Bundled systems.  Imports happen inside the builders so constructing the
# registry never drags in the full protocol stack (and cannot go circular).
# ---------------------------------------------------------------------------


@register_system("hirep", summary="hiREP: hierarchical reputation agents (the paper)")
def _build_hirep(config: "HiRepConfig | None", **opts: object) -> "ReputationSystem":
    from repro.core.system import HiRepSystem

    return HiRepSystem(config, **opts)


@register_system(
    "hirep-array",
    summary="hiREP on the struct-of-arrays kernel (repro.vector), for 100k+ peers",
)
def _build_hirep_array(
    config: "HiRepConfig | None", **opts: object
) -> "ReputationSystem":
    from repro.vector.system import ArrayHiRepSystem

    return ArrayHiRepSystem(config, **opts)


@register_system("voting", summary="pure flooding poll, votes weighted equally (§5.2)")
def _build_voting(config: "HiRepConfig | None", **opts: object) -> "ReputationSystem":
    from repro.baselines.voting import PureVotingSystem

    return PureVotingSystem(config, **opts)


@register_system(
    "credibility", summary="flooding poll with per-voter credibility EWMA (P2PREP)"
)
def _build_credibility(
    config: "HiRepConfig | None", **opts: object
) -> "ReputationSystem":
    from repro.baselines.credibility import CredibilityVotingSystem

    return CredibilityVotingSystem(config, **opts)


@register_system(
    "trustme", summary="broadcast queries to random trust-holding agents (TrustMe)"
)
def _build_trustme(config: "HiRepConfig | None", **opts: object) -> "ReputationSystem":
    from repro.baselines.trustme import TrustMeSystem

    return TrustMeSystem(config, **opts)


@register_system(
    "local", summary="first-hand (plus friend-set) history only, zero messages"
)
def _build_local(config: "HiRepConfig | None", **opts: object) -> "ReputationSystem":
    from repro.baselines.local import LocalReputationSystem

    return LocalReputationSystem(config, **opts)


@register_system(
    "eigentrust", summary="global trust by power iteration over a Chord DHT"
)
def _build_eigentrust(
    config: "HiRepConfig | None", **opts: object
) -> "ReputationSystem":
    from repro.baselines.eigentrust import EigenTrustSystem

    return EigenTrustSystem(config, **opts)


@register_system(
    "gossip", summary="randomized gossip poll, votes discounted by relay distance"
)
def _build_gossip(config: "HiRepConfig | None", **opts: object) -> "ReputationSystem":
    from repro.baselines.gossip import GossipSystem

    return GossipSystem(config, **opts)


@register_system(
    "serve", summary="hiREP as a live service: asyncio actors over real transports"
)
def _build_serve(config: "HiRepConfig | None", **opts: object) -> "ReputationSystem":
    from repro.serve.system import ServeSystem

    return ServeSystem(config, **opts)
