"""The trusted-agent list and backup cache one peer maintains (§3.4).

Each entry is the paper's ``{weight, agent nodeID, Onion_agent, SP_e}``
augmented with the peer-local expertise tracker.  Maintenance rules
(§3.4.3):

* a freshly selected agent starts with expertise 1;
* expertise is EWMA-updated after every transaction;
* an **offline** agent with positive expertise moves to the backup cache
  (most-recently-first, bounded); otherwise it is removed outright;
* an agent whose expertise drops below the eviction threshold θ is removed
  (the hirep-θ rule of Fig. 6);
* when the list shrinks below the refill threshold the peer first probes
  its backups, then runs discovery for new agents.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.expertise import ExpertiseTracker
from repro.core.messages import AgentListEntry
from repro.core.semantics import selection_order
from repro.crypto.hashing import NodeID
from repro.errors import ConfigError
from repro.onion.onion import Onion

__all__ = ["TrustedAgent", "TrustedAgentList"]


@dataclass
class TrustedAgent:
    """One live row of the trusted-agent list."""

    entry: AgentListEntry
    expertise: ExpertiseTracker
    #: Consecutive trust queries this agent failed to answer in time
    #: (reset on every accepted response; see HiRepConfig.agent_miss_limit).
    misses: int = 0

    @property
    def node_id(self) -> NodeID:
        return self.entry.agent_node_id

    @property
    def weight(self) -> float:
        """The weight shared with other peers is the tracked expertise."""
        return self.expertise.value

    def refresh_onion(self, onion: Onion) -> None:
        """Adopt a fresher onion (higher sequence number) for this agent."""
        current = self.entry.agent_onion
        if current is None or onion.seq >= current.seq:
            self.entry = AgentListEntry(
                weight=self.entry.weight,
                agent_node_id=self.entry.agent_node_id,
                agent_onion=onion,
                agent_sp=self.entry.agent_sp,
                agent_ip=self.entry.agent_ip,
            )


class TrustedAgentList:
    """A peer's trusted agents plus its backup cache."""

    def __init__(
        self,
        capacity: int,
        alpha: float,
        eviction_threshold: float,
        backup_capacity: int,
        initial_expertise: float = 1.0,
    ) -> None:
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        if backup_capacity < 0:
            raise ConfigError(f"backup_capacity must be >= 0, got {backup_capacity}")
        self.capacity = capacity
        self.alpha = alpha
        self.eviction_threshold = eviction_threshold
        self.backup_capacity = backup_capacity
        self.initial_expertise = initial_expertise
        self._agents: dict[NodeID, TrustedAgent] = {}
        # Most-recently-parked first.
        self._backup: OrderedDict[NodeID, TrustedAgent] = OrderedDict()
        self.evictions = 0
        self.backups_parked = 0
        self.backups_restored = 0

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._agents)

    def __contains__(self, node_id: NodeID) -> bool:
        return node_id in self._agents

    def get(self, node_id: NodeID) -> TrustedAgent | None:
        return self._agents.get(node_id)

    def agents(self) -> list[TrustedAgent]:
        return list(self._agents.values())

    def backup_agents(self) -> list[TrustedAgent]:
        return list(self._backup.values())

    @property
    def has_room(self) -> bool:
        return len(self._agents) < self.capacity

    def needs_refill(self, threshold: int) -> bool:
        return len(self._agents) < threshold

    # -- mutation ------------------------------------------------------------

    def add(self, entry: AgentListEntry, expertise: float | None = None) -> bool:
        """Insert an agent; returns False when already present or full."""
        if entry.agent_node_id in self._agents:
            return False
        if len(self._agents) >= self.capacity:
            return False
        self._agents[entry.agent_node_id] = TrustedAgent(
            entry=entry,
            expertise=ExpertiseTracker(
                alpha=self.alpha,
                value=self.initial_expertise if expertise is None else expertise,
            ),
        )
        # A re-added agent must not linger in backup.
        self._backup.pop(entry.agent_node_id, None)
        return True

    def remove(self, node_id: NodeID) -> TrustedAgent | None:
        return self._agents.pop(node_id, None)

    def update_expertise(self, node_id: NodeID, evaluation: float, outcome: float) -> float | None:
        """EWMA-update one agent; returns the new expertise (None if absent)."""
        agent = self._agents.get(node_id)
        if agent is None:
            return None
        return agent.expertise.update(evaluation, outcome)

    def evict_below_threshold(self) -> list[TrustedAgent]:
        """Apply the hirep-θ rule; returns the evicted agents."""
        victims = [
            a for a in self._agents.values()
            if a.expertise.below(self.eviction_threshold)
        ]
        for agent in victims:
            del self._agents[agent.node_id]
            self.evictions += 1
        return victims

    def record_miss(self, node_id: NodeID) -> int | None:
        """One more consecutive unanswered query; returns the new count."""
        agent = self._agents.get(node_id)
        if agent is None:
            return None
        agent.misses += 1
        return agent.misses

    def record_answer(self, node_id: NodeID) -> None:
        """The agent answered: its consecutive-miss streak resets."""
        agent = self._agents.get(node_id)
        if agent is not None:
            agent.misses = 0

    def park_offline(self, node_id: NodeID) -> bool:
        """§3.4.3: offline agent with positive accuracy → backup cache.

        Returns True when parked, False when removed outright (non-positive
        expertise) or unknown.
        """
        agent = self._agents.pop(node_id, None)
        if agent is None:
            return False
        if agent.expertise.value <= 0.0 or self.backup_capacity == 0:
            return False
        # Most-recently-first: new arrivals go to the front.
        self._backup[node_id] = agent
        self._backup.move_to_end(node_id, last=False)
        while len(self._backup) > self.backup_capacity:
            self._backup.popitem(last=True)
        self.backups_parked += 1
        return True

    def restore_from_backup(self, node_id: NodeID) -> bool:
        """Probe succeeded: move a backup agent back to the live list."""
        agent = self._backup.pop(node_id, None)
        if agent is None or len(self._agents) >= self.capacity:
            if agent is not None:
                self._backup[node_id] = agent  # put it back, list is full
            return False
        agent.misses = 0  # clean slate: it just proved it is back
        self._agents[node_id] = agent
        self.backups_restored += 1
        return True

    def drop_backup(self, node_id: NodeID) -> None:
        self._backup.pop(node_id, None)

    # -- sharing and selection -------------------------------------------------

    def as_entries(self) -> tuple[AgentListEntry, ...]:
        """Render the list for an agent-list reply, weights = expertise."""
        return tuple(
            AgentListEntry(
                weight=agent.expertise.value,
                agent_node_id=agent.entry.agent_node_id,
                agent_onion=agent.entry.agent_onion,
                agent_sp=agent.entry.agent_sp,
                agent_ip=agent.entry.agent_ip,
            )
            for agent in self._agents.values()
        )

    def select_for_query(
        self, count: int, rng: np.random.Generator
    ) -> list[TrustedAgent]:
        """The ``count`` agents to consult.

        Ordered by expertise, then track record (a proven agent beats an
        unproven one at equal expertise), then randomly — so fresh lists
        explore while trained lists stick to their proven good agents.
        """
        agents = self.agents()
        if not agents:
            return []
        values = np.array([a.expertise.value for a in agents], dtype=np.float64)
        updates = np.array([a.expertise.updates for a in agents], dtype=np.int64)
        order = selection_order(values, updates, rng)
        return [agents[int(i)] for i in order[:count]]
