"""Agent-expertise tracking (§3.4.3).

After every transaction a peer scores each consulted agent: the *current
accuracy* ``A_c`` is 1 when the agent's evaluation was consistent with the
observed transaction result and 0 otherwise, and the running expertise is
the EWMA ``α·A_c + (1-α)·A_p`` with ``α ∈ (0, 1)``.

The eviction rule is the paper's hirep-θ family: an agent whose expertise
falls below θ is dropped from the trusted-agent list (Fig. 6 sweeps
θ ∈ {0.4, 0.6, 0.8}); an *offline* agent with positive expertise is parked
in the backup cache instead of discarded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.semantics import consistency_bit, consistent, ewma_step
from repro.core.semantics import confidence as _confidence
from repro.errors import ConfigError

__all__ = ["ExpertiseTracker", "consistent"]


@dataclass
class ExpertiseTracker:
    """EWMA expertise of a single agent as seen by one peer.

    ``updates`` counts how many transactions have scored this agent; the
    derived :attr:`confidence` (``updates / (updates + 1)``) lets estimate
    computation discount agents with no track record — a fresh agent starts
    at the paper's initial expertise 1 but has confidence 0 until proven.
    """

    alpha: float
    value: float = 1.0
    updates: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ConfigError(f"alpha must be in (0,1), got {self.alpha}")
        if not 0.0 <= self.value <= 1.0:
            raise ConfigError(f"expertise must be in [0,1], got {self.value}")
        if self.updates < 0:
            raise ConfigError(f"updates must be >= 0, got {self.updates}")

    @property
    def confidence(self) -> float:
        """How much track record backs the expertise value, in [0, 1)."""
        return _confidence(self.updates)

    def update(self, evaluation: float, outcome: float) -> float:
        """Fold one transaction's consistency into the running expertise."""
        self.value = ewma_step(
            self.alpha, self.value, consistency_bit(evaluation, outcome)
        )
        self.updates += 1
        return self.value

    def update_raw(self, a_c: float) -> float:
        """Fold a pre-computed accuracy bit (used by attack experiments)."""
        if a_c not in (0.0, 1.0):
            raise ConfigError(f"A_c must be 0 or 1, got {a_c}")
        self.value = ewma_step(self.alpha, self.value, a_c)
        self.updates += 1
        return self.value

    def below(self, threshold: float) -> bool:
        """True when this agent should be evicted under hirep-θ."""
        return self.value < threshold

    def steps_to_evict(self, threshold: float) -> int:
        """How many consecutive failures until eviction from the current value.

        Closed form of the EWMA with A_c = 0: value decays by (1-α) each
        step.  Useful for reasoning about convergence speed vs θ (Fig. 6:
        a higher threshold gives shorter convergence).
        """
        if self.value < threshold:
            return 0
        if threshold <= 0.0:
            return -1  # never reaches a non-positive threshold exactly
        steps = 0
        value = self.value
        while value >= threshold:
            value *= 1.0 - self.alpha
            steps += 1
            if steps > 10_000:
                return -1
        return steps
