"""Interface layer of the reputation-system kernel.

Every reputation system in the repo — hiREP itself and each baseline —
implements the same small surface so experiment code can treat them
uniformly: build one (via :mod:`repro.core.registry`), run transactions,
read the same metric collectors, and get back the same per-transaction
:class:`Outcome` record.

:class:`Outcome` is the superset of the two records the pre-kernel tree
used (``TransactionOutcome`` for hiREP, ``BaselineOutcome`` for the
baselines); both names survive as aliases, and every historical field
keeps its meaning — fields a given system does not produce stay at their
neutral defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:
    from repro.core.config import HiRepConfig
    from repro.net.network import P2PNetwork
    from repro.sim.metrics import MessageCounter, MSETracker, ResponseTimeTracker

__all__ = ["Outcome", "ReputationSystem"]


@dataclass
class Outcome:
    """Everything an experiment wants to know about one transaction.

    Field provenance:

    * common — ``index`` … ``response_time_ms``;
    * hiREP  — ``trust_messages``/``total_messages`` (trust-process vs.
      all-category traffic deltas) and ``answered``/``asked`` (agent
      response coverage);
    * baselines — ``messages`` (per-query traffic) and ``voters``
      (opinion sources reached).
    """

    index: int
    requestor: int
    provider: int
    estimate: float
    truth: float
    squared_error: float
    response_time_ms: float
    trust_messages: int = 0
    total_messages: int = 0
    answered: int = 0
    asked: int = 0
    messages: int = 0
    voters: int = 0


@runtime_checkable
class ReputationSystem(Protocol):
    """What every reputation system — hiREP or baseline — must expose."""

    config: "HiRepConfig"
    network: "P2PNetwork"
    transactions_run: int
    outcomes: list[Outcome]
    mse: "MSETracker"
    response_times: "ResponseTimeTracker"

    @property
    def counter(self) -> "MessageCounter": ...

    def pick_pair(self, requestor: int | None = None) -> tuple[int, int]: ...

    def run_transaction(
        self, requestor: int | None = None, provider: int | None = None
    ) -> Outcome: ...

    def run(
        self, transactions: int, requestor: int | None = None
    ) -> list[Outcome]: ...

    def reset_metrics(self) -> None: ...
