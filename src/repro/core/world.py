"""The shared simulation substrate ("world") a reputation system runs in.

Fig. 5–8 compare hiREP against the pure-voting baseline *on the same
network*: same topology, same ground truth, same latencies, same maliciousness
assignment.  :class:`World` packages that substrate so every system built
from the same config (and seed) sees a bit-identical environment — the
baseline comparison then measures the reputation system, not the luck of
the topology draw.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.config import HiRepConfig
from repro.net.latency import LatencyModel
from repro.net.network import P2PNetwork
from repro.net.topology import Topology, topology_for_degree
from repro.sim.rng import spawn

__all__ = ["World"]


@dataclass
class World:
    """Topology + network + ground truth + derived RNG streams."""

    config: HiRepConfig
    topology: Topology
    network: P2PNetwork
    truth: np.ndarray
    malicious_peer: np.ndarray
    rng_keys: np.random.Generator = field(repr=False, default=None)
    rng_agents: np.random.Generator = field(repr=False, default=None)
    rng_workload: np.random.Generator = field(repr=False, default=None)
    rng_peers: np.random.Generator = field(repr=False, default=None)

    @classmethod
    def from_config(
        cls,
        config: HiRepConfig,
        latency_model: LatencyModel | None = None,
        topology: Topology | None = None,
        network_factory: "Callable[..., P2PNetwork] | None" = None,
    ) -> "World":
        """Deterministically derive the full substrate from the config seed.

        ``topology`` overrides generation — e.g. a snapshot of a
        :class:`~repro.net.overlay.DynamicOverlay`; its node count must
        match ``config.network_size``.  All other draws (truth, bandwidth,
        maliciousness) still come from the seed, so two worlds with the
        same config and topology are identical.

        ``network_factory`` substitutes the network implementation — it is
        called exactly like the :class:`~repro.net.network.P2PNetwork`
        constructor, with the same RNG stream, so a subclass (e.g. the
        live-transport network in ``repro.serve``) consumes identical
        draws and the rest of the substrate stays bit-identical.
        """
        master = np.random.default_rng(config.seed)
        (
            rng_topology,
            rng_net,
            rng_keys,
            rng_truth,
            rng_agents,
            rng_workload,
            rng_peers,
        ) = spawn(master, 7)
        if topology is None:
            topology = topology_for_degree(
                config.topology_kind,
                config.network_size,
                config.avg_neighbors,
                rng_topology,
            )
        elif topology.n != config.network_size:
            from repro.errors import ConfigError

            raise ConfigError(
                f"supplied topology has {topology.n} nodes but config says "
                f"{config.network_size}"
            )
        make_network = network_factory if network_factory is not None else P2PNetwork
        network = make_network(
            topology,
            rng_net,
            latency_model=latency_model,
            model_transmission=config.model_transmission,
        )
        truth = (
            rng_truth.random(config.network_size) >= config.untrusted_peer_fraction
        ).astype(np.float64)
        # Maliciously *voting* peers (Figs. 6–7's attackers in the voting
        # baseline); drawn from the same stream so both systems agree on
        # who misbehaves.
        malicious_peer = rng_truth.random(config.network_size) < config.malicious_fraction
        return cls(
            config=config,
            topology=topology,
            network=network,
            truth=truth,
            malicious_peer=malicious_peer,
            rng_keys=rng_keys,
            rng_agents=rng_agents,
            rng_workload=rng_workload,
            rng_peers=rng_peers,
        )

    @property
    def n(self) -> int:
        return self.config.network_size
