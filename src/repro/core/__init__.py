"""hiREP core: the paper's primary contribution."""

from repro.core.agent import AgentStats, ReputationAgent
from repro.core.agent_list import TrustedAgent, TrustedAgentList
from repro.core.config import DEFAULT_CONFIG, HiRepConfig, TABLE1_ROWS
from repro.core.discovery import DiscoveryOutcome, discover_agent_lists
from repro.core.expertise import ExpertiseTracker, consistent
from repro.core.messages import (
    AgentListEntry,
    AgentListReply,
    AgentListRequest,
    SignedResult,
    TransactionReport,
    TrustRequestBody,
    TrustResponseBody,
    TrustValueRequest,
    TrustValueResponse,
)
from repro.core.peer import HiRepPeer, PendingQuery, QueryResult
from repro.core.ranking import merge_ranks, rank_within_list, select_agents
from repro.core.system import HiRepSystem, TransactionOutcome
from repro.core.trust_models import (
    EWMAReportModel,
    QualityDrivenModel,
    ReportAverageModel,
    TrustModel,
)

__all__ = [
    "AgentStats",
    "ReputationAgent",
    "TrustedAgent",
    "TrustedAgentList",
    "DEFAULT_CONFIG",
    "HiRepConfig",
    "TABLE1_ROWS",
    "DiscoveryOutcome",
    "discover_agent_lists",
    "ExpertiseTracker",
    "consistent",
    "AgentListEntry",
    "AgentListReply",
    "AgentListRequest",
    "SignedResult",
    "TransactionReport",
    "TrustRequestBody",
    "TrustResponseBody",
    "TrustValueRequest",
    "TrustValueResponse",
    "HiRepPeer",
    "PendingQuery",
    "QueryResult",
    "merge_ranks",
    "rank_within_list",
    "select_agents",
    "HiRepSystem",
    "TransactionOutcome",
    "EWMAReportModel",
    "QualityDrivenModel",
    "ReportAverageModel",
    "TrustModel",
]
