"""hiREP core: the paper's primary contribution."""

from repro.core.agent import AgentStats, ReputationAgent
from repro.core.agent_list import TrustedAgent, TrustedAgentList
from repro.core.config import DEFAULT_CONFIG, HiRepConfig, TABLE1_ROWS
from repro.core.discovery import DiscoveryOutcome, discover_agent_lists
from repro.core.dispatch import (
    DispatchRecord,
    ProtocolDispatcher,
    RecordingTracer,
    Tracer,
)
from repro.core.interface import Outcome, ReputationSystem
from repro.core.registry import (
    DEFAULT_REGISTRY,
    SystemRegistry,
    build_system,
    register_system,
    system_names,
)
from repro.core.runtime import (
    MetricsPipeline,
    TransactionRuntime,
    draw_vote,
    serialize_arrivals,
)
from repro.core.services import (
    KeyRotationService,
    MaintenanceService,
    QueryService,
    Wiring,
    build_wiring,
)
from repro.core.expertise import ExpertiseTracker, consistent
from repro.core.messages import (
    AgentListEntry,
    AgentListReply,
    AgentListRequest,
    SignedResult,
    TransactionReport,
    TrustRequestBody,
    TrustResponseBody,
    TrustValueRequest,
    TrustValueResponse,
)
from repro.core.peer import HiRepPeer, PendingQuery, QueryResult
from repro.core.ranking import merge_ranks, rank_within_list, select_agents
from repro.core.system import HiRepSystem, TransactionOutcome
from repro.core.trust_models import (
    EWMAReportModel,
    QualityDrivenModel,
    ReportAverageModel,
    TrustModel,
)

__all__ = [
    "AgentStats",
    "ReputationAgent",
    "TrustedAgent",
    "TrustedAgentList",
    "DEFAULT_CONFIG",
    "HiRepConfig",
    "TABLE1_ROWS",
    "DiscoveryOutcome",
    "discover_agent_lists",
    "ExpertiseTracker",
    "consistent",
    "AgentListEntry",
    "AgentListReply",
    "AgentListRequest",
    "SignedResult",
    "TransactionReport",
    "TrustRequestBody",
    "TrustResponseBody",
    "TrustValueRequest",
    "TrustValueResponse",
    "HiRepPeer",
    "PendingQuery",
    "QueryResult",
    "merge_ranks",
    "rank_within_list",
    "select_agents",
    "HiRepSystem",
    "TransactionOutcome",
    "EWMAReportModel",
    "QualityDrivenModel",
    "ReportAverageModel",
    "TrustModel",
    "DEFAULT_REGISTRY",
    "DispatchRecord",
    "KeyRotationService",
    "MaintenanceService",
    "MetricsPipeline",
    "Outcome",
    "ProtocolDispatcher",
    "QueryService",
    "RecordingTracer",
    "ReputationSystem",
    "SystemRegistry",
    "Tracer",
    "TransactionRuntime",
    "Wiring",
    "build_system",
    "build_wiring",
    "draw_vote",
    "register_system",
    "serialize_arrivals",
    "system_names",
]
