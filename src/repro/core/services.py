"""Service layer: the composable pieces of a hiREP deployment.

``HiRepSystem`` used to be a 500-line god object; the kernel splits it
into services with one responsibility each, wired over shared state:

* :func:`build_wiring` — the world/wiring builder: key material, peers,
  relay registry, onion router, reputation agents, and the
  :class:`~repro.core.dispatch.ProtocolDispatcher` routing table;
* :class:`MaintenanceService` — §3.4.1 bootstrap and §3.4.3 list
  maintenance (backup probes, token/TTL rediscovery), plus the
  discovery hook the recommendation-manipulation attacks use;
* :class:`QueryService` — §3.6 trust query + transaction settlement;
* :class:`KeyRotationService` — §3.5 periodic key update.

``HiRepSystem`` (:mod:`repro.core.system`) survives as a thin façade
delegating to these, so existing callers keep working.

RNG discipline: construction order here is frozen — every generator draw
happens in exactly the order the pre-kernel constructor made it, so fixed
seeds reproduce the pre-refactor runs bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.agent import ReputationAgent
from repro.core.config import HiRepConfig
from repro.core.discovery import discover_agent_lists
from repro.core.dispatch import ProtocolDispatcher, Tracer
from repro.core.messages import (
    AgentListEntry,
    KeyUpdateAnnouncement,
    TransactionReport,
    TrustValueRequest,
    TrustValueResponse,
)
from repro.core.peer import HiRepPeer, QueryResult
from repro.core.ranking import rank_within_list, select_agents
from repro.core.trust_models import QualityDrivenModel, TrustModel
from repro.core.world import World
from repro.crypto.hashing import NodeID
from repro.crypto.keys import PeerKeys
from repro.crypto.nonce import NonceRegistry
from repro.errors import NoTrustedAgentsError, ProtocolError
from repro.net.messages import Category
from repro.onion.handshake import HandshakeResponder
from repro.onion.relay import RelayRegistry
from repro.onion.routing import OnionRouter
from repro.sim.rng import spawn

__all__ = [
    "DiscoveryHook",
    "KeyRotationService",
    "MaintenanceService",
    "QueryService",
    "Wiring",
    "build_wiring",
]

#: (good, rng) -> TrustModel — per-agent trust-model override.
ModelFactory = Callable[[bool, np.random.Generator], TrustModel]

#: Attack hook: node index -> forged trusted-agent list (None = honest).
DiscoveryHook = Callable[[int], "list[AgentListEntry] | None"]


@dataclass
class Wiring:
    """Everything :func:`build_wiring` constructs, by name."""

    backend: object
    router: OnionRouter
    relay_registry: RelayRegistry
    dispatcher: ProtocolDispatcher
    peers: list[HiRepPeer]
    agents: dict[int, ReputationAgent]
    agent_quality: dict[int, bool]
    truth_by_id: dict[NodeID, float] = field(default_factory=dict)

    def relay_pool_of(self, world: World) -> list[int]:
        return world.network.online_nodes()


def build_wiring(
    config: HiRepConfig,
    world: World,
    backend: object,
    *,
    model_factory: ModelFactory | None = None,
    tracer: Tracer | None = None,
) -> Wiring:
    """Build key material, peers, agents, and the protocol routing table."""
    network = world.network
    router = OnionRouter(network, backend)
    relay_registry = RelayRegistry()
    dispatcher = ProtocolDispatcher(tracer=tracer)

    # Key material and peers.  Per-peer generators are spawned up front so
    # peer construction order cannot perturb other streams.
    peers: list[HiRepPeer] = []
    truth_by_id: dict[NodeID, float] = {}
    peer_rngs = spawn(world.rng_peers, config.network_size)
    for ip in range(config.network_size):
        keys = PeerKeys.generate(backend, world.rng_keys)
        peer = HiRepPeer(
            ip=ip,
            keys=keys,
            backend=backend,
            config=config,
            network=network,
            router=router,
            relay_registry=relay_registry,
            rng=peer_rngs[ip],
        )
        peers.append(peer)
        truth_by_id[keys.node_id] = float(world.truth[ip])
        relay_registry.register(
            ip,
            HandshakeResponder(
                backend, keys.ap, keys.ar, ip, NonceRegistry(peer_rngs[ip])
            ),
        )
        router.register_node(ip, keys.ar, dispatcher.endpoint(ip))
        network.register_handler(ip, router.handle)

    # Reputation agents: agent-capable nodes, split good/poor (§5.2).
    agents: dict[int, ReputationAgent] = {}
    factory = model_factory or (
        lambda good, rng: QualityDrivenModel(
            good, config.good_rating, config.bad_rating
        )
    )
    capable = network.agent_capable_nodes()
    poor_count = int(round(config.poor_agent_fraction * len(capable)))
    poor_set = set(
        int(i)
        for i in world.rng_agents.choice(
            capable, size=min(poor_count, len(capable)), replace=False
        )
    )
    agent_rngs = spawn(world.rng_agents, len(capable))
    for agent_rng, ip in zip(agent_rngs, capable):
        good = ip not in poor_set
        model: TrustModel = factory(good, agent_rng)
        agents[ip] = ReputationAgent(
            ip=ip,
            keys=peers[ip].keys,
            backend=backend,
            model=model,
            rng=agent_rng,
            truth_oracle=lambda node_id: truth_by_id.get(node_id, 0.5),
        )
    agent_quality = {ip: ip not in poor_set for ip in capable}

    wiring = Wiring(
        backend=backend,
        router=router,
        relay_registry=relay_registry,
        dispatcher=dispatcher,
        peers=peers,
        agents=agents,
        agent_quality=agent_quality,
        truth_by_id=truth_by_id,
    )
    _register_routes(dispatcher, wiring, network)
    return wiring


def _register_routes(
    dispatcher: ProtocolDispatcher, wiring: Wiring, network
) -> None:
    """The hiREP protocol routing table (§3.6 message flow).

    The "agent" role is consulted first so agent-only traffic at non-agent
    nodes drops (a deployed non-agent ignores it); trust responses are
    peer traffic and route at every node.
    """
    dispatcher.define_role("agent", lambda ip: ip in wiring.agents)
    dispatcher.define_role("peer", lambda ip: True)

    def on_trust_request(ip: int, message: TrustValueRequest, sent_at: float) -> None:
        agent = wiring.agents[ip]
        fresh = wiring.peers[ip].fresh_onion(network.online_nodes())
        try:
            response = agent.handle_trust_request(message, fresh)
        except ProtocolError:
            # Sealed to a key this agent no longer holds (e.g. the
            # requestor has a stale SP after a key rotation) or
            # malformed: drop, as a deployed agent would.
            return
        wiring.router.send(
            ip,
            message.requestor_onion,
            response,
            category=Category.TRUST_RESPONSE,
        )

    def on_trust_response(ip: int, message: TrustValueResponse, sent_at: float) -> None:
        wiring.peers[ip].on_onion_message(message, sent_at)

    def on_report(ip: int, message: TransactionReport, sent_at: float) -> None:
        wiring.agents[ip].handle_report(message)

    def on_key_update(ip: int, message: KeyUpdateAnnouncement, sent_at: float) -> None:
        wiring.agents[ip].handle_key_update(message)

    dispatcher.register("agent", TrustValueRequest, on_trust_request)
    dispatcher.register("agent", TransactionReport, on_report)
    dispatcher.register("agent", KeyUpdateAnnouncement, on_key_update)
    dispatcher.register("peer", TrustValueResponse, on_trust_response)


class MaintenanceService:
    """§3.4.1 bootstrap + §3.4.3 trusted-agent-list maintenance."""

    def __init__(
        self,
        config: HiRepConfig,
        world: World,
        wiring: Wiring,
    ) -> None:
        self.config = config
        self.world = world
        self.wiring = wiring
        self.network = world.network
        self.bootstrapped = False
        #: Attack hook (repro.attacks): when set, discovery consults it
        #: first so compromised nodes can return forged trusted-agent
        #: lists (§4.2.1's recommendation-manipulation attack).
        self.discovery_list_hook: DiscoveryHook | None = None

    def self_entry_for(self, ip: int) -> AgentListEntry | None:
        """A reputation agent's self-advertisement during discovery."""
        if ip not in self.wiring.agents:
            return None
        peer = self.wiring.peers[ip]
        onion = peer.ensure_onion(self.network.online_nodes())
        return AgentListEntry(
            weight=self.config.initial_expertise,
            agent_node_id=peer.node_id,
            agent_onion=onion,
            agent_sp=peer.keys.sp,
            agent_ip=ip,
        )

    def discovery_list_for(self, node: int) -> list[AgentListEntry] | None:
        """Node ``node``'s trusted-agent list as seen by discovery.

        Compromised nodes (``discovery_list_hook``) may return forged lists.
        """
        if self.discovery_list_hook is not None:
            forged = self.discovery_list_hook(node)
            if forged is not None:
                return forged
        return self.wiring.peers[node].agent_list.as_entries() or None

    def discover_for(self, peer: HiRepPeer, wanted: int) -> int:
        """One discovery round for ``peer``; rank, select, adopt. Returns adds."""
        cfg = self.config
        counter = self.network.counter
        outcome = discover_agent_lists(
            self.world.topology,
            peer.ip,
            cfg.tokens,
            cfg.ttl,
            rng=peer.rng,
            get_list=self.discovery_list_for,
            get_self_entry=self.self_entry_for,
            online=self.network.is_online,
        )
        counter.count(Category.AGENT_DISCOVERY, outcome.request_messages)
        counter.count(Category.AGENT_DISCOVERY_REPLY, outcome.reply_messages)
        per_list_ranks = []
        candidates: dict[NodeID, AgentListEntry] = {}
        for reply in outcome.replies:
            entries = list(reply.entries)
            if reply.self_entry is not None:
                entries.append(reply.self_entry)
            per_list_ranks.append(rank_within_list(entries, wanted))
            for entry in entries:
                candidates.setdefault(entry.agent_node_id, entry)
        if not candidates:
            return 0
        selected = select_agents(
            list(candidates.values()), per_list_ranks, wanted, peer.rng
        )
        return peer.adopt_entries(selected)

    def bootstrap(self, rounds: int = 2) -> None:
        """Give every peer an initial trusted-agent list.

        Two rounds by default: the first seeds from agent self-entries, the
        second propagates the now-existing lists so peers reach capacity —
        "the reputation list initialization is executed only once for each
        peer" (§4.1), so experiments reset the message counter afterwards.
        """
        if self.bootstrapped:
            return
        peers = self.wiring.peers
        order = np.arange(len(peers))
        for _ in range(rounds):
            self.world.rng_workload.shuffle(order)
            for i in order:
                peer = peers[int(i)]
                if not self.network.is_online(peer.ip):
                    continue
                wanted = peer.agent_list.capacity - len(peer.agent_list)
                if wanted > 0:
                    self.discover_for(peer, wanted)
        self.bootstrapped = True

    def maintain(self, peer: HiRepPeer) -> None:
        """§3.4.3 list maintenance: probe backups, rediscover if short."""
        if not peer.agent_list.needs_refill(self.config.refill_threshold):
            return
        peer.probe_backups()
        if peer.agent_list.needs_refill(self.config.refill_threshold):
            wanted = peer.agent_list.capacity - len(peer.agent_list)
            self.discover_for(peer, wanted)


class QueryService:
    """§3.6 trust query + settlement over the DES network."""

    def __init__(self, world: World, wiring: Wiring) -> None:
        self.world = world
        self.wiring = wiring
        self.network = world.network

    def truth_key(self, ip: int) -> NodeID:
        """The nodeID of peer ``ip`` (what trust queries are keyed by)."""
        return self.wiring.peers[ip].node_id

    def execute(self, req: int, prov: int) -> QueryResult:
        """Run one trust query from ``req`` about ``prov``, then settle.

        When the requestor has no trusted agents this round the query is
        impossible: the blind prior (0.5) is returned with no settlement,
        matching the pre-kernel fallback.
        """
        peer = self.wiring.peers[req]
        relay_pool = self.network.online_nodes()
        try:
            peer.start_query(self.truth_key(prov), relay_pool)
        except NoTrustedAgentsError:
            return QueryResult(
                subject=self.truth_key(prov),
                estimate=0.5,
                responses=[],
                response_time_ms=float("nan"),
                answered=0,
                asked=0,
            )
        self.network.run()
        result = peer.finish_query()
        truth = float(self.world.truth[prov])
        peer.settle_transaction(result, truth, self.network.online_nodes())
        self.network.run()
        return result


class KeyRotationService:
    """§3.5 periodic key update: rotate a peer's keypairs and rewire."""

    def __init__(self, world: World, wiring: Wiring) -> None:
        self.world = world
        self.wiring = wiring
        self.network = world.network

    def rotate(self, ip: int) -> PeerKeys:
        """Rotate peer ``ip``'s keypairs and propagate the update.

        Protocol order matters: the announcement is signed with the *old*
        SR and travels first; only then does the peer adopt the new
        material and the simulation wiring (onion router key, handshake
        responder, truth oracle) follow the identity.
        """
        wiring = self.wiring
        peer = wiring.peers[ip]
        old_node_id = peer.node_id
        new_keys = peer.keys.rotated(wiring.backend, self.world.rng_keys)
        peer.announce_key_update(new_keys)
        self.network.run()  # deliver announcements under the old identity
        peer.adopt_keys(new_keys)
        wiring.router.register_node(ip, new_keys.ar)
        wiring.relay_registry.register(
            ip,
            HandshakeResponder(
                wiring.backend, new_keys.ap, new_keys.ar, ip, NonceRegistry(peer.rng)
            ),
        )
        truth = wiring.truth_by_id.pop(old_node_id)
        wiring.truth_by_id[new_keys.node_id] = truth
        return new_keys
