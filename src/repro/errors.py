"""Exception hierarchy for the hiREP reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subsystems raise the most specific subclass available;
nothing in this package raises bare ``Exception``.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "SimulationError",
    "EventQueueEmpty",
    "CryptoError",
    "KeyMismatchError",
    "SignatureError",
    "ReplayError",
    "NetworkError",
    "UnknownNodeError",
    "NotConnectedError",
    "OnionError",
    "OnionPeelError",
    "StaleOnionError",
    "ProtocolError",
    "AgentError",
    "NoTrustedAgentsError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError, ValueError):
    """A configuration value is out of its documented domain."""


class SimulationError(ReproError):
    """The discrete-event engine was driven into an invalid state."""


class EventQueueEmpty(SimulationError):
    """``step()`` was called on an engine with no pending events."""


class CryptoError(ReproError):
    """Base class for failures in the cryptographic substrate."""


class KeyMismatchError(CryptoError):
    """A ciphertext was presented to a key that cannot open it."""


class SignatureError(CryptoError):
    """A signature failed verification."""


class ReplayError(CryptoError):
    """A nonce was observed twice (replay attack detected)."""


class NetworkError(ReproError):
    """Base class for network-substrate failures."""


class UnknownNodeError(NetworkError, KeyError):
    """An operation referenced a node id that is not in the network."""


class NotConnectedError(NetworkError):
    """A direct send was attempted between nodes with no usable path."""


class OnionError(ReproError):
    """Base class for onion-routing failures."""


class OnionPeelError(OnionError):
    """An onion layer could not be peeled with the presented key."""


class StaleOnionError(OnionError):
    """An onion with a sequence number older than one already seen."""


class ProtocolError(ReproError):
    """A hiREP protocol message was malformed or arrived out of order."""


class WireError(ProtocolError):
    """A wire frame could not be encoded or decoded (bad tag, length, magic)."""


class AgentError(ReproError):
    """Base class for reputation-agent failures."""


class NoTrustedAgentsError(AgentError):
    """A peer needed trusted agents but its list (and backups) are empty."""
