"""Reachability over the call graph, reported as concrete call paths.

The walker answers one question for every taint rule: *from this set of
entry functions, which sink call sites are reachable, and through which
calls?*  It runs one multi-source BFS per rule (entries sorted, adjacency
sorted), so for every reachable sink exactly one finding is produced with
the **shortest** entry→sink path — deterministic regardless of how many
entries reach the same sink.

A path is a list of :class:`Hop` objects: each hop is a call site
(``file:line``) plus the function it calls into, ending at the sink call
itself.  Rules turn paths into findings anchored at the sink line, so the
existing inline-pragma machinery keeps working — a ``# lint: allow[...]``
on the sink line sanctions every path into it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.devtools.analyze.graphs import CallGraph, ExternalCall, FuncKey, ProjectIndex
from repro.devtools.analyze.summaries import CallSite

__all__ = ["Hop", "CallPath", "reachable_paths", "shortest_path_to"]


@dataclass(frozen=True)
class Hop:
    """One step of a call path: ``caller`` calls ``target`` at a site."""

    caller: FuncKey
    target: str  # FuncKey for project hops, dotted name for the sink hop
    path: str  # repo-relative file of the call site
    lineno: int

    def render(self) -> str:
        return f"{self.target} ({self.path}:{self.lineno})"


@dataclass(frozen=True)
class CallPath:
    """An entry function, the hops taken, and the sink call reached."""

    entry: FuncKey
    hops: tuple[Hop, ...]
    sink: ExternalCall

    def render(self) -> str:
        """``entry -> hop -> ... -> sink`` with file:line per hop."""
        parts = [self.entry]
        parts.extend(hop.render() for hop in self.hops)
        return " -> ".join(parts)

    def render_hops(self) -> str:
        """The hops alone (callers prepend their own entry label)."""
        return " -> ".join(hop.render() for hop in self.hops)


def _file_of(index: ProjectIndex, key: FuncKey) -> str:
    summary = index.summary_of(key)
    return summary.path if summary is not None else "?"


def shortest_path_to(
    index: ProjectIndex,
    calls: CallGraph,
    parents: dict[FuncKey, tuple[FuncKey, CallSite] | None],
    target: FuncKey,
) -> tuple[FuncKey, tuple[Hop, ...]]:
    """Reconstruct the BFS path into ``target`` from the parent map."""
    hops: list[Hop] = []
    node = target
    while True:
        parent = parents[node]
        if parent is None:
            break
        caller, site = parent
        hops.append(
            Hop(
                caller=caller,
                target=node,
                path=_file_of(index, caller),
                lineno=site.lineno,
            )
        )
        node = caller
    hops.reverse()
    return node, tuple(hops)


def reachable_paths(
    index: ProjectIndex,
    calls: CallGraph,
    entries: Iterable[FuncKey],
    *,
    sink_match: Callable[[ExternalCall], bool],
    follow_edge: Callable[[FuncKey, FuncKey], bool] | None = None,
    project_sink: Callable[[FuncKey], bool] | None = None,
) -> list[CallPath]:
    """All sink sites reachable from ``entries``, one shortest path each.

    ``sink_match`` classifies external calls as sinks.  ``follow_edge``
    can prune traversal (e.g. stop at coroutine boundaries); it receives
    (caller, callee) and returns whether to walk the edge.
    ``project_sink`` optionally marks whole project *functions* as sinks —
    the path then ends at the call into that function.
    """
    roots = sorted(set(entries))
    parents: dict[FuncKey, tuple[FuncKey, CallSite] | None] = {
        root: None for root in roots
    }
    order: list[FuncKey] = list(roots)
    frontier: list[FuncKey] = list(roots)
    while frontier:
        next_frontier: list[FuncKey] = []
        for node in frontier:
            for edge in calls.edges_from.get(node, ()):
                if follow_edge is not None and not follow_edge(node, edge.callee):
                    continue
                if edge.callee in parents:
                    continue
                if index.function(edge.callee) is None:
                    continue
                parents[edge.callee] = (node, edge.site)
                next_frontier.append(edge.callee)
                order.append(edge.callee)
        frontier = next_frontier

    paths: list[CallPath] = []
    seen_sites: set[tuple[str, int, str]] = set()
    for node in order:
        if project_sink is not None and project_sink(node) and parents[node] is not None:
            entry, hops = shortest_path_to(index, calls, parents, node)
            last = hops[-1]
            pseudo = ExternalCall(
                caller=last.caller,
                dotted=node,
                site=CallSite(
                    chain=(node,),
                    lineno=last.lineno,
                    col=1,
                    awaited=False,
                    n_args=0,
                    source_line="",
                ),
            )
            site_id = (last.path, last.lineno, node)
            if site_id not in seen_sites:
                seen_sites.add(site_id)
                paths.append(CallPath(entry=entry, hops=hops, sink=pseudo))
        for call in calls.external_from.get(node, ()):
            if not sink_match(call):
                continue
            sink_file = _file_of(index, node)
            site_id = (sink_file, call.site.lineno, call.dotted)
            if site_id in seen_sites:
                continue
            seen_sites.add(site_id)
            entry, hops = shortest_path_to(index, calls, parents, node)
            sink_hop = Hop(
                caller=node,
                target=call.dotted,
                path=sink_file,
                lineno=call.site.lineno,
            )
            paths.append(CallPath(entry=entry, hops=hops + (sink_hop,), sink=call))
    paths.sort(key=lambda p: (p.sink.caller, p.sink.site.lineno, p.sink.dotted))
    return paths
