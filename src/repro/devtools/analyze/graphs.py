"""Whole-program graphs assembled from module summaries.

Three artifacts, all deterministic (sorted construction, no hash-order
leakage, byte-identical JSON dumps under any ``PYTHONHASHSEED``):

* :class:`ProjectIndex` — the cross-module symbol table: which modules
  exist, what each defines, and what every import binding points at.
* :class:`ImportGraph` — module-granularity edges split by scope
  (``module`` vs ``local``/lazy, ``TYPE_CHECKING`` excluded), with cycle
  detection over the executed module-level edges.
* :class:`CallGraph` — best-effort interprocedural edges.  Call chains
  resolve through import aliases, module paths, ``self.``/base-class
  method tables, constructor-typed locals (``x = ClassName(...)``) and
  constructor-typed attributes (``self.x = ClassName(...)``).  Anything
  unresolvable is kept as an *external* call under its normalized dotted
  name — which is exactly what the taint rules match sink patterns
  against — or dropped as unknown.

Resolution is deliberately conservative: a missed edge can only cause a
missed finding, never a false one, and the per-file rules still cover the
intraprocedural ground.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.devtools.analyze.summaries import (
    MODULE_SCOPE,
    CallSite,
    FunctionInfo,
    ModuleSummary,
)

__all__ = [
    "FuncKey",
    "CallEdge",
    "ExternalCall",
    "ProjectIndex",
    "ImportGraph",
    "CallGraph",
    "build_graphs",
]

#: A project function is addressed as ``"<module>::<qualname>"``.
FuncKey = str


def func_key(module: str, qualname: str) -> FuncKey:
    return f"{module}::{qualname}"


@dataclass(frozen=True)
class CallEdge:
    """caller --(site)--> callee, both project functions."""

    caller: FuncKey
    callee: FuncKey
    site: CallSite


@dataclass(frozen=True)
class ExternalCall:
    """A call that leaves the project: normalized dotted name + site."""

    caller: FuncKey
    dotted: str
    site: CallSite


class ProjectIndex:
    """Cross-module symbol table over a set of summaries."""

    def __init__(self, summaries: dict[str, ModuleSummary]) -> None:
        self.summaries = summaries
        self.modules = set(summaries)
        #: module -> top-level function names
        self.defs: dict[str, set[str]] = {}
        #: module -> class name -> ClassInfo
        self.classes = {m: s.classes for m, s in summaries.items()}
        for mod, summary in summaries.items():
            self.defs[mod] = {
                f.name
                for f in summary.functions.values()
                if not f.nested and f.class_name is None and f.name != MODULE_SCOPE
            }
        #: module -> binding -> ("module", dotted) | ("symbol", module, name)
        self.bindings: dict[str, dict[str, tuple]] = {}
        for mod, summary in summaries.items():
            table: dict[str, tuple] = {}
            for rec in summary.imports:
                if rec.type_checking:
                    continue
                if rec.name is None:
                    # `import a.b.c` binds `a` (attribute access walks the
                    # full dotted path); `import a.b.c as x` binds `x` to
                    # the deep module directly.
                    root = rec.module.split(".")[0]
                    target = root if rec.binding == root else rec.module
                    table[rec.binding] = ("module", target)
                else:
                    dotted = f"{rec.module}.{rec.name}"
                    if dotted in self.modules:
                        table[rec.binding] = ("module", dotted)
                    else:
                        table[rec.binding] = ("symbol", rec.module, rec.name)
            self.bindings[mod] = table

    # -- lookup helpers ----------------------------------------------------

    def function(self, key: FuncKey) -> FunctionInfo | None:
        mod, _, qual = key.partition("::")
        summary = self.summaries.get(mod)
        if summary is None:
            return None
        return summary.functions.get(qual)

    def summary_of(self, key: FuncKey) -> ModuleSummary | None:
        mod, _, _ = key.partition("::")
        return self.summaries.get(mod)

    def longest_module_prefix(self, dotted: str) -> str | None:
        """The longest known module that is a dotted prefix of ``dotted``."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.modules:
                return candidate
        return None

    def _resolve_in_module(self, mod: str, rest: tuple[str, ...]) -> FuncKey | None:
        """Resolve ``rest`` (a def / Class / Class.method path) inside ``mod``."""
        if not rest:
            return None
        summary = self.summaries.get(mod)
        if summary is None:
            return None
        head = rest[0]
        if len(rest) == 1:
            if head in self.defs[mod]:
                return func_key(mod, head)
            cls = summary.classes.get(head)
            if cls is not None:
                # constructing the class runs its __init__
                if "__init__" in cls.methods:
                    return func_key(mod, f"{head}.__init__")
                return self._resolve_method_in_bases(mod, cls.name, "__init__")
            alias = summary.aliases.get(head)
            if alias is not None and alias != rest:
                return self.resolve_chain(mod, None, alias)[1]
            return None
        if len(rest) == 2:
            cls = summary.classes.get(head)
            if cls is not None:
                return self.resolve_method(mod, head, rest[1])
        return None

    def resolve_method(self, mod: str, class_name: str, method: str) -> FuncKey | None:
        """``Class.method`` in ``mod``, walking project base classes."""
        summary = self.summaries.get(mod)
        if summary is None:
            return None
        cls = summary.classes.get(class_name)
        if cls is None:
            return None
        if method in cls.methods:
            return func_key(mod, f"{class_name}.{method}")
        return self._resolve_method_in_bases(mod, class_name, method)

    def _resolve_method_in_bases(
        self, mod: str, class_name: str, method: str, _depth: int = 0
    ) -> FuncKey | None:
        if _depth > 8:  # defensive: cyclic base chains in broken code
            return None
        cls = self.summaries[mod].classes.get(class_name)
        if cls is None:
            return None
        for base_chain in cls.bases:
            located = self._locate_class(mod, base_chain)
            if located is None:
                continue
            base_mod, base_name = located
            base_cls = self.summaries[base_mod].classes.get(base_name)
            if base_cls is None:
                continue
            if method in base_cls.methods:
                return func_key(base_mod, f"{base_name}.{method}")
            found = self._resolve_method_in_bases(
                base_mod, base_name, method, _depth + 1
            )
            if found is not None:
                return found
        return None

    def _locate_class(
        self, mod: str, chain: tuple[str, ...]
    ) -> tuple[str, str] | None:
        """Resolve a class-reference chain to (module, class name)."""
        if len(chain) == 1 and chain[0] in self.summaries[mod].classes:
            return (mod, chain[0])
        binding = self.bindings.get(mod, {}).get(chain[0])
        if binding is None:
            return None
        if binding[0] == "symbol":
            _, target_mod, symbol = binding
            if len(chain) == 1 and symbol in self.classes.get(target_mod, {}):
                return (target_mod, symbol)
            return None
        # module binding: rebuild the dotted path, split module / class
        dotted = ".".join((binding[1],) + chain[1:])
        prefix = self.longest_module_prefix(dotted)
        if prefix is None:
            return None
        rest = dotted[len(prefix) + 1 :].split(".") if len(dotted) > len(prefix) else []
        if len(rest) == 1 and rest[0] in self.classes.get(prefix, {}):
            return (prefix, rest[0])
        return None

    # -- the resolver ------------------------------------------------------

    def resolve_chain(
        self, mod: str, fn: FunctionInfo | None, chain: tuple[str, ...]
    ) -> tuple[str, FuncKey | str | None]:
        """Resolve one call chain from function ``fn`` in module ``mod``.

        Returns ``("project", FuncKey)``, ``("external", dotted_name)``,
        or ``("unknown", None)``.
        """
        if not chain:
            return ("unknown", None)
        summary = self.summaries[mod]
        head = chain[0]

        # self.method() / self.attr.method() inside a class body
        if head == "self" and fn is not None and fn.class_name is not None:
            if len(chain) == 2:
                resolved = self.resolve_method(mod, fn.class_name, chain[1])
                if resolved is not None:
                    return ("project", resolved)
                return ("unknown", None)
            if len(chain) == 3:
                cls = summary.classes.get(fn.class_name)
                attr_chain = cls.attr_types.get(chain[1]) if cls else None
                if attr_chain is not None:
                    located = self._locate_class_via_chain(mod, attr_chain)
                    if located is not None:
                        found = self.resolve_method(located[0], located[1], chain[2])
                        if found is not None:
                            return ("project", found)
                return ("unknown", None)
            return ("unknown", None)

        # x.method() where x = ClassName(...) earlier in the same body
        if fn is not None and head in fn.local_constructs and len(chain) == 2:
            located = self._locate_class_via_chain(mod, fn.local_constructs[head])
            if located is not None:
                found = self.resolve_method(located[0], located[1], chain[1])
                if found is not None:
                    return ("project", found)
            return ("unknown", None)

        # a name defined in this module
        if head in self.defs[mod] or head in summary.classes:
            found = self._resolve_in_module(mod, chain)
            if found is not None:
                return ("project", found)
            return ("unknown", None)

        # a module-level alias (re-export) in this module
        if head in summary.aliases and len(chain) == 1:
            target = summary.aliases[head]
            if target != chain:
                return self.resolve_chain(mod, None, target)

        binding = self.bindings.get(mod, {}).get(head)
        if binding is None:
            # builtins that matter to the rules stay recognizable
            if len(chain) == 1 and head in _KNOWN_BUILTINS:
                return ("external", head)
            return ("unknown", None)
        if binding[0] == "symbol":
            _, target_mod, symbol = binding
            if target_mod in self.modules:
                found = self._resolve_in_module(
                    target_mod, (symbol,) + chain[1:]
                )
                if found is not None:
                    return ("project", found)
                # fall through: symbol of a project module we couldn't pin
                return ("unknown", None)
            return ("external", ".".join((target_mod, symbol) + chain[1:]))
        # module binding
        dotted = ".".join((binding[1],) + chain[1:])
        prefix = self.longest_module_prefix(dotted)
        if prefix is not None:
            rest = tuple(dotted[len(prefix) + 1 :].split(".")) if len(
                dotted
            ) > len(prefix) else ()
            found = self._resolve_in_module(prefix, rest)
            if found is not None:
                return ("project", found)
            return ("unknown", None)
        return ("external", dotted)

    def _locate_class_via_chain(
        self, mod: str, chain: tuple[str, ...]
    ) -> tuple[str, str] | None:
        return self._locate_class(mod, chain)


#: single-name builtins the rules care about (blocking / dynamic exec).
_KNOWN_BUILTINS = {"open", "input", "eval", "exec", "compile", "print"}

#: method attributes that are sinks *regardless of receiver type* —
#: ``loop.run_until_complete(...)``, ``sock.recv(...)``.  The receiver is
#: usually a parameter the resolver cannot type, so these unknown chains
#: are kept as external calls (dotted as written) instead of dropped;
#: rules suffix-match them like any other external name.
_METHOD_SINK_ATTRS = {
    "run_until_complete",
    "recv",
    "recv_into",
    "recvfrom",
    "sendall",
}


@dataclass
class ImportGraph:
    """Module-granularity import edges, split by executed scope."""

    #: importer module -> sorted imported project modules (module scope)
    module_scope: dict[str, list[str]] = field(default_factory=dict)
    #: importer module -> sorted imported project modules (lazy/local scope)
    local_scope: dict[str, list[str]] = field(default_factory=dict)

    def cycles(self) -> list[list[str]]:
        """Strongly connected components of size > 1 (executed edges only).

        Tarjan's algorithm, iterative, over sorted adjacency — output
        order is deterministic and each cycle is rotated to start at its
        lexicographically smallest module.
        """
        graph = self.module_scope
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        sccs: list[list[str]] = []

        for root in sorted(graph):
            if root in index:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, pos = work.pop()
                if pos == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                children = graph.get(node, [])
                advanced = False
                for i in range(pos, len(children)):
                    child = children[i]
                    if child not in graph and child not in index:
                        continue
                    if child not in index:
                        work.append((node, i + 1))
                        work.append((child, 0))
                        advanced = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index[child])
                if advanced:
                    continue
                if low[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        smallest = min(component)
                        at = component.index(smallest)
                        sccs.append(component[at:] + component[:at])
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return sorted(sccs)

    def to_dict(self) -> dict:
        return {
            "module_scope": {k: list(v) for k, v in sorted(self.module_scope.items())},
            "local_scope": {k: list(v) for k, v in sorted(self.local_scope.items())},
        }


@dataclass
class CallGraph:
    """Resolved interprocedural edges + external calls per function."""

    edges: list[CallEdge] = field(default_factory=list)
    external: list[ExternalCall] = field(default_factory=list)
    #: caller -> sorted unique callee keys (derived adjacency)
    adjacency: dict[FuncKey, list[FuncKey]] = field(default_factory=dict)
    #: caller -> edges out of it, in source order
    edges_from: dict[FuncKey, list[CallEdge]] = field(default_factory=dict)
    #: caller -> external calls out of it, in source order
    external_from: dict[FuncKey, list[ExternalCall]] = field(default_factory=dict)

    def finalize(self) -> None:
        adjacency: dict[FuncKey, list[FuncKey]] = {}
        edges_from: dict[FuncKey, list[CallEdge]] = {}
        external_from: dict[FuncKey, list[ExternalCall]] = {}
        for edge in self.edges:
            edges_from.setdefault(edge.caller, []).append(edge)
            adjacency.setdefault(edge.caller, [])
            if edge.callee not in adjacency[edge.caller]:
                adjacency[edge.caller].append(edge.callee)
        for call in self.external:
            external_from.setdefault(call.caller, []).append(call)
        self.adjacency = {k: sorted(v) for k, v in adjacency.items()}
        self.edges_from = edges_from
        self.external_from = external_from

    def to_dict(self) -> dict:
        return {
            "edges": [
                {
                    "caller": e.caller,
                    "callee": e.callee,
                    "line": e.site.lineno,
                }
                for e in sorted(
                    self.edges, key=lambda e: (e.caller, e.site.lineno, e.callee)
                )
            ],
            "external": [
                {
                    "caller": c.caller,
                    "name": c.dotted,
                    "line": c.site.lineno,
                }
                for c in sorted(
                    self.external, key=lambda c: (c.caller, c.site.lineno, c.dotted)
                )
            ],
        }


def _import_target_module(index: ProjectIndex, rec_module: str, rec_name: str | None) -> str | None:
    """The project module an import record lands in, if any."""
    if rec_name is not None:
        dotted = f"{rec_module}.{rec_name}"
        if dotted in index.modules:
            return dotted
    if rec_module in index.modules:
        return rec_module
    return index.longest_module_prefix(rec_module)


def build_graphs(
    summaries: dict[str, ModuleSummary],
) -> tuple[ProjectIndex, ImportGraph, CallGraph]:
    """Assemble the project index, import graph and call graph."""
    index = ProjectIndex(summaries)

    imports = ImportGraph()
    for mod in sorted(summaries):
        module_targets: set[str] = set()
        local_targets: set[str] = set()
        for rec in summaries[mod].imports:
            if rec.type_checking:
                continue
            target = _import_target_module(index, rec.module, rec.name)
            if target is None or target == mod:
                continue
            (module_targets if rec.scope == "module" else local_targets).add(target)
        if module_targets:
            imports.module_scope[mod] = sorted(module_targets)
        if local_targets:
            imports.local_scope[mod] = sorted(local_targets)

    calls = CallGraph()
    for mod in sorted(summaries):
        summary = summaries[mod]
        for qual in sorted(summary.functions):
            fn = summary.functions[qual]
            caller = func_key(mod, qual)
            for site in fn.calls:
                kind, target = index.resolve_chain(mod, fn, site.chain)
                if kind == "project" and target is not None:
                    calls.edges.append(
                        CallEdge(caller=caller, callee=str(target), site=site)
                    )
                elif kind == "external" and target is not None:
                    calls.external.append(
                        ExternalCall(caller=caller, dotted=str(target), site=site)
                    )
                elif (
                    kind == "unknown"
                    and len(site.chain) >= 2
                    and site.chain[-1] in _METHOD_SINK_ATTRS
                ):
                    calls.external.append(
                        ExternalCall(
                            caller=caller, dotted=".".join(site.chain), site=site
                        )
                    )
    calls.finalize()
    return index, imports, calls
