"""Per-module summaries: everything the project analysis needs from one file.

A :class:`ModuleSummary` is a flat, JSON-round-trippable digest of one
module's AST — imports (with scope and ``TYPE_CHECKING`` gating), function
definitions with their outgoing call sites, class definitions with their
method tables and ``self.<attr> = ClassName(...)`` attribute types, the
callables handed to scheduler sinks, and the file's lint pragmas.  The
whole-program passes (:mod:`repro.devtools.analyze.graphs`) work only on
summaries, never on ASTs, which is what makes the on-disk cache
(:mod:`repro.devtools.analyze.cache`) sufficient for warm runs: an
unchanged file is never re-parsed, and a cached summary carries enough
source text (one line per recorded site) to build findings without
re-reading the file.

Summaries are content-addressed by :func:`source_digest` (SHA-256 of the
source bytes) and versioned by :data:`SUMMARY_SCHEMA`; bumping the schema
invalidates every cached entry at once.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field

from repro.devtools.lint.engine import parse_pragmas

__all__ = [
    "SUMMARY_SCHEMA",
    "CallSite",
    "CallableRef",
    "ImportRecord",
    "FunctionInfo",
    "ClassInfo",
    "ModuleSummary",
    "extract_summary",
    "source_digest",
    "MODULE_SCOPE",
]

#: Bump when the extraction below changes shape — cached summaries with a
#: different schema are discarded, so extractor upgrades never need a
#: manual cache wipe.
SUMMARY_SCHEMA = 1

#: Pseudo-qualname holding module-level call sites (import-time execution).
MODULE_SCOPE = "<module>"

#: Scheduler sinks whose callable arguments must stay picklable: method
#: names taking the callable as first positional arg, and constructors
#: taking it as a keyword.
_SINK_METHODS = {"submit", "map"}
_SINK_KWARGS = {"SweepPlan": "assemble"}


def source_digest(source: str) -> str:
    """Content address of one module's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _attr_chain(node: ast.AST) -> tuple[str, ...]:
    """``a.b.c(...)`` -> ``("a", "b", "c")``; empty if not a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


@dataclass(frozen=True)
class CallSite:
    """One call expression: who is (syntactically) being called, and where."""

    chain: tuple[str, ...]
    lineno: int
    col: int
    awaited: bool
    n_args: int
    source_line: str

    def to_dict(self) -> dict:
        return {
            "chain": list(self.chain),
            "lineno": self.lineno,
            "col": self.col,
            "awaited": self.awaited,
            "n_args": self.n_args,
            "source_line": self.source_line,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CallSite":
        return cls(
            chain=tuple(data["chain"]),
            lineno=data["lineno"],
            col=data["col"],
            awaited=data["awaited"],
            n_args=data["n_args"],
            source_line=data["source_line"],
        )


@dataclass(frozen=True)
class CallableRef:
    """A callable reference handed to a scheduler sink (pickle boundary).

    ``kind`` is ``"lambda"`` (a literal lambda handed straight to the
    sink — EXC001's per-file ground), ``"captured_lambda"`` (a lambda
    bound *inside* a ``functools.partial`` argument, which EXC001 cannot
    see), ``"name"`` (a dotted reference to resolve through the project
    index), or ``"other"`` (an expression the analysis cannot judge —
    given the benefit of the doubt).
    """

    sink: str
    kind: str
    chain: tuple[str, ...]
    lineno: int
    col: int
    source_line: str
    in_function: str

    def to_dict(self) -> dict:
        return {
            "sink": self.sink,
            "kind": self.kind,
            "chain": list(self.chain),
            "lineno": self.lineno,
            "col": self.col,
            "source_line": self.source_line,
            "in_function": self.in_function,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CallableRef":
        return cls(
            sink=data["sink"],
            kind=data["kind"],
            chain=tuple(data["chain"]),
            lineno=data["lineno"],
            col=data["col"],
            source_line=data["source_line"],
            in_function=data["in_function"],
        )


@dataclass(frozen=True)
class ImportRecord:
    """One import binding: what name it creates and what it points at.

    ``name`` is ``None`` for ``import m [as b]`` (binding a module) and the
    imported symbol for ``from m import name [as b]``.  ``scope`` is
    ``"module"`` for top-level imports and ``"local"`` for imports inside a
    function (the sanctioned lazy-import idiom); ``type_checking`` marks
    imports under ``if TYPE_CHECKING:`` which never execute.
    """

    module: str
    name: str | None
    binding: str
    lineno: int
    scope: str
    type_checking: bool
    source_line: str

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "name": self.name,
            "binding": self.binding,
            "lineno": self.lineno,
            "scope": self.scope,
            "type_checking": self.type_checking,
            "source_line": self.source_line,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ImportRecord":
        return cls(
            module=data["module"],
            name=data["name"],
            binding=data["binding"],
            lineno=data["lineno"],
            scope=data["scope"],
            type_checking=data["type_checking"],
            source_line=data["source_line"],
        )


@dataclass
class FunctionInfo:
    """One function/method body: identity plus outgoing call sites."""

    qualname: str
    name: str
    lineno: int
    is_async: bool
    nested: bool
    class_name: str | None
    calls: list[CallSite] = field(default_factory=list)
    #: function-local ``x = ClassName(...)`` assignments, for best-effort
    #: method resolution of ``x.method()`` later in the body.
    local_constructs: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "lineno": self.lineno,
            "is_async": self.is_async,
            "nested": self.nested,
            "class_name": self.class_name,
            "calls": [c.to_dict() for c in self.calls],
            "local_constructs": {
                k: list(v) for k, v in sorted(self.local_constructs.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionInfo":
        return cls(
            qualname=data["qualname"],
            name=data["name"],
            lineno=data["lineno"],
            is_async=data["is_async"],
            nested=data["nested"],
            class_name=data["class_name"],
            calls=[CallSite.from_dict(c) for c in data["calls"]],
            local_constructs={
                k: tuple(v) for k, v in data["local_constructs"].items()
            },
        )


@dataclass
class ClassInfo:
    """One class: bases, method table, and constructor-typed attributes."""

    name: str
    lineno: int
    bases: list[tuple[str, ...]] = field(default_factory=list)
    methods: list[str] = field(default_factory=list)
    #: ``self.attr = ClassName(...)`` seen in any method — a best-effort
    #: attribute type table for resolving ``self.attr.method()``.
    attr_types: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "bases": [list(b) for b in self.bases],
            "methods": sorted(self.methods),
            "attr_types": {k: list(v) for k, v in sorted(self.attr_types.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClassInfo":
        return cls(
            name=data["name"],
            lineno=data["lineno"],
            bases=[tuple(b) for b in data["bases"]],
            methods=list(data["methods"]),
            attr_types={k: tuple(v) for k, v in data["attr_types"].items()},
        )


@dataclass
class ModuleSummary:
    """Everything the whole-program passes need to know about one module."""

    module: str
    path: str
    digest: str
    imports: list[ImportRecord] = field(default_factory=list)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level ``name = lambda ...`` bindings (unpicklable by name).
    lambda_bindings: dict[str, int] = field(default_factory=dict)
    #: module-level ``name = other.thing`` aliases (re-exports to follow).
    aliases: dict[str, tuple[str, ...]] = field(default_factory=dict)
    callable_refs: list[CallableRef] = field(default_factory=list)
    #: 1-based line -> rule codes allowed by an inline pragma on that line.
    pragmas: dict[int, list[str]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": SUMMARY_SCHEMA,
            "module": self.module,
            "path": self.path,
            "digest": self.digest,
            "imports": [i.to_dict() for i in self.imports],
            "functions": {
                q: f.to_dict() for q, f in sorted(self.functions.items())
            },
            "classes": {n: c.to_dict() for n, c in sorted(self.classes.items())},
            "lambda_bindings": dict(sorted(self.lambda_bindings.items())),
            "aliases": {k: list(v) for k, v in sorted(self.aliases.items())},
            "callable_refs": [r.to_dict() for r in self.callable_refs],
            "pragmas": {str(k): sorted(v) for k, v in sorted(self.pragmas.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleSummary":
        return cls(
            module=data["module"],
            path=data["path"],
            digest=data["digest"],
            imports=[ImportRecord.from_dict(i) for i in data["imports"]],
            functions={
                q: FunctionInfo.from_dict(f) for q, f in data["functions"].items()
            },
            classes={n: ClassInfo.from_dict(c) for n, c in data["classes"].items()},
            lambda_bindings=dict(data["lambda_bindings"]),
            aliases={k: tuple(v) for k, v in data["aliases"].items()},
            callable_refs=[CallableRef.from_dict(r) for r in data["callable_refs"]],
            pragmas={int(k): list(v) for k, v in data["pragmas"].items()},
        )

    def allows(self, lineno: int, code: str) -> bool:
        """True when a pragma on ``lineno`` suppresses rule ``code``."""
        allowed = self.pragmas.get(lineno, ())
        return code in allowed or "*" in allowed


class _Extractor(ast.NodeVisitor):
    """One pass over a module AST filling a :class:`ModuleSummary`."""

    def __init__(self, summary: ModuleSummary, lines: list[str]) -> None:
        self.summary = summary
        self.lines = lines
        self._func_stack: list[FunctionInfo] = []
        self._class_stack: list[ClassInfo] = []
        self._type_checking_depth = 0
        self._awaited: set[int] = set()
        module_fn = FunctionInfo(
            qualname=MODULE_SCOPE,
            name=MODULE_SCOPE,
            lineno=1,
            is_async=False,
            nested=False,
            class_name=None,
        )
        summary.functions[MODULE_SCOPE] = module_fn
        self._module_fn = module_fn

    # -- helpers -----------------------------------------------------------

    def _line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def _current_fn(self) -> FunctionInfo:
        return self._func_stack[-1] if self._func_stack else self._module_fn

    def _qualname(self, name: str) -> str:
        parts: list[str] = []
        if self._class_stack:
            parts.append(self._class_stack[-1].name)
        if self._func_stack:
            # nested defs: qualify under the innermost enclosing function
            parts = [self._func_stack[-1].qualname, "<locals>"]
        parts.append(name)
        return ".".join(parts)

    # -- imports -----------------------------------------------------------

    def _import_scope(self) -> str:
        return "local" if self._func_stack else "module"

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.summary.imports.append(
                ImportRecord(
                    module=alias.name,
                    name=None,
                    binding=alias.asname or alias.name.split(".")[0],
                    lineno=node.lineno,
                    scope=self._import_scope(),
                    type_checking=self._type_checking_depth > 0,
                    source_line=self._line(node.lineno),
                )
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            # relative imports stay unresolved: the tree uses absolute
            # imports throughout (enforced by ruff), so don't guess.
            return
        for alias in node.names:
            self.summary.imports.append(
                ImportRecord(
                    module=node.module,
                    name=alias.name,
                    binding=alias.asname or alias.name,
                    lineno=node.lineno,
                    scope=self._import_scope(),
                    type_checking=self._type_checking_depth > 0,
                    source_line=self._line(node.lineno),
                )
            )

    def visit_If(self, node: ast.If) -> None:
        # `if TYPE_CHECKING:` / `if typing.TYPE_CHECKING:` bodies never run.
        test = node.test
        chain = _attr_chain(test) if isinstance(test, (ast.Name, ast.Attribute)) else ()
        if chain and chain[-1] == "TYPE_CHECKING":
            self._type_checking_depth += 1
            for stmt in node.body:
                self.visit(stmt)
            self._type_checking_depth -= 1
            for stmt in node.orelse:
                self.visit(stmt)
            return
        self.generic_visit(node)

    # -- definitions -------------------------------------------------------

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        in_class = bool(self._class_stack) and not self._func_stack
        info = FunctionInfo(
            qualname=self._qualname(node.name),
            name=node.name,
            lineno=node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            nested=bool(self._func_stack),
            class_name=self._class_stack[-1].name if in_class else None,
        )
        self.summary.functions[info.qualname] = info
        if in_class:
            self._class_stack[-1].methods.append(node.name)
        self._func_stack.append(info)
        for stmt in node.body:
            self.visit(stmt)
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        info = ClassInfo(name=node.name, lineno=node.lineno)
        for base in node.bases:
            chain = _attr_chain(base)
            if chain:
                info.bases.append(chain)
        self.summary.classes[node.name] = info
        self._class_stack.append(info)
        for stmt in node.body:
            self.visit(stmt)
        self._class_stack.pop()

    # -- statements & expressions -----------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1:
            target = node.targets[0]
            value = node.value
            if isinstance(target, ast.Name):
                if not self._func_stack and not self._class_stack:
                    # module level: lambda bindings + simple aliases
                    if isinstance(value, ast.Lambda):
                        self.summary.lambda_bindings[target.id] = node.lineno
                    else:
                        chain = _attr_chain(value)
                        if chain:
                            self.summary.aliases[target.id] = chain
                elif self._func_stack and isinstance(value, ast.Call):
                    chain = _attr_chain(value.func)
                    if chain:
                        self._current_fn().local_constructs.setdefault(
                            target.id, chain
                        )
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self._class_stack
                and isinstance(value, ast.Call)
            ):
                chain = _attr_chain(value.func)
                if chain:
                    self._class_stack[-1].attr_types.setdefault(target.attr, chain)
        self.generic_visit(node)

    def visit_Await(self, node: ast.Await) -> None:
        if isinstance(node.value, ast.Call):
            self._awaited.add(id(node.value))
        self.generic_visit(node)

    def _record_callable_refs(self, node: ast.Call) -> None:
        """Collect callables flowing into scheduler sinks at this call."""
        func = node.func
        sink = None
        args: list[ast.expr] = []
        if isinstance(func, ast.Attribute) and func.attr in _SINK_METHODS:
            if node.args:
                sink = f".{func.attr}()"
                args = [node.args[0]]
        callee = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        if callee in _SINK_KWARGS:
            wanted = _SINK_KWARGS[callee]
            for kw in node.keywords:
                if kw.arg == wanted:
                    sink = f"{callee}({wanted}=...)"
                    args = [kw.value]
        if sink is None:
            return
        for arg in args:
            for ref in self._judge_callable(arg, sink):
                self.summary.callable_refs.append(ref)

    def _judge_callable(self, arg: ast.expr, sink: str) -> list[CallableRef]:
        fn = self._current_fn()

        def ref(kind: str, chain: tuple[str, ...], node: ast.expr) -> CallableRef:
            return CallableRef(
                sink=sink,
                kind=kind,
                chain=chain,
                lineno=node.lineno,
                col=node.col_offset + 1,
                source_line=self._line(node.lineno),
                in_function=fn.qualname,
            )

        # functools.partial(fn, ...): judge fn AND every bound argument —
        # a lambda captured in a partial is just as unpicklable as the
        # partial's target.
        if isinstance(arg, ast.Call):
            chain = _attr_chain(arg.func)
            if chain and chain[-1] == "partial" and arg.args:
                out: list[CallableRef] = []
                out.extend(self._judge_callable(arg.args[0], sink))
                for bound in list(arg.args[1:]) + [kw.value for kw in arg.keywords]:
                    if isinstance(bound, ast.Lambda):
                        out.append(ref("captured_lambda", (), bound))
                return out
            return [ref("other", (), arg)]
        if isinstance(arg, ast.Lambda):
            return [ref("lambda", (), arg)]
        chain = _attr_chain(arg)
        if chain:
            return [ref("name", chain, arg)]
        return [ref("other", (), arg)]

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if chain:
            self._current_fn().calls.append(
                CallSite(
                    chain=chain,
                    lineno=node.lineno,
                    col=node.col_offset + 1,
                    awaited=id(node) in self._awaited,
                    n_args=len(node.args) + len(node.keywords),
                    source_line=self._line(node.lineno),
                )
            )
        self._record_callable_refs(node)
        self.generic_visit(node)


def extract_summary(source: str, *, module: str, path: str) -> ModuleSummary:
    """Parse one module and digest it into a :class:`ModuleSummary`.

    Raises :class:`SyntaxError` for unparseable source — callers surface
    that as an analysis error rather than a finding.
    """
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    summary = ModuleSummary(
        module=module,
        path=path,
        digest=source_digest(source),
        pragmas={k: sorted(v) for k, v in parse_pragmas(lines).items()},
    )
    _Extractor(summary, lines).visit(tree)
    return summary
