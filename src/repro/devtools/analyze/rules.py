"""The interprocedural rule set: TNT001/TNT002/TNT003 + LAY001.

Project rules mirror the per-file :class:`repro.devtools.lint.registry.
Rule` contract — a code, a name, a severity, and a ``check`` generator —
but receive the whole :class:`~repro.devtools.analyze.project.
ProjectContext` (summaries + import graph + call graph) instead of one
file.  Findings anchor at a concrete line (the sink call, the callable
reference, the import statement), so the inline-pragma and ratcheting-
baseline machinery from the per-file linter applies unchanged.  Each
taint rule also honors its per-file companion's pragma at the sink line
(``DET001``/``DET002`` for TNT001, ``SRV001`` for TNT002, ``EXC001`` for
TNT003): a sanctioned telemetry site sanctions every path into it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Type

from repro.devtools.analyze.graphs import ExternalCall, FuncKey, func_key
from repro.devtools.analyze.summaries import MODULE_SCOPE
from repro.devtools.analyze.taint import reachable_paths
from repro.devtools.lint.findings import Finding, Severity
from repro.devtools.lint.rules.determinism import _CLOCK_ATTRS, _NP_RANDOM_OK

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.devtools.analyze.project import ProjectContext

__all__ = [
    "ProjectRule",
    "register_project_rule",
    "all_project_rules",
    "resolve_project_rules",
    "LAYERS",
]

_REGISTRY: dict[str, "ProjectRule"] = {}


class ProjectRule:
    """Base class for whole-program rules."""

    code: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    #: pragma codes that also suppress this rule at the anchored line.
    companions: tuple[str, ...] = ()

    def check(self, ctx: "ProjectContext") -> Iterator[Finding]:
        raise NotImplementedError

    def allowed(self, ctx: "ProjectContext", module: str, lineno: int) -> bool:
        summary = ctx.summaries.get(module)
        if summary is None:
            return False
        return any(
            summary.allows(lineno, code) for code in (self.code, *self.companions)
        )

    def finding(
        self,
        ctx: "ProjectContext",
        module: str,
        lineno: int,
        col: int,
        message: str,
        source_line: str,
    ) -> Finding:
        summary = ctx.summaries[module]
        return Finding(
            rule=self.code,
            message=message,
            path=summary.path,
            line=lineno,
            col=col,
            severity=self.severity,
            source_line=source_line,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProjectRule {self.code}>"


def register_project_rule(cls: Type[ProjectRule]) -> Type[ProjectRule]:
    rule = cls()
    if not rule.code:
        raise ValueError(f"project rule {cls.__name__} has no code")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate project rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return cls


def all_project_rules() -> list[ProjectRule]:
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def resolve_project_rules(
    select: Iterable[str] | None = None, ignore: Iterable[str] | None = None
) -> list[ProjectRule]:
    rules = all_project_rules()
    if select:
        wanted = set(select)
        unknown = wanted - {r.code for r in rules}
        if unknown:
            raise KeyError(f"unknown project rule code(s): {', '.join(sorted(unknown))}")
        rules = [r for r in rules if r.code in wanted]
    if ignore:
        dropped = set(ignore)
        rules = [r for r in rules if r.code not in dropped]
    return rules


def _in_packages(module: str, packages: tuple[str, ...]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in packages)


def _entry_keys(ctx: "ProjectContext", packages: tuple[str, ...]) -> list[FuncKey]:
    keys: list[FuncKey] = []
    for mod in sorted(ctx.summaries):
        if not _in_packages(mod, packages):
            continue
        for qual in sorted(ctx.summaries[mod].functions):
            keys.append(func_key(mod, qual))
    return keys


def _entry_label(key: FuncKey) -> str:
    mod, _, qual = key.partition("::")
    return mod if qual == MODULE_SCOPE else f"{mod}.{qual}"


# --------------------------------------------------------------------- TNT001


#: entry packages whose results must be a pure function of the seed.  This
#: is DET002's scope plus ``repro.campaigns`` — campaign reports are
#: replayed byte-for-byte in CI, so the campaign plane is deterministic
#: code even though the per-file wall-clock rule predates it.
_DETERMINISTIC_PACKAGES = (
    "repro.sim",
    "repro.core",
    "repro.net",
    "repro.exec",
    "repro.experiments",
    "repro.campaigns",
)

#: DET002's per-file scope: clock sinks inside these packages are already
#: reported (or pragma-sanctioned) by the per-file rule; TNT001 reports
#: only clock sinks *outside* them that deterministic code reaches.
_DET002_PACKAGES = (
    "repro.sim",
    "repro.core",
    "repro.net",
    "repro.exec",
    "repro.experiments",
    "repro.obs",
)

#: suffix -> description for entropy sources no per-file rule covers.
_ENTROPY_SUFFIXES = {
    "os.urandom": "reads kernel entropy",
    "uuid.uuid1": "derives from host clock and MAC",
    "uuid.uuid4": "reads kernel entropy",
}

_CLOCK_SUFFIXES = tuple(
    f"{mod}.{attr}" for mod, attrs in sorted(_CLOCK_ATTRS.items()) for attr in sorted(attrs)
)


def _dotted_suffix_match(dotted: str, suffixes: tuple[str, ...] | dict) -> str | None:
    for suffix in suffixes:
        if dotted == suffix or dotted.endswith("." + suffix):
            return suffix
    return None


def _is_clock_sink(call: ExternalCall) -> bool:
    return _dotted_suffix_match(call.dotted, _CLOCK_SUFFIXES) is not None


def _is_entropy_sink(call: ExternalCall) -> bool:
    if _dotted_suffix_match(call.dotted, tuple(_ENTROPY_SUFFIXES)) is not None:
        return True
    return call.dotted.startswith("secrets.")


def _is_global_rng_sink(call: ExternalCall) -> bool:
    parts = call.dotted.split(".")
    if parts[-1] == "default_rng" and call.site.n_args == 0:
        return True
    if parts[0] == "random" and len(parts) > 1:
        return True  # stdlib random.*
    for i, part in enumerate(parts[:-1]):
        if part in ("numpy", "np") and parts[i + 1] == "random":
            tail = parts[i + 2] if len(parts) > i + 2 else ""
            return bool(tail) and tail not in _NP_RANDOM_OK
    return False


@register_project_rule
class DeterminismTaint(ProjectRule):
    """TNT001: no wall-clock / entropy source reachable from seeded code.

    The per-file rules (DET001/DET002) prove each file clean in
    isolation; this rule closes the gap they cannot see — a function in a
    deterministic package calling a helper *in another module* that reads
    the clock or draws from unseeded entropy.  A pragma on the sink line
    (``TNT001``, ``DET001`` or ``DET002``) sanctions every path into it,
    so the audited telemetry escape hatches (``repro.obs.clock``) stay
    silent.
    """

    code = "TNT001"
    name = "no wall-clock/entropy source reachable from deterministic packages"
    companions = ("DET001", "DET002")

    def _sink_kind(self, ctx: "ProjectContext", call: ExternalCall) -> str | None:
        sink_module = call.caller.partition("::")[0]
        if _is_clock_sink(call):
            # per-file DET002 already covers (or sanctions) these packages
            if _in_packages(sink_module, _DET002_PACKAGES):
                return None
            return "wall clock"
        if _is_entropy_sink(call):
            return "entropy source"
        if _is_global_rng_sink(call):
            if sink_module.startswith("repro"):
                return None  # DET001 covers every repro module per-file
            return "global RNG"
        return None

    def check(self, ctx: "ProjectContext") -> Iterator[Finding]:
        entries = _entry_keys(ctx, _DETERMINISTIC_PACKAGES)
        paths = reachable_paths(
            ctx.index,
            ctx.calls,
            entries,
            sink_match=lambda call: self._sink_kind(ctx, call) is not None,
        )
        for path in paths:
            sink_module = path.sink.caller.partition("::")[0]
            if self.allowed(ctx, sink_module, path.sink.site.lineno):
                continue
            kind = self._sink_kind(ctx, path.sink)
            yield self.finding(
                ctx,
                sink_module,
                path.sink.site.lineno,
                path.sink.site.col,
                f"{path.sink.dotted} is a {kind} reachable from "
                f"deterministic code; call path: "
                f"{_entry_label(path.entry)} -> {path.render_hops()}",
                path.sink.site.source_line,
            )


# --------------------------------------------------------------------- TNT002

#: external dotted suffixes that block the event loop, with the fix.
_BLOCKING_SUFFIXES = {
    "time.sleep": "await asyncio.sleep(...)",
    "socket.socket": "asyncio.open_connection / asyncio.start_server",
    "socket.create_connection": "asyncio.open_connection",
    "socket.create_server": "asyncio.start_server",
    "subprocess.run": "asyncio.create_subprocess_exec",
    "subprocess.call": "asyncio.create_subprocess_exec",
    "subprocess.check_call": "asyncio.create_subprocess_exec",
    "subprocess.check_output": "asyncio.create_subprocess_exec",
    "subprocess.Popen": "asyncio.create_subprocess_exec",
    "os.system": "asyncio.create_subprocess_exec",
    "open": "asyncio.to_thread(...) or pre-open outside the loop",
    # receiver-typed socket methods kept by the graph's method-sink
    # watchlist (see graphs._METHOD_SINK_ATTRS)
    "recv": "await reader.read(n) on an asyncio stream",
    "recv_into": "await reader.read(n) on an asyncio stream",
    "recvfrom": "asyncio datagram transports",
    "sendall": "writer.write(...) + await writer.drain()",
}


@register_project_rule
class BlockingReachability(ProjectRule):
    """TNT002: no blocking call reachable from a ``repro.serve`` coroutine.

    SRV001 flags blocking calls written *directly inside* a coroutine;
    this rule walks the call graph from every serve coroutine through
    synchronous helpers (in any package) to the same blocking sinks, plus
    ``loop.run_until_complete`` (re-entering the loop from inside itself
    deadlocks) and bare ``open()`` (disk I/O stalls every actor).  The
    sync helper itself is innocent in isolation — which is exactly why a
    per-file rule cannot see this.
    """

    code = "TNT002"
    name = "no blocking call reachable from serve coroutines via sync helpers"
    companions = ("SRV001",)

    def _sink_fix(self, call: ExternalCall) -> str | None:
        if call.site.awaited:
            return None  # an awaited call yields; it does not block the loop
        if call.dotted.split(".")[-1] == "run_until_complete":
            return "schedule the coroutine on the running loop (await it)"
        suffix = _dotted_suffix_match(call.dotted, tuple(_BLOCKING_SUFFIXES))
        if suffix is not None:
            return _BLOCKING_SUFFIXES[suffix]
        return None

    def check(self, ctx: "ProjectContext") -> Iterator[Finding]:
        entries = [
            key
            for key in _entry_keys(ctx, ("repro.serve",))
            if (fn := ctx.index.function(key)) is not None and fn.is_async
        ]
        paths = reachable_paths(
            ctx.index,
            ctx.calls,
            entries,
            sink_match=lambda call: self._sink_fix(call) is not None,
        )
        for path in paths:
            sink_module = path.sink.caller.partition("::")[0]
            sink_fn = ctx.index.function(path.sink.caller)
            # a blocking call directly inside a serve coroutine is SRV001's
            # finding; report only the interprocedural case here.
            if (
                sink_fn is not None
                and sink_fn.is_async
                and sink_module.startswith("repro.serve")
            ):
                continue
            if self.allowed(ctx, sink_module, path.sink.site.lineno):
                continue
            fix = self._sink_fix(path.sink)
            yield self.finding(
                ctx,
                sink_module,
                path.sink.site.lineno,
                path.sink.site.col,
                f"{path.sink.dotted} blocks the event loop and is reachable "
                f"from coroutine `{_entry_label(path.entry)}`; every actor "
                f"stalls until it returns — use {fix}; call path: "
                f"{_entry_label(path.entry)} -> {path.render_hops()}",
                path.sink.site.source_line,
            )


# --------------------------------------------------------------------- TNT003


@register_project_rule
class PickleSafety(ProjectRule):
    """TNT003: scheduler callables must resolve to module-level functions.

    EXC001 judges the expression at the call site; this rule resolves
    *references* — through module aliases, re-exports and ``from``-imports
    across files — and flags callables that pickle by qualified name but
    cannot round-trip: module-level ``name = lambda ...`` bindings and
    lambdas captured inside ``functools.partial`` arguments.
    """

    code = "TNT003"
    name = "scheduler callables must resolve picklable through the reference chain"
    companions = ("EXC001",)

    def _lambda_binding_of(
        self, ctx: "ProjectContext", module: str, chain: tuple[str, ...], depth: int = 0
    ) -> tuple[str, str] | None:
        """Follow a reference chain to a module-level lambda binding."""
        if depth > 8 or not chain:
            return None
        summary = ctx.summaries.get(module)
        if summary is None:
            return None
        head = chain[0]
        if len(chain) == 1:
            if head in summary.lambda_bindings:
                return (module, head)
            alias = summary.aliases.get(head)
            if alias is not None and alias != chain:
                return self._lambda_binding_of(ctx, module, alias, depth + 1)
        binding = ctx.index.bindings.get(module, {}).get(head)
        if binding is None:
            return None
        if binding[0] == "symbol":
            _, target_mod, symbol = binding
            if target_mod in ctx.summaries:
                return self._lambda_binding_of(
                    ctx, target_mod, (symbol,) + chain[1:], depth + 1
                )
            return None
        dotted = ".".join((binding[1],) + chain[1:])
        prefix = ctx.index.longest_module_prefix(dotted)
        if prefix is None or len(dotted) == len(prefix):
            return None
        rest = tuple(dotted[len(prefix) + 1 :].split("."))
        return self._lambda_binding_of(ctx, prefix, rest, depth + 1)

    def check(self, ctx: "ProjectContext") -> Iterator[Finding]:
        for module in sorted(ctx.summaries):
            summary = ctx.summaries[module]
            for ref in summary.callable_refs:
                if self.allowed(ctx, module, ref.lineno):
                    continue
                if ref.kind == "captured_lambda":
                    yield self.finding(
                        ctx,
                        module,
                        ref.lineno,
                        ref.col,
                        f"lambda captured in a functools.partial argument "
                        f"handed to {ref.sink}: the partial pickles its "
                        "bound arguments too, and lambdas cannot — bind a "
                        "module-level function instead",
                        ref.source_line,
                    )
                elif ref.kind == "name":
                    located = self._lambda_binding_of(ctx, module, ref.chain)
                    if located is not None:
                        target_mod, name = located
                        yield self.finding(
                            ctx,
                            module,
                            ref.lineno,
                            ref.col,
                            f"`{'.'.join(ref.chain)}` handed to {ref.sink} "
                            f"resolves to the module-level lambda binding "
                            f"`{name}` in {target_mod}: it pickles by "
                            'qualname "<lambda>" and cannot round-trip to '
                            "a worker — def a module-level function",
                            ref.source_line,
                        )


# --------------------------------------------------------------------- LAY001

#: The declared layer DAG (package -> rank).  A module-level import must
#: target a strictly lower rank (or its own package); function-scoped lazy
#: imports — the sanctioned registry/factory idiom — are exempt, as are
#: ``TYPE_CHECKING`` blocks.  ``repro`` itself (the façade) re-exports
#: downward from the top and is exempt as a source.
LAYERS: dict[str, int] = {
    "repro._version": 0,
    "repro.errors": 0,
    "repro.crypto": 1,
    "repro.sim": 1,
    "repro.net": 2,
    "repro.obs": 2,
    "repro.structured": 2,
    "repro.analysis": 2,
    "repro.onion": 3,
    "repro.filesharing": 3,
    "repro.perf": 3,
    "repro.core": 4,
    "repro.baselines": 5,
    "repro.vector": 5,
    "repro.workloads": 5,
    "repro.attacks": 6,
    "repro.serve": 6,
    "repro.exec": 7,
    "repro.experiments": 8,
    "repro.campaigns": 8,
}

#: devtools may import only these runtime packages (it analyzes the
#: runtime; it must never *be* the runtime).
_DEVTOOLS_ALLOWED = ("repro.devtools", "repro.errors", "repro._version")

#: Fine-grained bans inside an otherwise-allowed layer edge.  The array
#: kernel (repro.vector) may import repro.core's *shared seams* — config,
#: interface, runtime, semantics, discovery, ranking, messages, world,
#: trust_models — but never the object kernel's service internals: both
#: kernels must stay swappable behind ReputationSystem, and a dependency
#: on per-object wiring would quietly fuse them back together.
_FORBIDDEN_INTERNALS: dict[str, tuple[str, ...]] = {
    "repro.vector": (
        "repro.core.system",
        "repro.core.services",
        "repro.core.peer",
        "repro.core.agent",
        "repro.core.agent_list",
        "repro.core.dispatch",
        "repro.core.expertise",
    ),
}


def _package_of(module: str) -> str | None:
    """The declared layering package a module belongs to, if any."""
    if module == "repro.devtools" or module.startswith("repro.devtools."):
        return "repro.devtools"
    best: str | None = None
    for pkg in LAYERS:
        if module == pkg or module.startswith(pkg + "."):
            if best is None or len(pkg) > len(best):
                best = pkg
    return best


@register_project_rule
class LayerDAG(ProjectRule):
    """LAY001: module-level imports must respect the declared layer DAG.

    Also detects module-granularity import cycles over the executed
    (module-scope, non-``TYPE_CHECKING``) edges — a cycle that happens to
    import today is one reordering away from an ``ImportError``, and it
    makes the layer diagram a lie either way.
    """

    code = "LAY001"
    name = "imports follow the declared layer DAG (no upward module-level imports)"

    def _import_violation(
        self, src_module: str, dst_module: str
    ) -> str | None:
        if src_module == "repro" or dst_module == "repro":
            return None  # the façade package re-exports from the top
        src_pkg = _package_of(src_module)
        dst_pkg = _package_of(dst_module)
        if src_pkg == "repro.devtools":
            if dst_pkg == "repro.devtools" or _in_packages(
                dst_module, _DEVTOOLS_ALLOWED
            ):
                return None
            return (
                f"devtools must not import runtime code ({dst_module}); "
                "the analyzer cannot depend on what it analyzes"
            )
        if src_pkg is None:
            if not src_module.startswith("repro."):
                return None  # not our tree: nothing declared, nothing owed
            return (
                f"package of {src_module} is not in the declared layering; "
                "add it to repro.devtools.analyze.rules.LAYERS"
            )
        banned = _FORBIDDEN_INTERNALS.get(src_pkg)
        if banned and any(
            dst_module == b or dst_module.startswith(b + ".") for b in banned
        ):
            return (
                f"{src_pkg} must not import object-kernel internals "
                f"({dst_module}); depend on the shared seams "
                "(repro.core.semantics/interface/runtime) instead"
            )
        if dst_pkg is None or src_pkg == dst_pkg:
            return None
        if dst_pkg == "repro.devtools":
            return f"runtime code must not import devtools ({dst_module})"
        if LAYERS[dst_pkg] >= LAYERS[src_pkg]:
            return (
                f"{src_pkg} (layer {LAYERS[src_pkg]}) imports {dst_pkg} "
                f"(layer {LAYERS[dst_pkg]}) at module level — an upward "
                "dependency; invert it or make the import function-scoped "
                "(the lazy registry/factory idiom)"
            )
        return None

    def check(self, ctx: "ProjectContext") -> Iterator[Finding]:
        # upward module-level imports (one finding per line+target: a
        # `from m import a, b` line yields two records but one violation)
        seen: set[tuple[str, int, str]] = set()
        for module in sorted(ctx.summaries):
            summary = ctx.summaries[module]
            for rec in summary.imports:
                if rec.scope != "module" or rec.type_checking:
                    continue
                target = ctx.index.longest_module_prefix(
                    f"{rec.module}.{rec.name}" if rec.name else rec.module
                )
                if target is None or target == module:
                    continue
                message = self._import_violation(module, target)
                if message is None:
                    continue
                if (module, rec.lineno, target) in seen:
                    continue
                seen.add((module, rec.lineno, target))
                if self.allowed(ctx, module, rec.lineno):
                    continue
                yield self.finding(
                    ctx, module, rec.lineno, 1, message, rec.source_line
                )
        # module-level import cycles
        for cycle in ctx.imports.cycles():
            first = cycle[0]
            summary = ctx.summaries.get(first)
            if summary is None:
                continue
            nxt = cycle[1] if len(cycle) > 1 else first
            lineno = 1
            source_line = ""
            for rec in summary.imports:
                if rec.scope != "module" or rec.type_checking:
                    continue
                target = ctx.index.longest_module_prefix(
                    f"{rec.module}.{rec.name}" if rec.name else rec.module
                )
                if target == nxt:
                    lineno = rec.lineno
                    source_line = rec.source_line
                    break
            if self.allowed(ctx, first, lineno):
                continue
            loop_ = " -> ".join(cycle + [first])
            yield self.finding(
                ctx,
                first,
                lineno,
                1,
                f"module-level import cycle: {loop_}; break it with a "
                "function-scoped import or by moving the shared piece down "
                "a layer",
                source_line,
            )
