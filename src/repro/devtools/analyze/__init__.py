"""Whole-program static analysis for hiREP: import/call graphs + taint rules.

The per-file rules in :mod:`repro.devtools.lint` can prove properties of
one module at a time; they cannot see a wall-clock read reached *through a
helper in another module*, a serve coroutine that blocks the event loop
three sync calls deep, or an import that quietly inverts the layer DAG.
This package parses the tree once into content-addressed per-module
summaries (cached on disk, re-parsed only when the source hash changes),
assembles an import graph and a best-effort call graph, and runs
interprocedural rules over them:

* ``TNT001`` — determinism taint: wall-clock / entropy sources reachable
  from deterministic packages, reported as a call path;
* ``TNT002`` — blocking-call reachability from ``repro.serve`` coroutines
  through sync helpers (the interprocedural closure of SRV001);
* ``TNT003`` — pickle-safety of callables handed to the ``repro.exec``
  scheduler, resolved through aliases and modules (the closure of EXC001);
* ``LAY001`` — the declared layer DAG over packages, plus module-level
  import-cycle detection.

Findings flow through the same :class:`~repro.devtools.lint.findings.
Finding` / pragma / ratcheting-baseline machinery as the per-file rules,
surfaced by the ``hirep-analyze`` CLI and ``hirep-lint --project``.
See ``docs/static-analysis.md``.
"""

from repro.devtools.analyze.cache import SummaryCache
from repro.devtools.analyze.graphs import CallGraph, ImportGraph, ProjectIndex
from repro.devtools.analyze.project import (
    AnalysisResult,
    ProjectContext,
    analyze_project,
    build_context,
    collect_summaries,
)
from repro.devtools.analyze.rules import (
    ProjectRule,
    all_project_rules,
    resolve_project_rules,
)
from repro.devtools.analyze.summaries import (
    MODULE_SCOPE,
    SUMMARY_SCHEMA,
    CallableRef,
    CallSite,
    ClassInfo,
    FunctionInfo,
    ImportRecord,
    ModuleSummary,
    extract_summary,
    source_digest,
)
from repro.devtools.analyze.taint import CallPath, Hop, reachable_paths

__all__ = [
    "AnalysisResult",
    "CallGraph",
    "CallPath",
    "CallSite",
    "CallableRef",
    "ClassInfo",
    "FunctionInfo",
    "Hop",
    "ImportGraph",
    "ImportRecord",
    "MODULE_SCOPE",
    "ModuleSummary",
    "ProjectContext",
    "ProjectIndex",
    "ProjectRule",
    "SUMMARY_SCHEMA",
    "SummaryCache",
    "all_project_rules",
    "analyze_project",
    "build_context",
    "collect_summaries",
    "extract_summary",
    "reachable_paths",
    "resolve_project_rules",
    "source_digest",
]
