"""The ``hirep-analyze`` command-line interface.

Two modes:

* ``hirep-analyze [paths...]`` — run the interprocedural rule set
  (TNT001/TNT002/TNT003/LAY001) over the tree and report findings through
  the same reporters, baseline and exit-code contract as ``hirep-lint``:
  0 clean (or baselined), 1 new findings / stale baseline / errors, 2 bad
  invocation.
* ``hirep-analyze graph [paths...]`` — dump the import graph and call
  graph as deterministic JSON (sorted keys, sorted edges; byte-identical
  under any ``PYTHONHASHSEED``).

Both modes share the content-addressed summary cache
(``.hirep-analyze-cache/`` under ``--root`` by default, disable with
``--no-cache``); a warm run over an unchanged tree re-parses nothing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence, TextIO

from repro.devtools.analyze.cache import DEFAULT_CACHE_DIR, SummaryCache
from repro.devtools.analyze.project import analyze_project, build_context, collect_summaries
from repro.devtools.analyze.rules import all_project_rules, resolve_project_rules
from repro.devtools.lint import baseline as baseline_mod
from repro.devtools.lint.config import load_config
from repro.devtools.lint.reporters import REPORTERS

__all__ = ["main", "build_parser", "DEFAULT_PROJECT_BASELINE"]

#: Separate from the per-file linter's baseline on purpose: baselines
#: track staleness ("entry no longer matched by this run"), and the two
#: tools produce disjoint finding sets — sharing one file would make each
#: tool flag the other's entries as stale.
DEFAULT_PROJECT_BASELINE = ".hirep-analyze-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hirep-analyze",
        description="whole-program analysis for hiREP (taint + layering rules)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text", help="output format"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: {DEFAULT_PROJECT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore the baseline entirely"
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="drop stale entries from the baseline (shrink-only ratchet)",
    )
    parser.add_argument("--select", action="append", help="only run these rule codes")
    parser.add_argument("--ignore", action="append", help="skip these rule codes")
    parser.add_argument(
        "--root", default=".", help="repo root for config and relative paths"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"summary cache directory (default: <root>/{DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="parse everything, cache nothing"
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print cache hit/miss counters after the run",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print project rules and exit"
    )
    return parser


def build_graph_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hirep-analyze graph",
        description="dump the import and call graphs as deterministic JSON",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    parser.add_argument("--root", default=".", help="repo root for relative paths")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"summary cache directory (default: <root>/{DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="parse everything, cache nothing"
    )
    parser.add_argument(
        "--indent", type=int, default=2, help="JSON indent (0 for compact)"
    )
    return parser


def _resolve_targets(root: Path, paths: Sequence[str]) -> list[Path]:
    return [
        path if path.is_absolute() else root / path
        for path in (Path(p) for p in paths)
    ]


def _make_cache(root: Path, cache_dir: str | None, no_cache: bool) -> SummaryCache:
    if no_cache:
        return SummaryCache.disabled()
    directory = Path(cache_dir) if cache_dir else root / DEFAULT_CACHE_DIR
    if not directory.is_absolute():
        directory = root / directory
    return SummaryCache(directory=directory)


def _graph_main(argv: Sequence[str], stream: TextIO) -> int:
    args = build_graph_parser().parse_args(argv)
    root = Path(args.root).resolve()
    config = load_config(root)
    cache = _make_cache(root, args.cache_dir, args.no_cache)
    summaries, errors = collect_summaries(
        _resolve_targets(root, args.paths),
        repo_root=root,
        cache=cache,
        exclude=config.exclude,
    )
    ctx = build_context(summaries)
    payload = {
        "modules": sorted(summaries),
        "imports": ctx.imports.to_dict(),
        "calls": ctx.calls.to_dict(),
        "errors": sorted(errors),
    }
    indent = args.indent if args.indent > 0 else None
    print(json.dumps(payload, indent=indent, sort_keys=True), file=stream)
    return 1 if errors else 0


def _list_rules(stream: TextIO) -> None:
    for rule in all_project_rules():
        print(f"{rule.code}  [{rule.severity.value}]  {rule.name}", file=stream)


def main(argv: Sequence[str] | None = None, stream: TextIO | None = None) -> int:
    out = stream if stream is not None else sys.stdout
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "graph":
        return _graph_main(argv[1:], out)
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _list_rules(out)
        return 0

    root = Path(args.root).resolve()
    config = load_config(root)
    try:
        rules = resolve_project_rules(
            args.select or None, args.ignore or None
        )
    except KeyError as exc:
        print(f"hirep-analyze: {exc.args[0]}", file=sys.stderr)
        return 2

    cache = _make_cache(root, args.cache_dir, args.no_cache)
    result = analyze_project(
        _resolve_targets(root, args.paths),
        repo_root=root,
        cache=cache,
        exclude=config.exclude,
        rules=rules,
        severity_overrides=config.severity,
    )

    baseline_path = root / (args.baseline or DEFAULT_PROJECT_BASELINE)
    if args.no_baseline:
        baseline = baseline_mod.Baseline(path=baseline_path)
    else:
        try:
            baseline = baseline_mod.Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"hirep-analyze: {exc}", file=sys.stderr)
            return 2

    part = baseline_mod.partition(result.findings, baseline)

    if args.update_baseline and part.stale:
        removed = baseline_mod.shrink(baseline, part)
        baseline.save()
        print(
            f"hirep-analyze: baseline shrank by {removed} entr"
            f"{'y' if removed == 1 else 'ies'}",
            file=out,
        )
        part = baseline_mod.partition(result.findings, baseline)

    REPORTERS[args.format](part, result.errors, out)
    if args.stats and cache is not None:
        print(
            f"hirep-analyze: cache {cache.stats.hits} hit(s), "
            f"{cache.stats.misses} miss(es), {cache.stats.stored} stored",
            file=out,
        )
    return 1 if (part.fails or result.errors) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
