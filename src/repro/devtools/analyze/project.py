"""Project-level orchestration: files -> summaries -> graphs -> findings.

``collect_summaries`` walks the tree once (cache-first: an unchanged file
is served from the content-addressed store and never re-parsed),
``build_context`` assembles the whole-program graphs, and
``analyze_project`` runs the interprocedural rules over the result.
Findings come out sorted and occurrence-fingerprinted exactly like the
per-file linter's, so the same baseline/pragma/reporter machinery
consumes them unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.devtools.analyze.cache import SummaryCache
from repro.devtools.analyze.graphs import (
    CallGraph,
    ImportGraph,
    ProjectIndex,
    build_graphs,
)
from repro.devtools.analyze.rules import ProjectRule, resolve_project_rules
from repro.devtools.analyze.summaries import (
    ModuleSummary,
    extract_summary,
    source_digest,
)
from repro.devtools.lint.engine import (
    _dedupe_occurrences,
    iter_python_files,
    module_name_for,
)
from repro.devtools.lint.findings import Finding, Severity, sort_findings

__all__ = [
    "ProjectContext",
    "AnalysisResult",
    "collect_summaries",
    "build_context",
    "analyze_project",
]


@dataclass
class ProjectContext:
    """The assembled whole-program view the rules run against."""

    summaries: dict[str, ModuleSummary]
    index: ProjectIndex
    imports: ImportGraph
    calls: CallGraph


@dataclass
class AnalysisResult:
    """Findings + errors of one project analysis run."""

    findings: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    context: ProjectContext | None = None
    cache: SummaryCache | None = None


def collect_summaries(
    paths: Iterable[Path],
    *,
    repo_root: Path | None = None,
    cache: SummaryCache | None = None,
    exclude: Iterable[str] = (),
) -> tuple[dict[str, ModuleSummary], list[str]]:
    """Summarize every package module under ``paths``, cache-first.

    Files outside any package (no ``__init__.py`` chain — scripts,
    examples) are skipped: they have no importable module name and no
    place in the import or call graph.
    """
    root = (repo_root or Path.cwd()).resolve()
    cache = cache if cache is not None else SummaryCache.disabled()
    summaries: dict[str, ModuleSummary] = {}
    errors: list[str] = []
    for file_path in iter_python_files(paths, exclude):
        resolved = file_path.resolve()
        try:
            rel = resolved.relative_to(root).as_posix()
        except ValueError:
            rel = resolved.as_posix()
        module = module_name_for(resolved)
        if module is None:
            continue
        try:
            source = resolved.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            errors.append(f"{rel}: unreadable: {exc}")
            continue
        digest = source_digest(source)
        summary = cache.get(digest)
        if summary is None:
            try:
                summary = extract_summary(source, module=module, path=rel)
            except SyntaxError as exc:
                errors.append(f"{rel}: syntax error: {exc.msg} (line {exc.lineno})")
                continue
            cache.put(summary)
        else:
            # identical content can live at two paths (e.g. empty
            # __init__.py files share a digest) — repoint the cached copy.
            summary.path = rel
            summary.module = module
        if module in summaries:
            errors.append(
                f"{rel}: duplicate module name {module} "
                f"(also {summaries[module].path}); keeping the first"
            )
            continue
        summaries[module] = summary
    return summaries, errors


def build_context(summaries: dict[str, ModuleSummary]) -> ProjectContext:
    """Assemble index + import graph + call graph over the summaries."""
    index, imports, calls = build_graphs(summaries)
    return ProjectContext(
        summaries=summaries, index=index, imports=imports, calls=calls
    )


def analyze_project(
    paths: Iterable[Path],
    *,
    repo_root: Path | None = None,
    cache: SummaryCache | None = None,
    exclude: Iterable[str] = (),
    rules: Iterable[ProjectRule] | None = None,
    severity_overrides: dict[str, Severity] | None = None,
) -> AnalysisResult:
    """Run the interprocedural rule set over a tree."""
    summaries, errors = collect_summaries(
        paths, repo_root=repo_root, cache=cache, exclude=exclude
    )
    ctx = build_context(summaries)
    active = list(rules) if rules is not None else resolve_project_rules()
    overrides = severity_overrides or {}
    raw: list[Finding] = []
    for rule in active:
        for finding in rule.check(ctx):
            if finding.rule in overrides and overrides[finding.rule] != finding.severity:
                finding = Finding(
                    rule=finding.rule,
                    message=finding.message,
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    severity=overrides[finding.rule],
                    source_line=finding.source_line,
                )
            raw.append(finding)
    findings = sort_findings(_dedupe_occurrences(raw))
    return AnalysisResult(findings=findings, errors=errors, context=ctx, cache=cache)
