"""Content-addressed on-disk cache of module summaries.

One JSON file per summary, named by the SHA-256 of the module *source*,
so the cache needs no invalidation protocol: edit a file and its digest —
hence its cache key — changes, and the stale entry is simply never read
again.  Entries also carry the extractor schema version; a schema bump
(:data:`~repro.devtools.analyze.summaries.SUMMARY_SCHEMA`) orphans every
old entry without a manual wipe.

The cache keeps hit/miss/parse counters so tests (and ``--stats``) can
assert the warm-run property directly: a second run over an unchanged
tree must re-parse nothing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.analyze.summaries import SUMMARY_SCHEMA, ModuleSummary

__all__ = ["CacheStats", "SummaryCache", "DEFAULT_CACHE_DIR"]

#: Default cache location, relative to the analysis root (gitignored).
DEFAULT_CACHE_DIR = ".hirep-analyze-cache"


@dataclass
class CacheStats:
    """Counters for one analysis run over the cache."""

    hits: int = 0
    misses: int = 0
    stored: int = 0

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "stored": self.stored}


@dataclass
class SummaryCache:
    """Digest-keyed summary store; a ``directory`` of ``<sha256>.json``."""

    directory: Path | None
    stats: CacheStats = field(default_factory=CacheStats)

    @classmethod
    def disabled(cls) -> "SummaryCache":
        """A cache that stores nothing and never hits (``--no-cache``)."""
        return cls(directory=None)

    def _entry(self, digest: str) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / f"{digest}.json"

    def get(self, digest: str) -> ModuleSummary | None:
        """The cached summary for a source digest, or None on any doubt."""
        entry = self._entry(digest)
        if entry is None or not entry.exists():
            self.stats.misses += 1
            return None
        try:
            data = json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            self.stats.misses += 1
            return None
        if data.get("schema") != SUMMARY_SCHEMA or data.get("digest") != digest:
            self.stats.misses += 1
            return None
        try:
            summary = ModuleSummary.from_dict(data)
        except (KeyError, TypeError, ValueError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return summary

    def put(self, summary: ModuleSummary) -> None:
        entry = self._entry(summary.digest)
        if entry is None:
            return
        entry.parent.mkdir(parents=True, exist_ok=True)
        entry.write_text(
            json.dumps(summary.to_dict(), indent=None, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        self.stats.stored += 1
