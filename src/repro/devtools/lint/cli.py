"""The ``hirep-lint`` command-line interface.

Exit codes: 0 clean (or everything baselined), 1 new findings / stale
baseline entries / unreadable files, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence, TextIO

from repro.devtools.lint import baseline as baseline_mod
from repro.devtools.lint.config import load_config
from repro.devtools.lint.engine import lint_paths
from repro.devtools.lint.registry import all_rules, resolve_rules
from repro.devtools.lint.reporters import REPORTERS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hirep-lint",
        description="AST linter for hiREP determinism & scheduler invariants",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text", help="output format"
    )
    parser.add_argument(
        "--baseline", default=None, help="baseline file (default: from config)"
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore the baseline entirely"
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="drop stale entries from the baseline (shrink-only ratchet)",
    )
    parser.add_argument(
        "--init-baseline",
        action="store_true",
        help="(re)create the baseline from all current findings",
    )
    parser.add_argument("--select", action="append", help="only run these rule codes")
    parser.add_argument("--ignore", action="append", help="skip these rule codes")
    parser.add_argument(
        "--root", default=".", help="repo root for config and relative paths"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print registered rules and exit"
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="also run the whole-program rules (TNT*/LAY*) over the same paths",
    )
    return parser


def _list_rules(stream: TextIO) -> None:
    for rule in all_rules():
        scope = ", ".join(rule.packages) if rule.packages else "all modules"
        print(f"{rule.code}  [{rule.severity.value}]  {rule.name}  ({scope})", file=stream)


def main(argv: Sequence[str] | None = None, stream: TextIO | None = None) -> int:
    out = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _list_rules(out)
        return 0

    root = Path(args.root).resolve()
    config = load_config(root)
    select = args.select or config.select
    ignore = args.ignore or config.ignore
    project_codes: set[str] = set()
    if args.project:
        # project rules live in a separate registry; carve their codes out
        # of --select so `--project --select TNT001` means "only TNT001".
        from repro.devtools.analyze.rules import all_project_rules

        project_codes = {r.code for r in all_project_rules()}
    try:
        file_select = [c for c in select if c not in project_codes] if select else None
        if select and not file_select:
            rules = []  # only project codes selected
        else:
            rules = resolve_rules(file_select, ignore)
    except KeyError as exc:
        print(f"hirep-lint: {exc.args[0]}", file=sys.stderr)
        return 2

    # relative paths are relative to --root, so `hirep-lint src --root X`
    # behaves the same from any working directory
    targets = [
        path if path.is_absolute() else root / path
        for path in (Path(p) for p in args.paths)
    ]
    result = lint_paths(
        targets,
        repo_root=root,
        rules=rules,
        exclude=config.exclude,
        severity_overrides=config.severity,
    )

    if args.project:
        from repro.devtools.analyze.cache import DEFAULT_CACHE_DIR, SummaryCache
        from repro.devtools.analyze.project import analyze_project
        from repro.devtools.lint.findings import sort_findings

        wanted = [
            r
            for r in all_project_rules()
            if (not select or r.code in set(select))
            and (not ignore or r.code not in set(ignore))
        ]
        if wanted:
            analysis = analyze_project(
                targets,
                repo_root=root,
                cache=SummaryCache(directory=root / DEFAULT_CACHE_DIR),
                exclude=config.exclude,
                rules=wanted,
                severity_overrides=config.severity,
            )
            result.findings = sort_findings(result.findings + analysis.findings)
            result.errors.extend(analysis.errors)

    baseline_path = root / (args.baseline or config.baseline)
    if args.no_baseline:
        baseline = baseline_mod.Baseline(path=baseline_path)
    else:
        try:
            baseline = baseline_mod.Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"hirep-lint: {exc}", file=sys.stderr)
            return 2

    if args.init_baseline:
        baseline_mod.init(baseline, result.findings)
        baseline.save()
        print(
            f"hirep-lint: baseline initialised with {len(baseline.entries)} "
            f"finding(s) at {baseline.path}",
            file=out,
        )
        return 0

    part = baseline_mod.partition(result.findings, baseline)

    if args.update_baseline and part.stale:
        removed = baseline_mod.shrink(baseline, part)
        baseline.save()
        print(f"hirep-lint: baseline shrank by {removed} entr"
              f"{'y' if removed == 1 else 'ies'}", file=out)
        part = baseline_mod.partition(result.findings, baseline)

    REPORTERS[args.format](part, result.errors, out)
    return 1 if (part.fails or result.errors) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
