"""Project configuration for hirep-lint.

Read from ``[tool.hirep-lint]`` in ``pyproject.toml`` when the interpreter
has :mod:`tomllib` (Python >= 3.11); on 3.10 the shipped defaults apply and
CLI flags still override everything.  Recognised keys::

    [tool.hirep-lint]
    baseline = ".hirep-lint-baseline.json"
    select   = ["DET001", ...]     # default: all registered rules
    ignore   = []
    exclude  = ["devtools/lint/"]  # path fragments to skip

    [tool.hirep-lint.severity]
    API001 = "warning"             # demote a rule
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.lint.findings import Severity

try:  # tomllib is 3.11+; the project supports 3.10
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - depends on interpreter
    tomllib = None  # type: ignore[assignment]

DEFAULT_BASELINE = ".hirep-lint-baseline.json"


@dataclass
class LintConfig:
    baseline: str = DEFAULT_BASELINE
    select: list[str] = field(default_factory=list)  # empty = all
    ignore: list[str] = field(default_factory=list)
    exclude: list[str] = field(default_factory=list)
    severity: dict[str, Severity] = field(default_factory=dict)


def load_config(repo_root: Path) -> LintConfig:
    config = LintConfig()
    pyproject = repo_root / "pyproject.toml"
    if tomllib is None or not pyproject.exists():
        return config
    try:
        data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    except (OSError, tomllib.TOMLDecodeError):
        return config
    section = data.get("tool", {}).get("hirep-lint", {})
    if not isinstance(section, dict):
        return config
    config.baseline = str(section.get("baseline", config.baseline))
    for key in ("select", "ignore", "exclude"):
        value = section.get(key)
        if isinstance(value, list):
            setattr(config, key, [str(v) for v in value])
    severity = section.get("severity")
    if isinstance(severity, dict):
        for code, level in severity.items():
            try:
                config.severity[str(code)] = Severity.parse(str(level))
            except ValueError:
                continue  # ignore bad levels rather than break every lint run
    return config
