"""Output formats: human text, machine JSON, GitHub workflow annotations."""

from __future__ import annotations

import json
from typing import TextIO

from repro.devtools.lint.baseline import Partition
from repro.devtools.lint.findings import Finding


def _line(f: Finding, tag: str = "") -> str:
    suffix = f" [{tag}]" if tag else ""
    return f"{f.location}: {f.rule} {f.message}{suffix}"


def report_text(part: Partition, errors: list[str], stream: TextIO) -> None:
    for f in part.new:
        print(_line(f), file=stream)
    for f in part.baselined:
        print(_line(f, "baselined"), file=stream)
    for f in part.warnings:
        print(_line(f, "warning"), file=stream)
    for fp, ctx in sorted(part.stale.items(), key=lambda kv: kv[1].get("path", "")):
        print(
            f"stale baseline entry {fp}: {ctx.get('rule', '?')} at "
            f"{ctx.get('path', '?')}:{ctx.get('line', '?')} no longer found "
            "-- run with --update-baseline to shrink the baseline",
            file=stream,
        )
    for err in errors:
        print(f"error: {err}", file=stream)
    print(
        f"hirep-lint: {len(part.new)} new, {len(part.baselined)} baselined, "
        f"{len(part.warnings)} warning(s), {len(part.stale)} stale baseline "
        f"entr{'y' if len(part.stale) == 1 else 'ies'}",
        file=stream,
    )


def report_json(part: Partition, errors: list[str], stream: TextIO) -> None:
    payload = {
        "new": [f.to_dict() for f in part.new],
        "baselined": [f.to_dict() for f in part.baselined],
        "warnings": [f.to_dict() for f in part.warnings],
        "stale": part.stale,
        "errors": errors,
        "summary": {
            "new": len(part.new),
            "baselined": len(part.baselined),
            "warnings": len(part.warnings),
            "stale": len(part.stale),
        },
    }
    print(json.dumps(payload, indent=2, sort_keys=True), file=stream)


def _escape_gh(text: str) -> str:
    """GitHub workflow-command data escaping."""
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def report_github(part: Partition, errors: list[str], stream: TextIO) -> None:
    """``::error``/``::warning`` annotations GitHub renders inline on PRs."""
    for f in part.new:
        print(
            f"::error file={f.path},line={f.line},col={f.col},"
            f"title={f.rule}::{_escape_gh(f.message)}",
            file=stream,
        )
    for f in part.warnings + part.baselined:
        tag = "baselined" if f in part.baselined else "warning"
        print(
            f"::warning file={f.path},line={f.line},col={f.col},"
            f"title={f.rule} ({tag})::{_escape_gh(f.message)}",
            file=stream,
        )
    for fp, ctx in sorted(part.stale.items()):
        print(
            f"::error title=hirep-lint stale baseline::entry {fp} "
            f"({ctx.get('rule', '?')} at {ctx.get('path', '?')}:"
            f"{ctx.get('line', '?')}) no longer matches; run "
            "hirep-lint --update-baseline",
            file=stream,
        )
    for err in errors:
        print(f"::error title=hirep-lint::{_escape_gh(err)}", file=stream)


REPORTERS = {"text": report_text, "json": report_json, "github": report_github}
