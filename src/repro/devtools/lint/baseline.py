"""The ratcheting baseline: grandfathered findings that may only shrink.

The baseline file (``.hirep-lint-baseline.json``, committed) maps finding
fingerprints to human-readable context.  Semantics enforced here:

* a finding whose fingerprint is in the baseline is *baselined* — reported
  but non-fatal;
* a finding not in the baseline is *new* — fatal;
* a baseline entry with no matching finding is *stale* — fatal by default,
  forcing ``--update-baseline`` to shrink the file (the ratchet: entries
  leave, they never come back);
* ``--update-baseline`` writes the intersection of the old baseline and the
  current findings — it can only shrink.  Creating a baseline from scratch
  takes the explicit ``--init-baseline``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.lint.findings import Finding, Severity

_VERSION = 1


@dataclass
class Baseline:
    path: Path
    entries: dict[str, dict] = field(default_factory=dict)  # fingerprint -> context

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls(path=path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"unreadable baseline {path}: {exc}") from exc
        if data.get("version") != _VERSION:
            raise ValueError(
                f"baseline {path} has version {data.get('version')!r}; "
                f"expected {_VERSION}"
            )
        entries = data.get("findings", {})
        if not isinstance(entries, dict):
            raise ValueError(f"baseline {path}: 'findings' must be an object")
        return cls(path=path, entries=entries)

    def save(self) -> None:
        payload = {"version": _VERSION, "findings": self.entries}
        self.path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    @staticmethod
    def entry_for(finding: Finding) -> dict:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
        }


@dataclass
class Partition:
    """Findings of a run split against a baseline."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    warnings: list[Finding] = field(default_factory=list)
    stale: dict[str, dict] = field(default_factory=dict)

    @property
    def fails(self) -> bool:
        return bool(self.new) or bool(self.stale)


def partition(findings: list[Finding], baseline: Baseline) -> Partition:
    part = Partition()
    matched: set[str] = set()
    for f in findings:
        if f.severity is Severity.WARNING:
            part.warnings.append(f)
        elif f.fingerprint in baseline.entries:
            part.baselined.append(f)
            matched.add(f.fingerprint)
        else:
            part.new.append(f)
    part.stale = {
        fp: ctx for fp, ctx in baseline.entries.items() if fp not in matched
    }
    return part


def shrink(baseline: Baseline, part: Partition) -> int:
    """Drop stale entries (the only mutation ``--update-baseline`` makes).

    Returns the number of entries removed.  New findings are *not* added —
    growing the baseline is deliberately impossible here; bootstrap with
    ``--init-baseline``.
    """
    before = len(baseline.entries)
    for fingerprint in part.stale:
        del baseline.entries[fingerprint]
    return before - len(baseline.entries)


def init(baseline: Baseline, findings: list[Finding]) -> None:
    """Rewrite the baseline to exactly the current error-level findings."""
    baseline.entries = {
        f.fingerprint: Baseline.entry_for(f)
        for f in findings
        if f.severity is Severity.ERROR
    }
