"""Rule base class and registry.

A rule is a class with a ``code``, a default ``severity``, an optional
``packages`` scope (dotted-module prefixes it applies to) and a
``check(ctx)`` generator yielding findings.  Registration is a decorator so
dropping a new module into :mod:`repro.devtools.lint.rules` and importing
it from that package's ``__init__`` is all it takes to add a rule.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Type

from repro.devtools.lint.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.devtools.lint.engine import FileContext

_REGISTRY: dict[str, "Rule"] = {}


class Rule:
    """Base class for lint rules."""

    #: unique short identifier, e.g. ``DET001``
    code: str = ""
    #: one-line summary shown by ``--list-rules``
    name: str = ""
    #: default severity; overridable per-project via config
    severity: Severity = Severity.ERROR
    #: dotted module prefixes this rule applies to; ``None`` means every
    #: module handed to the linter.  ``("repro.sim",)`` matches
    #: ``repro.sim`` and everything below it.
    packages: tuple[str, ...] | None = None

    def applies_to(self, module: str | None) -> bool:
        if self.packages is None:
            return True
        if module is None:
            return False
        return any(
            module == pkg or module.startswith(pkg + ".") for pkg in self.packages
        )

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.code}>"


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and add the rule to the registry."""
    rule = cls()
    if not rule.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by code (imports the bundled set)."""
    import repro.devtools.lint.rules  # noqa: F401  (side-effect: registration)

    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    import repro.devtools.lint.rules  # noqa: F401

    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(f"unknown rule code {code!r}") from None


def resolve_rules(
    select: Iterable[str] | None = None, ignore: Iterable[str] | None = None
) -> list[Rule]:
    """The active rule set after ``select``/``ignore`` filtering."""
    rules = all_rules()
    if select:
        wanted = set(select)
        unknown = wanted - {r.code for r in rules}
        if unknown:
            raise KeyError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        rules = [r for r in rules if r.code in wanted]
    if ignore:
        dropped = set(ignore)
        rules = [r for r in rules if r.code not in dropped]
    return rules
