"""Finding and severity primitives shared by rules, engine and reporters."""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How a finding affects the exit code.

    ``ERROR`` findings fail the run unless baselined or pragma'd;
    ``WARNING`` findings are reported but never fail the run and are not
    tracked in the baseline.
    """

    ERROR = "error"
    WARNING = "warning"

    @classmethod
    def parse(cls, value: str) -> "Severity":
        try:
            return cls(value.lower())
        except ValueError:
            raise ValueError(
                f"unknown severity {value!r}; expected 'error' or 'warning'"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``fingerprint`` identifies the finding across runs for the baseline: it
    hashes the path, rule and the *text* of the offending line (plus an
    occurrence counter for identical lines), so findings survive unrelated
    edits that shift line numbers.
    """

    rule: str
    message: str
    path: str  # repo-relative posix path
    line: int
    col: int
    severity: Severity = Severity.ERROR
    source_line: str = ""
    occurrence: int = 0
    fingerprint: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.fingerprint:
            payload = "\x1f".join(
                (self.path, self.rule, self.source_line.strip(), str(self.occurrence))
            )
            digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
            object.__setattr__(self, "fingerprint", digest)

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "fingerprint": self.fingerprint,
        }


def sort_findings(findings: list[Finding]) -> list[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
