"""The linting engine: file walking, pragma handling, rule dispatch.

The engine parses each file once, hands every active rule a
:class:`FileContext` (AST + source lines + helpers), collects findings,
drops the ones suppressed by an inline ``# lint: allow[RULE]`` pragma and
fingerprints the rest for the baseline.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.devtools.lint.findings import Finding, Severity, sort_findings
from repro.devtools.lint.registry import Rule, resolve_rules

#: inline suppression: ``# lint: allow[DET002]`` or ``# lint: allow[DET002,API001]``
#: (``*`` allows every rule on that line).  Must sit on the physical line the
#: finding is reported at — for function-level rules that is the ``def`` line.
_PRAGMA_RE = re.compile(r"#\s*lint:\s*allow\[([A-Za-z0-9_*,\s]+)\]")


def parse_pragmas(lines: list[str]) -> dict[int, set[str]]:
    """Map 1-based line number -> set of allowed rule codes on that line."""
    pragmas: dict[int, set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(text)
        if match:
            codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
            if codes:
                pragmas[lineno] = codes
    return pragmas


def module_name_for(path: Path) -> str | None:
    """Infer the dotted module name from a file path.

    Walks up from the file collecting package directories (those with an
    ``__init__.py``); returns ``None`` for scripts outside any package.
    """
    if path.suffix != ".py":
        return None
    parts: list[str] = []
    if path.stem != "__init__":
        parts.append(path.stem)
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:
        return None
    return ".".join(reversed(parts))


@dataclass
class FileContext:
    """Everything a rule needs to inspect one file."""

    path: str  # as reported in findings (repo-relative posix)
    module: str | None
    tree: ast.AST
    lines: list[str]

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(
        self, rule: Rule, node: ast.AST, message: str, severity: Severity | None = None
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule=rule.code,
            message=message,
            path=self.path,
            line=lineno,
            col=col,
            severity=severity if severity is not None else rule.severity,
            source_line=self.source_line(lineno),
        )


@dataclass
class LintResult:
    """Findings of one run, partitioned against the baseline by the caller."""

    findings: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)  # unparseable files etc.

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.errors.extend(other.errors)


def _dedupe_occurrences(findings: list[Finding]) -> list[Finding]:
    """Assign occurrence indices so identical lines fingerprint uniquely."""
    seen: dict[tuple[str, str, str], int] = {}
    out: list[Finding] = []
    for f in sort_findings(findings):
        key = (f.path, f.rule, f.source_line.strip())
        occ = seen.get(key, 0)
        seen[key] = occ + 1
        if occ:
            f = Finding(
                rule=f.rule,
                message=f.message,
                path=f.path,
                line=f.line,
                col=f.col,
                severity=f.severity,
                source_line=f.source_line,
                occurrence=occ,
            )
        out.append(f)
    return out


def lint_source(
    source: str,
    *,
    path: str = "<snippet>",
    module: str | None = None,
    rules: Iterable[Rule] | None = None,
    severity_overrides: dict[str, Severity] | None = None,
) -> LintResult:
    """Lint one in-memory source blob (the unit-test entry point)."""
    result = LintResult()
    active = list(rules) if rules is not None else resolve_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.errors.append(f"{path}: syntax error: {exc.msg} (line {exc.lineno})")
        return result
    lines = source.splitlines()
    ctx = FileContext(path=path, module=module, tree=tree, lines=lines)
    pragmas = parse_pragmas(lines)
    overrides = severity_overrides or {}
    raw: list[Finding] = []
    for rule in active:
        if not rule.applies_to(module):
            continue
        for finding in rule.check(ctx):
            allowed = pragmas.get(finding.line, ())
            if finding.rule in allowed or "*" in allowed:
                continue
            if finding.rule in overrides and overrides[finding.rule] != finding.severity:
                finding = Finding(
                    rule=finding.rule,
                    message=finding.message,
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    severity=overrides[finding.rule],
                    source_line=finding.source_line,
                )
            raw.append(finding)
    result.findings = _dedupe_occurrences(raw)
    return result


def iter_python_files(paths: Iterable[Path], exclude: Iterable[str] = ()) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for root in paths:
        if root.is_file():
            if root.suffix == ".py":
                out.add(root)
        elif root.is_dir():
            out.update(p for p in root.rglob("*.py"))
    exclude = tuple(exclude)

    def excluded(p: Path) -> bool:
        posix = p.as_posix()
        return any(frag in posix for frag in exclude) or "__pycache__" in posix

    return sorted(p for p in out if not excluded(p))


def lint_paths(
    paths: Iterable[Path],
    *,
    repo_root: Path | None = None,
    rules: Iterable[Rule] | None = None,
    exclude: Iterable[str] = (),
    severity_overrides: dict[str, Severity] | None = None,
) -> LintResult:
    """Lint files and/or directory trees; paths in findings are repo-relative."""
    root = (repo_root or Path.cwd()).resolve()
    active = list(rules) if rules is not None else resolve_rules()
    result = LintResult()
    for file_path in iter_python_files(paths, exclude):
        resolved = file_path.resolve()
        try:
            rel = resolved.relative_to(root).as_posix()
        except ValueError:
            rel = resolved.as_posix()
        try:
            source = resolved.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.errors.append(f"{rel}: unreadable: {exc}")
            continue
        result.extend(
            lint_source(
                source,
                path=rel,
                module=module_name_for(resolved),
                rules=active,
                severity_overrides=severity_overrides,
            )
        )
    result.findings = sort_findings(result.findings)
    return result
