"""hirep-lint: AST static analysis for hiREP's reproducibility invariants.

Generic linters can't see that this codebase's correctness rests on seeded
``np.random.Generator`` injection, simulated time, byte-stable JSON exports
and picklable scheduler callables.  This package encodes those invariants
as pluggable AST rules with inline pragmas and a committed, shrink-only
(ratcheting) baseline.  See ``docs/static-analysis.md``.
"""

from repro.devtools.lint.baseline import Baseline, Partition, partition
from repro.devtools.lint.cli import main
from repro.devtools.lint.config import LintConfig, load_config
from repro.devtools.lint.engine import (
    FileContext,
    LintResult,
    lint_paths,
    lint_source,
    module_name_for,
    parse_pragmas,
)
from repro.devtools.lint.findings import Finding, Severity, sort_findings
from repro.devtools.lint.registry import Rule, all_rules, get_rule, register, resolve_rules

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "LintConfig",
    "LintResult",
    "Partition",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_config",
    "main",
    "module_name_for",
    "parse_pragmas",
    "partition",
    "register",
    "resolve_rules",
    "sort_findings",
]
