"""OBS001/OBS002: report through the telemetry plane, time through it too.

A bare ``print()`` in the simulation/protocol/orchestration layers is
output nobody can capture, filter, or diff: it bypasses the tracer, the
span recorder, and the metric registry (:mod:`repro.obs`), interleaves
nondeterministically under ``--jobs N``, and corrupts machine-read stdout
(export pipelines, golden files).  Record an event on the plane, bump a
metric, or raise — don't print.

User-facing surfaces are exempt: CLI modules (``repro.obs.cli``, the
lint/experiment CLIs live outside the scoped packages anyway) and the
progress reporter (``repro.exec.progress``), whose entire job is writing
to a terminal.  A deliberate call elsewhere can carry
``# lint: allow[OBS001]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import FileContext
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

#: modules whose job *is* terminal output.
_EXEMPT = ("repro.exec.progress", "repro.obs.cli")


@register
class NoBarePrint(Rule):
    """OBS001: no ``print()`` in sim/net/core/exec/obs library code."""

    code = "OBS001"
    name = "library code must not print(); use telemetry (repro.obs)"
    packages = ("repro.sim", "repro.net", "repro.core", "repro.exec", "repro.obs")

    def applies_to(self, module: str | None) -> bool:
        if module is not None and any(
            module == exempt or module.startswith(exempt + ".")
            for exempt in _EXEMPT
        ):
            return False
        return super().applies_to(module)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield ctx.finding(
                    self,
                    node,
                    "print() in library code bypasses the telemetry plane "
                    "and corrupts machine-read stdout; record a trace event "
                    "or metric (repro.obs), or pragma a deliberate site with "
                    "`# lint: allow[OBS001]`",
                )


#: The two sanctioned homes for host-clock / allocation-tracing access.
_OBS002_EXEMPT = ("repro.obs.clock", "repro.obs.prof")

#: ``time.<attr>`` reads that belong behind :class:`repro.obs.WallClock`.
_RAW_TIMERS = {"perf_counter", "perf_counter_ns"}


@register
class RawPerfInstrumentation(Rule):
    """OBS002: wall-timing and tracemalloc go through ``repro.obs``.

    Before the perf-observability plane, every benchmark suite and
    worker timed itself with bare ``time.perf_counter()`` and each
    invented its own shape for the numbers.  Timing now flows through
    :class:`repro.obs.WallClock` (one audited host-clock seam, zeroed
    origins, milliseconds everywhere) and allocation tracing through
    :class:`repro.obs.prof.Profiler` — so profiles, span joins, and
    :class:`repro.perf.PerfReport` rows all agree on where time comes
    from.  ``repro.obs.clock`` and ``repro.obs.prof`` are the sanctioned
    implementations; anywhere else, route through them or pragma a
    deliberate site with ``# lint: allow[OBS002]``.
    """

    code = "OBS002"
    name = "raw perf_counter/tracemalloc; use repro.obs.WallClock / repro.obs.prof"
    packages = None  # applies to everything linted, benchmarks/ scripts included

    def applies_to(self, module: str | None) -> bool:
        if module is not None and any(
            module == exempt or module.startswith(exempt + ".")
            for exempt in _OBS002_EXEMPT
        ):
            return False
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imported_timers: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "tracemalloc":
                        yield ctx.finding(
                            self,
                            node,
                            "import tracemalloc outside repro.obs.prof; use "
                            "Profiler(memory=True) so watermarks land in "
                            "profile.json with everything else",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "tracemalloc":
                    yield ctx.finding(
                        self,
                        node,
                        "import tracemalloc outside repro.obs.prof; use "
                        "Profiler(memory=True) so watermarks land in "
                        "profile.json with everything else",
                    )
                elif node.module == "time":
                    for alias in node.names:
                        if alias.name in _RAW_TIMERS:
                            imported_timers.add(alias.asname or alias.name)
                            yield ctx.finding(
                                self,
                                node,
                                f"importing time.{alias.name} bypasses the "
                                "sanctioned clock; time through "
                                "repro.obs.WallClock",
                            )
            elif isinstance(node, ast.Attribute):
                if (
                    node.attr in _RAW_TIMERS
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "time"
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"time.{node.attr} is a raw host-clock read; time "
                        "through repro.obs.WallClock (or repro.obs.prof for "
                        "profiles) so perf numbers share one seam",
                    )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in imported_timers
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"{node.func.id}() is a raw host-clock read; time "
                        "through repro.obs.WallClock",
                    )
