"""OBS001: library code reports through telemetry, not ``print()``.

A bare ``print()`` in the simulation/protocol/orchestration layers is
output nobody can capture, filter, or diff: it bypasses the tracer, the
span recorder, and the metric registry (:mod:`repro.obs`), interleaves
nondeterministically under ``--jobs N``, and corrupts machine-read stdout
(export pipelines, golden files).  Record an event on the plane, bump a
metric, or raise — don't print.

User-facing surfaces are exempt: CLI modules (``repro.obs.cli``, the
lint/experiment CLIs live outside the scoped packages anyway) and the
progress reporter (``repro.exec.progress``), whose entire job is writing
to a terminal.  A deliberate call elsewhere can carry
``# lint: allow[OBS001]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import FileContext
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

#: modules whose job *is* terminal output.
_EXEMPT = ("repro.exec.progress", "repro.obs.cli")


@register
class NoBarePrint(Rule):
    """OBS001: no ``print()`` in sim/net/core/exec/obs library code."""

    code = "OBS001"
    name = "library code must not print(); use telemetry (repro.obs)"
    packages = ("repro.sim", "repro.net", "repro.core", "repro.exec", "repro.obs")

    def applies_to(self, module: str | None) -> bool:
        if module is not None and any(
            module == exempt or module.startswith(exempt + ".")
            for exempt in _EXEMPT
        ):
            return False
        return super().applies_to(module)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield ctx.finding(
                    self,
                    node,
                    "print() in library code bypasses the telemetry plane "
                    "and corrupts machine-read stdout; record a trace event "
                    "or metric (repro.obs), or pragma a deliberate site with "
                    "`# lint: allow[OBS001]`",
                )
