"""EXC001: callables handed to the repro.exec scheduler must be module-level.

The scheduler ships work to ``ProcessPoolExecutor`` workers and keys the
result cache on a fingerprint of the *module source* that will run.
Lambdas and nested functions break both: they don't pickle, and their code
lives outside any fingerprinted module.  ``functools.partial`` over a
module-level function is fine — the partial pickles and the target's module
is fingerprinted — so the rule unwraps partials before judging.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import FileContext
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

#: call sites whose callable arguments end up pickled or fingerprinted:
#: ``<pool>.submit(fn, ...)`` / ``<pool>.map(fn, ...)`` (first positional
#: argument) and ``SweepPlan(assemble=...)`` / ``replace(plan, assemble=...)``
#: (keyword).
_METHOD_SINKS = {"submit", "map"}
_KWARG_SINKS = {"SweepPlan": "assemble"}


def _local_function_names(tree: ast.AST) -> set[str]:
    """Names of functions defined *inside* another function (closures)."""
    local: set[str] = set()

    class Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.depth = 0

        def _visit_func(self, node: ast.AST, name: str | None) -> None:
            if self.depth > 0 and name:
                local.add(name)
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            self._visit_func(node, node.name)

        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            self._visit_func(node, node.name)

        def visit_Lambda(self, node: ast.Lambda) -> None:
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1

    Visitor().visit(tree)
    return local


def _unwrap_partial(node: ast.expr) -> ast.expr:
    """``functools.partial(fn, ...)`` / ``partial(fn, ...)`` -> ``fn``."""
    if isinstance(node, ast.Call) and node.args:
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if name == "partial":
            return node.args[0]
    return node


@register
class ModuleLevelCallables(Rule):
    """EXC001: no lambdas/closures submitted to the exec scheduler."""

    code = "EXC001"
    name = "scheduler callables must be module-level (picklable, fingerprintable)"
    packages = ("repro",)

    def _judge(
        self, ctx: FileContext, arg: ast.expr, locals_: set[str], sink: str
    ) -> Iterator[Finding]:
        arg = _unwrap_partial(arg)
        if isinstance(arg, ast.Lambda):
            yield ctx.finding(
                self,
                arg,
                f"lambda passed to {sink}: lambdas don't pickle across the "
                "process pool and escape the code-fingerprint cache key; "
                "define a module-level function",
            )
        elif isinstance(arg, ast.Name) and arg.id in locals_:
            yield ctx.finding(
                self,
                arg,
                f"nested function `{arg.id}` passed to {sink}: closures "
                "don't pickle across the process pool; lift it to module "
                "level (use functools.partial to bind arguments)",
            )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        locals_ = _local_function_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _METHOD_SINKS:
                if node.args:
                    yield from self._judge(
                        ctx, node.args[0], locals_, f".{func.attr}()"
                    )
            callee = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
            if callee in _KWARG_SINKS:
                wanted = _KWARG_SINKS[callee]
                for kw in node.keywords:
                    if kw.arg == wanted:
                        yield from self._judge(
                            ctx, kw.value, locals_, f"{callee}({wanted}=...)"
                        )
