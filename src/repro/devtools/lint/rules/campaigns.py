"""CMP001: campaign factories handed to ``register_campaign`` must be
module-level callables.

Campaign cells cross process boundaries: ``Campaign.compile()`` produces
jobs that worker processes re-import by dotted name, and the catalogue is
re-imported inside every worker.  A factory defined as a lambda or inside
another function exists only in the registering frame — the catalogue a
worker imports will not contain it, so the sweep silently loses those
scenarios (or the registration never happens at all in the worker).  The
fix is the same as EXC001's: lift the factory to module level
(``functools.partial`` over a module-level function is fine and is
unwrapped before judging).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import FileContext
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register
from repro.devtools.lint.rules.execution import _local_function_names, _unwrap_partial

_SINK = "register_campaign"


@register
class ModuleLevelCampaignFactories(Rule):
    """CMP001: no lambdas/closures registered as campaign factories."""

    code = "CMP001"
    name = "campaign factories must be module-level (re-importable in workers)"
    packages = ("repro",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        locals_ = _local_function_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            callee = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
            if callee != _SINK or not node.args:
                continue
            arg = _unwrap_partial(node.args[0])
            if isinstance(arg, ast.Lambda):
                yield ctx.finding(
                    self,
                    arg,
                    f"lambda passed to {_SINK}: worker processes re-import "
                    "the catalogue and will not see a factory that exists "
                    "only in this frame; define a module-level function",
                )
            elif isinstance(arg, ast.Name) and arg.id in locals_:
                yield ctx.finding(
                    self,
                    arg,
                    f"nested function `{arg.id}` passed to {_SINK}: campaign "
                    "factories must be importable from the module's top "
                    "level so compiled cells can rebuild the catalogue in "
                    "worker processes",
                )
