"""API001: public functions in repro.core / repro.exec are fully annotated.

These two packages are the library's stable surface (the trust protocol and
the orchestration engine); complete annotations keep mypy useful there and
make JobSpec kwargs auditable.  "Fully annotated" means every parameter
except ``self``/``cls`` plus the return type.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import FileContext
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        while isinstance(target, ast.Attribute):
            names.add(target.attr)
            target = target.value
        if isinstance(target, ast.Name):
            names.add(target.id)
    return names


@register
class FullyAnnotatedPublicAPI(Rule):
    """API001: public functions must annotate every parameter and the return."""

    code = "API001"
    name = "public repro.core/repro.exec functions fully type-annotated"
    packages = ("repro.core", "repro.exec")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._scan(ctx, ctx.tree, in_class=False, public_scope=True)

    def _scan(
        self, ctx: FileContext, node: ast.AST, *, in_class: bool, public_scope: bool
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from self._scan(
                    ctx,
                    child,
                    in_class=True,
                    public_scope=public_scope and _is_public(child.name),
                )
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if public_scope and _is_public(child.name):
                    yield from self._check_signature(ctx, child, in_class)
                # nested defs are implementation detail — not scanned

    def _check_signature(
        self,
        ctx: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        in_class: bool,
    ) -> Iterator[Finding]:
        decorators = _decorator_names(node)
        if "overload" in decorators:
            return
        args = node.args
        missing: list[str] = []
        positional = list(args.posonlyargs) + list(args.args)
        skip_first = in_class and "staticmethod" not in decorators
        for index, arg in enumerate(positional):
            if skip_first and index == 0:  # self / cls
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        for arg in args.kwonlyargs:
            if arg.annotation is None:
                missing.append(arg.arg)
        for star in (args.vararg, args.kwarg):
            if star is not None and star.annotation is None:
                missing.append(("*" if star is args.vararg else "**") + star.arg)
        needs_return = node.returns is None and not (
            in_class and node.name == "__init__"  # conventionally -> None, tolerated
        )
        if missing or needs_return:
            what: list[str] = []
            if missing:
                what.append(f"parameter(s) {', '.join(missing)}")
            if needs_return:
                what.append("return type")
            yield ctx.finding(
                self,
                node,
                f"public function `{node.name}` is missing annotations for "
                f"{' and '.join(what)}",
            )
