"""Bundled hirep-lint rules.

Importing this package registers every rule with the registry.  To add a
rule: create a module here, subclass :class:`repro.devtools.lint.registry.Rule`,
decorate it with ``@register``, and import the module below.
"""

from repro.devtools.lint.rules import (
    api,
    architecture,
    campaigns,
    determinism,
    execution,
    observability,
    serving,
)

__all__ = [
    "api",
    "architecture",
    "campaigns",
    "determinism",
    "execution",
    "observability",
    "serving",
]
