"""Determinism rules: seeded randomness, no wall clock, sorted JSON.

These encode the three properties every hiREP experiment leans on: results
are a pure function of the seed (DET001), simulated time is the only time
(DET002), and exported/cached JSON is byte-stable so content-addressed
cache keys and ``--jobs N == --jobs 1`` comparisons hold (DET003).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import FileContext
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

#: ``np.random.<attr>`` access that does *not* touch the hidden global
#: stream — types used in annotations plus the seeded-generator factory.
_NP_RANDOM_OK = {"Generator", "BitGenerator", "SeedSequence", "default_rng"}


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]``; empty list if not a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


@register
class NoGlobalRandomness(Rule):
    """DET001: all randomness must flow through an injected, seeded Generator."""

    code = "DET001"
    name = "no stdlib random / global numpy RNG / unseeded default_rng"
    packages = ("repro",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield ctx.finding(
                            self,
                            node,
                            "stdlib `random` has hidden global state; draw from "
                            "an injected np.random.Generator (see repro.sim.rng)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield ctx.finding(
                        self,
                        node,
                        "stdlib `random` has hidden global state; draw from "
                        "an injected np.random.Generator (see repro.sim.rng)",
                    )
                elif node.module in ("numpy.random", "np.random"):
                    bad = [a.name for a in node.names if a.name not in _NP_RANDOM_OK]
                    if bad:
                        yield ctx.finding(
                            self,
                            node,
                            f"numpy.random.{bad[0]} uses the hidden global "
                            "stream; thread a seeded Generator instead",
                        )
            elif isinstance(node, ast.Attribute):
                chain = _attr_chain(node)
                if (
                    len(chain) == 3
                    and chain[0] in ("np", "numpy")
                    and chain[1] == "random"
                    and chain[2] not in _NP_RANDOM_OK
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"{'.'.join(chain)} mutates/reads the hidden global "
                        "RNG; thread a seeded Generator instead",
                    )
            elif isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                is_default_rng = chain[-1:] == ["default_rng"] and (
                    len(chain) == 1 or chain[:-1] in (["np", "random"], ["numpy", "random"])
                )
                if is_default_rng and not node.args and not node.keywords:
                    yield ctx.finding(
                        self,
                        node,
                        "unseeded default_rng() is nondeterministic; pass an "
                        "explicit seed (or accept an injected Generator)",
                    )


#: modules × attributes that read the wall clock.
_CLOCK_ATTRS = {
    "time": {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    },
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}


@register
class NoWallClock(Rule):
    """DET002: sim/core/net/exec/experiments code never reads the wall clock.

    Simulated time comes from :mod:`repro.sim.clock`; anything else makes a
    run depend on host load.  Telemetry call sites (progress lines, manifest
    timestamps, wall-time summaries) are legitimate — mark them with
    ``# lint: allow[DET002]``.
    """

    code = "DET002"
    name = "no wall-clock reads in deterministic code"
    packages = (
        "repro.sim",
        "repro.core",
        "repro.net",
        "repro.exec",
        "repro.experiments",
        "repro.obs",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imported_clocks: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module in _CLOCK_ATTRS:
                for alias in node.names:
                    if alias.name in _CLOCK_ATTRS[node.module]:
                        imported_clocks.add(alias.asname or alias.name)
                        yield ctx.finding(
                            self,
                            node,
                            f"importing {node.module}.{alias.name} pulls the "
                            "wall clock into deterministic code; use the "
                            "simulation clock (repro.sim.clock)",
                        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                chain = _attr_chain(node)
                # time.time / datetime.now / datetime.datetime.now(...)
                if (
                    len(chain) >= 2
                    and chain[-2] in _CLOCK_ATTRS
                    and chain[-1] in _CLOCK_ATTRS[chain[-2]]
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"{'.'.join(chain)} reads the wall clock; use the "
                        "simulation clock (repro.sim.clock) or pragma a "
                        "telemetry site with `# lint: allow[DET002]`",
                    )
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) and node.func.id in imported_clocks:
                    yield ctx.finding(
                        self,
                        node,
                        f"{node.func.id}() reads the wall clock; use the "
                        "simulation clock (repro.sim.clock)",
                    )


@register
class SortedJSONExports(Rule):
    """DET003: every json.dump/json.dumps must pass sort_keys=True.

    Export and cache files are compared byte-for-byte (``--jobs N`` vs
    ``--jobs 1``, cache replay in CI); Python dict order is insertion order,
    so any unsorted dump makes byte equality depend on code paths.
    """

    code = "DET003"
    name = "json.dump(s) must sort keys on export/cache paths"
    packages = ("repro",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain not in (["json", "dump"], ["json", "dumps"]):
                continue
            sort_kw = None
            has_star_kwargs = any(kw.arg is None for kw in node.keywords)
            for kw in node.keywords:
                if kw.arg == "sort_keys":
                    sort_kw = kw.value
            if sort_kw is None:
                if has_star_kwargs:
                    continue  # can't see inside **kwargs; give the benefit of the doubt
                yield ctx.finding(
                    self,
                    node,
                    f"{'.'.join(chain)}(...) without sort_keys=True is not "
                    "byte-deterministic; exports and cache entries must be",
                )
            elif isinstance(sort_kw, ast.Constant) and sort_kw.value is not True:
                yield ctx.finding(
                    self,
                    node,
                    f"{'.'.join(chain)}(..., sort_keys={sort_kw.value!r}) "
                    "disables key sorting; exports must be byte-deterministic",
                )
