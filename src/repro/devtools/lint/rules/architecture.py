"""ARC001: experiments and examples construct systems via the registry.

``repro.core.registry.build_system`` is the one front door for obtaining a
reputation system (see ``docs/architecture.md``): it keeps the system
*kind* a serializable sweep dimension for ``repro.exec`` job specs and
keeps every entry point exercising the same construction path.  A direct
``HiRepSystem(...)`` / ``PureVotingSystem(...)`` call in an experiment or
example bypasses that layer, so new backends registered by downstream code
never show up there.

Scope: ``repro.experiments`` modules and the ``examples/`` scripts (which
live outside any package, so they reach the linter with ``module=None``
and are recognised by path).  The implementation packages themselves —
``repro.core``, ``repro.baselines`` — and the test suite stay exempt:
somebody has to call the constructors, and that somebody is the registry's
builders plus the equivalence tests that pin registry-vs-direct parity.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.devtools.lint.engine import FileContext
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

#: CapWord names ending in ``System`` — the constructor naming convention
#: shared by hiREP and every baseline (HiRepSystem, PureVotingSystem, ...).
_SYSTEM_CLASS_RE = re.compile(r"^[A-Z]\w*System$")


def _callee_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


@register
class RegistryConstruction(Rule):
    """ARC001: no direct system constructor calls outside the kernel."""

    code = "ARC001"
    name = "experiments/examples must build systems via build_system()"

    def applies_to(self, module: str | None) -> bool:
        # examples/ scripts are packageless, so they reach the linter with
        # module=None or a bare stem ("quickstart"); path-scoped in
        # check().  Package modules are scoped by prefix here.
        if module is None or "." not in module:
            return True
        return module == "repro.experiments" or module.startswith(
            "repro.experiments."
        )

    def _in_scope(self, ctx: FileContext) -> bool:
        if ctx.module is not None and ctx.module.startswith("repro.experiments"):
            return True
        return ctx.path.startswith("examples/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _callee_name(node.func)
            if _SYSTEM_CLASS_RE.match(name):
                yield ctx.finding(
                    self,
                    node,
                    f"direct {name}(...) construction bypasses the system "
                    f'registry; use build_system("<name>", config, ...) so '
                    "the system kind stays a serializable sweep dimension",
                )
