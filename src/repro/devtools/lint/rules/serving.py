"""SRV001: no blocking calls inside ``repro.serve`` coroutines.

The service plane runs every actor, the supervisor monitor, and the load
generator on one asyncio event loop.  A single synchronous blocking call
— ``time.sleep``, a blocking socket constructor/connect, ``subprocess``
— inside any ``async def`` stalls the whole fleet: no actor makes
progress, wall-clock latency spans inflate, and the quiescence drain can
deadlock against the very frame it is waiting for.  Await instead
(``asyncio.sleep``, ``asyncio.open_connection``, executor offload).

Beyond the module-level blocking chains, the rule flags two shapes that
only exist inside a running loop: ``loop.run_until_complete(...)`` in a
coroutine (re-entering the loop from inside itself raises or deadlocks —
await the coroutine instead) and bare, non-awaited socket/stream reads
(``sock.recv(...)``, ``conn.read()``) whose awaited asyncio counterparts
exist precisely so the loop keeps scheduling while bytes are in flight.

The rule walks only coroutine bodies; a synchronous ``def`` nested inside
an ``async def`` (callbacks handed to the loop, key functions) runs
outside the await chain and is not flagged.  Blocking calls hidden behind
*synchronous helpers called from* a coroutine are out of per-file reach —
the whole-program rule TNT002 (:mod:`repro.devtools.analyze.rules`)
closes that gap by walking the call graph from every serve coroutine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import FileContext
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register
from repro.devtools.lint.rules.determinism import _attr_chain

#: attribute chains that block the event loop, with the async alternative.
_BLOCKING_CHAINS: dict[tuple[str, ...], str] = {
    ("time", "sleep"): "await asyncio.sleep(...)",
    ("socket", "socket"): "asyncio.open_connection / asyncio.start_server",
    ("socket", "create_connection"): "asyncio.open_connection",
    ("socket", "create_server"): "asyncio.start_server",
    ("subprocess", "run"): "asyncio.create_subprocess_exec",
    ("subprocess", "call"): "asyncio.create_subprocess_exec",
    ("subprocess", "check_call"): "asyncio.create_subprocess_exec",
    ("subprocess", "check_output"): "asyncio.create_subprocess_exec",
    ("subprocess", "Popen"): "asyncio.create_subprocess_exec",
}

#: method names that read/write a socket or stream synchronously; flagged
#: only when the call is *not* awaited (``await reader.read(n)`` is the
#: asyncio-stream idiom and exactly right).
_SOCKET_METHODS: dict[str, str] = {
    "recv": "await reader.read(n) on an asyncio stream",
    "recv_into": "await reader.read(n) on an asyncio stream",
    "recvfrom": "asyncio datagram transports",
    "sendall": "writer.write(...) + await writer.drain()",
    "read": "await reader.read(...)",
}


def _awaited_calls(root: ast.AST) -> set[int]:
    """ids of Call nodes that appear directly under an ``await``."""
    return {
        id(node.value)
        for node in ast.walk(root)
        if isinstance(node, ast.Await) and isinstance(node.value, ast.Call)
    }


def _blocking_calls(
    body: list[ast.stmt], awaited: set[int]
) -> Iterator[tuple[ast.Call, str, str]]:
    """Yield (call, dotted-name, fix) for blocking calls reachable from ``body``.

    Descends into everything except nested function/class definitions —
    a nested sync ``def`` runs outside the coroutine's await chain, and a
    nested ``async def`` gets its own visit from the top-level walk.
    """
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        if isinstance(node, ast.Call):
            chain = tuple(_attr_chain(node.func))
            fix = _BLOCKING_CHAINS.get(chain)
            if fix is not None:
                yield node, ".".join(chain), fix
            elif chain and chain[-1] == "run_until_complete":
                yield (
                    node,
                    ".".join(chain),
                    "await the coroutine (the loop is already running here)",
                )
            elif (
                len(chain) >= 2
                and chain[-1] in _SOCKET_METHODS
                and id(node) not in awaited
            ):
                yield node, ".".join(chain), _SOCKET_METHODS[chain[-1]]
        stack.extend(ast.iter_child_nodes(node))


@register
class NoBlockingCallsInCoroutines(Rule):
    """SRV001: coroutines in the service plane must never block the loop."""

    code = "SRV001"
    name = "no blocking calls (time.sleep, sync sockets, subprocess) in async code"
    packages = ("repro.serve",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            awaited = _awaited_calls(node)
            for call, dotted, fix in _blocking_calls(node.body, awaited):
                yield ctx.finding(
                    self,
                    call,
                    f"{dotted}() blocks the event loop inside coroutine "
                    f"`{node.name}`; every actor stalls until it returns — "
                    f"use {fix}",
                )
