"""Developer tooling that ships with the library but is not imported by it.

Currently one subpackage: :mod:`repro.devtools.lint`, the ``hirep-lint``
static analyzer that enforces the determinism and scheduler invariants the
simulation's reproducibility guarantees rest on.
"""
