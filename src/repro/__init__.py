"""repro — a full reproduction of *hiREP: Hierarchical Reputation
Management for Peer-to-Peer Systems* (Liu & Xiao, ICPP 2006).

Public API tour
---------------

>>> from repro import HiRepSystem, HiRepConfig
>>> system = HiRepSystem(HiRepConfig(network_size=200, seed=7))
>>> system.bootstrap()
>>> outcome = system.run_transaction(requestor=0)
>>> 0.0 <= outcome.estimate <= 1.0
True

Subpackages: :mod:`repro.core` (the hiREP protocol), :mod:`repro.net`
(unstructured P2P substrate), :mod:`repro.onion` (onion routing),
:mod:`repro.crypto` (RSA / simulated backends), :mod:`repro.sim`
(discrete-event engine and metrics), :mod:`repro.baselines` (pure voting,
TrustMe, EigenTrust), :mod:`repro.attacks` (§4.2 attack models),
:mod:`repro.workloads` and :mod:`repro.experiments` (per-figure harness),
:mod:`repro.exec` (parallel experiment orchestration: process-pool
scheduler, content-addressed result cache, resumable run manifests).
"""

from repro._version import __version__
from repro.core.config import DEFAULT_CONFIG, HiRepConfig
from repro.core.interface import Outcome, ReputationSystem
from repro.core.registry import (
    DEFAULT_REGISTRY,
    SystemRegistry,
    build_system,
    register_system,
    system_names,
)
from repro.core.system import HiRepSystem, TransactionOutcome
from repro.baselines.voting import PureVotingSystem
from repro.errors import ReproError

__all__ = [
    "__version__",
    "DEFAULT_CONFIG",
    "DEFAULT_REGISTRY",
    "HiRepConfig",
    "HiRepSystem",
    "Outcome",
    "ReputationSystem",
    "SystemRegistry",
    "TransactionOutcome",
    "PureVotingSystem",
    "ReproError",
    "build_system",
    "register_system",
    "system_names",
]
