"""Oscillation (build-then-milk) attacks on reputation.

A classic attack on EWMA-style trust (TrustGuard's motivating case, the
paper's ref [9]): an agent evaluates honestly until it is well-trusted,
then flips.  hiREP's defence is the same expertise EWMA that filters
always-bad agents — the flip shows up as inconsistent evaluations and the
agent is silenced after one or two strikes, no matter how long it behaved.

:class:`OscillatingModel` wraps the quality-driven model with a turn point
(or a duty cycle); the robustness tests train a system on honest behaviour,
trigger the turn, and measure how quickly accuracy recovers.
"""

from __future__ import annotations

import numpy as np

from repro.core.trust_models import QualityDrivenModel, TrustModel
from repro.crypto.hashing import NodeID
from repro.errors import ConfigError

__all__ = ["OscillatingModel"]


class OscillatingModel(TrustModel):
    """Evaluates honestly for ``honest_evaluations``, then turns (or cycles).

    Parameters
    ----------
    honest_evaluations:
        Number of initial evaluations made honestly (the build phase).
    period:
        When set, after the build phase the agent alternates: ``period``
        dishonest evaluations, then ``period`` honest ones, repeating —
        the oscillation proper.  When ``None`` the turn is permanent.
    """

    def __init__(
        self,
        good_range: tuple[float, float] = (0.6, 1.0),
        bad_range: tuple[float, float] = (0.0, 0.4),
        *,
        honest_evaluations: int = 20,
        period: int | None = None,
    ) -> None:
        if honest_evaluations < 0:
            raise ConfigError(f"honest_evaluations must be >= 0, got {honest_evaluations}")
        if period is not None and period < 1:
            raise ConfigError(f"period must be >= 1, got {period}")
        self._honest = QualityDrivenModel(True, good_range, bad_range)
        self._dishonest = QualityDrivenModel(False, good_range, bad_range)
        self.honest_evaluations = honest_evaluations
        self.period = period
        self.evaluations = 0

    def currently_honest(self) -> bool:
        """Which face the agent is showing for the next evaluation."""
        if self.evaluations < self.honest_evaluations:
            return True
        if self.period is None:
            return False
        phase = (self.evaluations - self.honest_evaluations) // self.period
        return phase % 2 == 1  # first post-build phase is dishonest

    def evaluate(
        self, subject: NodeID, subject_truth: float, rng: np.random.Generator
    ) -> float:
        model = self._honest if self.currently_honest() else self._dishonest
        self.evaluations += 1
        return model.evaluate(subject, subject_truth, rng)
