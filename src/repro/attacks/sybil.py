"""Sybil attacks (§4.2.2, citing Douceur).

hiREP cannot *prevent* sybils — "this is not avoidable unless the system
has some centralized control server" — but it damps the damage: each sybil
identity is just another reputation agent, and agents whose evaluations are
inconsistent get filtered out by expertise maintenance regardless of how
many identities their operator spawned.

A sybil identity here is a forged self-advertising agent whose evaluations
are adversarial (always inverted).  The attack injects ``count`` sybils into
discovery via the recommendation hook and the experiment measures how much
MSE the trained system gives back.
"""

from __future__ import annotations

import numpy as np

from repro.core.messages import AgentListEntry
from repro.core.system import HiRepSystem
from repro.core.trust_models import QualityDrivenModel
from repro.core.agent import ReputationAgent
from repro.crypto.keys import PeerKeys

__all__ = ["SybilOperator"]


class SybilOperator:
    """Creates sybil agent identities hosted on one physical node.

    All sybils share the attacker's IP (they are processes on one box) but
    carry distinct, *valid* key material — sybil nodeIDs verify correctly,
    which is exactly why cryptography alone cannot stop the attack.
    """

    def __init__(
        self,
        system: HiRepSystem,
        host_ip: int,
        count: int,
        rng: np.random.Generator,
    ) -> None:
        self.system = system
        self.host_ip = host_ip
        self.rng = rng
        self.identities: list[PeerKeys] = []
        self.agents: list[ReputationAgent] = []
        cfg = system.config
        for _ in range(count):
            keys = PeerKeys.generate(system.backend, rng)
            self.identities.append(keys)
            # Inverted evaluations: a 'poor' quality-driven model.
            model = QualityDrivenModel(False, cfg.good_rating, cfg.bad_rating)
            self.agents.append(
                ReputationAgent(
                    ip=host_ip,
                    keys=keys,
                    backend=system.backend,
                    model=model,
                    rng=rng,
                    truth_oracle=lambda nid: system.truth_by_id.get(nid, 0.5),
                )
            )

    def entries(self) -> tuple[AgentListEntry, ...]:
        """Self-advertisements for every sybil, all claiming top weight."""
        host_peer = self.system.peers[self.host_ip]
        onion = host_peer.ensure_onion(self.system.relay_pool())
        return tuple(
            AgentListEntry(
                weight=1.0,
                agent_node_id=keys.node_id,
                agent_onion=onion,
                agent_sp=keys.sp,
                agent_ip=self.host_ip,
            )
            for keys in self.identities
        )

    def install(self, compromised: set[int]) -> None:
        """Serve sybil lists from ``compromised`` nodes during discovery.

        Also registers the sybil agents so trust requests addressed to them
        are answered (adversarially) instead of silently dropped: the host
        node dispatches by which SP the request was sealed to.
        """
        entries = self.entries()

        def hook(node: int):
            return entries if node in compromised else None

        self.system.discovery_list_hook = hook

        # Multiplex sybil agents behind the host's endpoint.
        original = self.system._make_endpoint(self.host_ip)
        from repro.core.messages import TrustValueRequest
        from repro.net.messages import Category
        from repro.errors import ProtocolError

        def endpoint(message, sent_at: float) -> None:
            if isinstance(message, TrustValueRequest):
                for agent in self.agents:
                    try:
                        fresh = self.system.peers[self.host_ip].fresh_onion(
                            self.system.relay_pool()
                        )
                        response = agent.handle_trust_request(message, fresh)
                    except ProtocolError:
                        continue  # sealed to a different sybil (or the host)
                    self.system.router.send(
                        self.host_ip,
                        message.requestor_onion,
                        response,
                        category=Category.TRUST_RESPONSE,
                    )
                    return
            original(message, sent_at)

        self.system.router.set_endpoint(self.host_ip, endpoint)
