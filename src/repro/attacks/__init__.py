"""Attack models from the paper's robustness analysis (§4.2)."""

from repro.attacks.collusion import CollusionPoint, sweep_attacker_ratio
from repro.attacks.dos import DosOutcome, restore_agents, take_down_top_agents
from repro.attacks.models import (
    RecommendationAttacker,
    install_recommendation_attack,
)
from repro.attacks.oscillation import OscillatingModel
from repro.attacks.spoofing import SpoofingReport, forge_report, mount_spoofing_attack
from repro.attacks.sybil import SybilOperator
from repro.attacks.traffic_analysis import (
    TrafficObserver,
    top_k_precision,
    true_popular_agents,
)
from repro.attacks.whitewash import WhitewashOutcome, whitewash_provider

__all__ = [
    "TrafficObserver",
    "top_k_precision",
    "true_popular_agents",
    "OscillatingModel",
    "WhitewashOutcome",
    "whitewash_provider",
    "CollusionPoint",
    "sweep_attacker_ratio",
    "DosOutcome",
    "restore_agents",
    "take_down_top_agents",
    "RecommendationAttacker",
    "install_recommendation_attack",
    "SpoofingReport",
    "forge_report",
    "mount_spoofing_attack",
    "SybilOperator",
]
