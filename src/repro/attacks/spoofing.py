"""Identity-spoofing attacks (§4.2.2).

"In identity spoofing attacks, attackers send out trust values or
transaction results using the identities of other nodes.  This is not
possible in hiREP" — every report is signed with the private key bound to
the sender's nodeID.  These helpers *mount* the attack against a live
system so tests and the robustness experiment can measure the rejection
rate (which must be 100%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.agent import ReputationAgent
from repro.core.messages import SignedResult, TransactionReport
from repro.core.system import HiRepSystem
from repro.crypto.hashing import NodeID

__all__ = ["SpoofingReport", "forge_report", "mount_spoofing_attack"]


@dataclass
class SpoofingReport:
    """Result of one spoofing campaign."""

    attempted: int
    accepted: int

    @property
    def rejection_rate(self) -> float:
        if self.attempted == 0:
            return float("nan")
        return 1.0 - self.accepted / self.attempted


def forge_report(
    system: HiRepSystem,
    attacker_ip: int,
    victim_node_id: NodeID,
    subject: NodeID,
    outcome: float,
) -> TransactionReport:
    """Build a report claiming to come from ``victim_node_id``.

    The attacker signs with *its own* key (it cannot have the victim's SR),
    exactly the forgery the paper rules out.
    """
    attacker = system.peers[attacker_ip]
    result = SignedResult(
        subject=subject,
        outcome=outcome,
        nonce=attacker.nonces.issue(),
    )
    signature = system.backend.sign(attacker.keys.sr, result)
    return TransactionReport(
        result=result,
        signature=signature,
        reporter_node_id=victim_node_id,  # the lie
    )


def mount_spoofing_attack(
    system: HiRepSystem,
    attacker_ip: int,
    agent_ip: int,
    attempts: int,
    rng: np.random.Generator,
) -> SpoofingReport:
    """Fire ``attempts`` forged reports at one agent; count acceptances.

    Victim identities are sampled from the agent's public-key list (worst
    case for the defence: the agent *knows* these identities), and the
    forged outcome inverts the subject's ground truth.
    """
    agent: ReputationAgent = system.agents[agent_ip]
    attacker_id = system.peers[attacker_ip].node_id
    # A report under the attacker's own identity is not a spoof.
    known = [nid for nid in agent.public_key_list if nid != attacker_id]
    if not known:
        return SpoofingReport(attempted=0, accepted=0)
    accepted = 0
    subjects = list(system.truth_by_id.keys())
    for _ in range(attempts):
        victim = known[int(rng.integers(0, len(known)))]
        subject = subjects[int(rng.integers(0, len(subjects)))]
        truth = system.truth_by_id[subject]
        report = forge_report(
            system, attacker_ip, victim, subject, outcome=1.0 - truth
        )
        if agent.handle_report(report):
            accepted += 1
    return SpoofingReport(attempted=attempts, accepted=accepted)
