"""DoS/DDoS against high-performance reputation agents (§4.2.4).

The paper argues the attack is costly to *target* (onion traffic hides who
the good agents are) and cheap to *absorb* (peers replace lost agents from
a large community).  :func:`take_down_top_agents` models a successful
targeting — the strongest possible attacker — and the robustness experiment
measures the absorption: the MSE dip and its recovery as peers fall back to
backups and rediscovery.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.core.system import HiRepSystem

__all__ = ["DosOutcome", "take_down_top_agents", "restore_agents"]


@dataclass
class DosOutcome:
    """Which agents were disabled."""

    disabled: list[int]


def _agent_popularity(system: HiRepSystem) -> dict[int, int]:
    """How many peers currently trust each agent (the attacker's oracle)."""
    popularity: dict[int, int] = {ip: 0 for ip in system.agents}
    for peer in system.peers:
        for agent in peer.agent_list.agents():
            ip = agent.entry.agent_ip
            if ip in popularity:
                popularity[ip] += 1
    return popularity


def take_down_top_agents(
    system: HiRepSystem, count: int, exclude: set[int] | None = None
) -> DosOutcome:
    """Knock the ``count`` most-trusted agents offline.

    ``exclude`` protects specific nodes (e.g. the requestor under study,
    which the attacker has no reason to target).
    """
    popularity = _agent_popularity(system)
    ranked = sorted(popularity, key=popularity.get, reverse=True)
    if exclude:
        ranked = [ip for ip in ranked if ip not in exclude]
    victims = ranked[:count]
    for ip in victims:
        system.network.set_online(ip, False)
    return DosOutcome(disabled=victims)


def restore_agents(system: HiRepSystem, outcome: DosOutcome) -> None:
    """Bring the victims back online (end of the attack window)."""
    for ip in outcome.disabled:
        system.network.set_online(ip, True)
