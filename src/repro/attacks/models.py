"""Recommendation-manipulation attacks (§4.2.1).

Attackers try to bias trusted-agent selection by forging the weights in the
lists they return during discovery:

* **bad-mouthing** — weight 0 for high-performance agents.  Defeated by the
  max-rank merge: one honest high recommendation outranks any number of bad
  ones ("as an agent is always ranked according to the greatest weight it
  received, the bad recommendation given by attackers will be ignored").
* **ballot-stuffing** — weight 1 for poor agents.  Cannot be fully
  prevented; the paper's claim is the weaker guarantee that good agents
  still reach the candidate set, and poor ones get filtered by expertise
  maintenance afterwards.

:class:`RecommendationAttacker` plugs into
``HiRepSystem.discovery_list_hook`` and forges both at once.
"""

from __future__ import annotations

import numpy as np

from repro.core.messages import AgentListEntry
from repro.core.system import HiRepSystem
from repro.errors import ConfigError

__all__ = ["RecommendationAttacker", "install_recommendation_attack"]


class RecommendationAttacker:
    """Forges discovery replies from a set of compromised nodes."""

    def __init__(
        self,
        system: HiRepSystem,
        compromised: set[int],
        *,
        bad_mouth_good: bool = True,
        ballot_stuff_poor: bool = True,
    ) -> None:
        self.system = system
        self.compromised = set(compromised)
        self.bad_mouth_good = bad_mouth_good
        self.ballot_stuff_poor = ballot_stuff_poor
        self.forged_lists_served = 0
        self._poor = set(system.poor_agent_ips())
        self._good = set(system.good_agent_ips())

    def __call__(self, node: int) -> tuple[AgentListEntry, ...] | None:
        """The ``discovery_list_hook``: forge when ``node`` is compromised."""
        if node not in self.compromised:
            return None
        forged: list[AgentListEntry] = []
        # Ballot-stuff every poor agent the attacker can advertise.
        if self.ballot_stuff_poor:
            for ip in self._poor:
                entry = self.system.self_entry_for(ip)
                if entry is not None:
                    forged.append(
                        AgentListEntry(
                            weight=1.0,
                            agent_node_id=entry.agent_node_id,
                            agent_onion=entry.agent_onion,
                            agent_sp=entry.agent_sp,
                            agent_ip=entry.agent_ip,
                        )
                    )
        # Bad-mouth the good ones with zero weight.
        if self.bad_mouth_good:
            for ip in self._good:
                entry = self.system.self_entry_for(ip)
                if entry is not None:
                    forged.append(
                        AgentListEntry(
                            weight=0.0,
                            agent_node_id=entry.agent_node_id,
                            agent_onion=entry.agent_onion,
                            agent_sp=entry.agent_sp,
                            agent_ip=entry.agent_ip,
                        )
                    )
        if not forged:
            return None
        self.forged_lists_served += 1
        return tuple(forged)


def install_recommendation_attack(
    system: HiRepSystem,
    attacker_fraction: float,
    rng: np.random.Generator,
    **kwargs,
) -> RecommendationAttacker:
    """Compromise a random fraction of nodes and install the hook."""
    if not 0.0 <= attacker_fraction <= 1.0:
        raise ConfigError(f"attacker_fraction must be in [0,1], got {attacker_fraction}")
    n = system.config.network_size
    count = int(round(attacker_fraction * n))
    compromised = set(
        int(i) for i in rng.choice(n, size=min(count, n), replace=False)
    )
    attacker = RecommendationAttacker(system, compromised, **kwargs)
    system.discovery_list_hook = attacker
    return attacker
