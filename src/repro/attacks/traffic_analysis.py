"""Traffic-analysis adversary (§4.2.4).

To DoS the high-performance reputation agents, an attacker must first find
them.  The paper argues that "as traffic is spread among randomly chosen
onion relays and reputation agents, it is hard to identify the high
performance reputation agents by analyzing the traffic flow".

:class:`TrafficObserver` is a global passive eavesdropper — the strongest
wiretap model: it sees the (src, dst, category, size) of **every** datagram
in the network, but no plaintext (everything protocol-relevant is sealed).
Its inference is the natural one: nodes that *receive* the most trust-phase
traffic are probably the popular agents.  The experiment measures the
attacker's top-k precision against the true most-popular agents, with and
without onions — without them the agents light up immediately; with them
the relays absorb and randomize the signal.
"""

from __future__ import annotations

from collections import Counter

from repro.core.system import HiRepSystem
from repro.net.messages import NetMessage

__all__ = ["TrafficObserver", "top_k_precision", "true_popular_agents"]


class TrafficObserver:
    """Global passive wiretap: per-node received/sent datagram counts."""

    def __init__(self, categories: set[str] | None = None) -> None:
        """``categories`` restricts observation (None = everything)."""
        self.categories = categories
        self.received: Counter[int] = Counter()
        self.sent: Counter[int] = Counter()
        self.observed = 0

    def __call__(self, msg: NetMessage) -> None:
        if self.categories is not None and msg.category not in self.categories:
            return
        self.received[msg.dst] += 1
        self.sent[msg.src] += 1
        self.observed += 1

    def attach(self, system: HiRepSystem) -> "TrafficObserver":
        system.network.observers.append(self)
        return self

    def suspected_agents(self, k: int) -> list[int]:
        """The attacker's guess: the k heaviest traffic sinks."""
        return [node for node, _count in self.received.most_common(k)]


def true_popular_agents(system: HiRepSystem, k: int) -> list[int]:
    """Ground truth: the k agents appearing on the most trusted lists."""
    popularity: Counter[int] = Counter()
    for peer in system.peers:
        for agent in peer.agent_list.agents():
            ip = agent.entry.agent_ip
            if ip in system.agents:
                popularity[ip] += 1
    return [ip for ip, _count in popularity.most_common(k)]


def top_k_precision(suspected: list[int], actual: list[int]) -> float:
    """|suspected ∩ actual| / |actual| — the attacker's hit rate."""
    if not actual:
        return float("nan")
    return len(set(suspected) & set(actual)) / len(actual)
