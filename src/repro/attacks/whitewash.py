"""Whitewashing: shedding a bad reputation by re-entering with a fresh
identity.

Free nodeIDs make this unavoidable in principle (§4.2.2's sybil
discussion: "not avoidable unless the system has some centralized control
server"); what a reputation system controls is how much a whitewasher
*gains*.  Against hiREP with report-driven agent models, a whitewashed
provider falls back to the uninformative prior — it does not inherit a
*good* reputation, it merely erases a bad one, and it starts accumulating
bad reports again immediately.

:func:`whitewash_provider` performs the identity reset against a live
system (new keys, agents' report history left keyed to the dead identity)
so experiments can measure the before/after trust values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.system import HiRepSystem
from repro.crypto.hashing import NodeID
from repro.crypto.keys import PeerKeys

__all__ = ["WhitewashOutcome", "whitewash_provider"]


@dataclass
class WhitewashOutcome:
    """Identity change bookkeeping."""

    provider: int
    old_node_id: NodeID
    new_node_id: NodeID


def whitewash_provider(system: HiRepSystem, provider: int) -> WhitewashOutcome:
    """Re-enter ``provider`` under a brand-new identity.

    Unlike the legitimate key *rotation* of §3.5 (which signs the new key
    with the old one precisely so reputation carries over), a whitewasher
    announces nothing: the old nodeID simply goes dark and a new one
    appears.  Agents keep their reports about the dead identity; the new
    identity starts from scratch.
    """
    peer = system.peers[provider]
    old_id = peer.node_id
    new_keys = PeerKeys.generate(system.backend, system.world.rng_keys)
    peer.adopt_keys(new_keys)
    system.router.register_node(provider, new_keys.ar)
    from repro.crypto.nonce import NonceRegistry
    from repro.onion.handshake import HandshakeResponder

    system.relay_registry.register(
        provider,
        HandshakeResponder(
            system.backend, new_keys.ap, new_keys.ar, provider, NonceRegistry(peer.rng)
        ),
    )
    truth = system.truth_by_id.pop(old_id)
    system.truth_by_id[new_keys.node_id] = truth
    return WhitewashOutcome(
        provider=provider, old_node_id=old_id, new_node_id=new_keys.node_id
    )
