"""Collusive evaluation manipulation (§4.2.3).

Attackers "make good evaluations for poor peers and bad evaluations for
good peers".  In the voting baseline every colluding voter moves the plain
mean directly; in hiREP the colluders must first *be* trusted agents and
then survive expertise maintenance — which they cannot, because their
inverted evaluations are exactly what the eviction rule scores.

This module provides the shared attacker-ratio sweep both Fig. 7 and the
robustness experiment use.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.baselines.voting import PureVotingSystem
from repro.core.config import HiRepConfig
from repro.core.system import HiRepSystem

__all__ = ["CollusionPoint", "sweep_attacker_ratio"]


@dataclass(frozen=True)
class CollusionPoint:
    """One attacker-ratio measurement."""

    attacker_ratio: float
    hirep_mse: float
    voting_mse: float


def sweep_attacker_ratio(
    base_config: HiRepConfig,
    ratios: list[float],
    *,
    train_transactions: int = 200,
    measure_transactions: int = 100,
    requestor: int | None = 0,
) -> list[CollusionPoint]:
    """Fig. 7's sweep: MSE after training, as the attacker ratio grows.

    For hiREP the ratio sets the fraction of *reputation agents* that are
    poor; for voting it sets the fraction of *voters* that are malicious —
    the same interpretation the paper uses.
    """
    from repro.campaigns.specs import AttackSpec

    points: list[CollusionPoint] = []
    for ratio in ratios:
        cfg = AttackSpec.collusion(ratio).transform_config(base_config, protocol=True)
        hirep = HiRepSystem(cfg)
        hirep.bootstrap()
        hirep.reset_metrics()
        hirep.run(train_transactions, requestor=requestor)
        hirep.mse.reset()
        hirep.run(measure_transactions, requestor=requestor)

        voting = PureVotingSystem(cfg)
        voting.run(measure_transactions, requestor=requestor)

        points.append(
            CollusionPoint(
                attacker_ratio=ratio,
                hirep_mse=hirep.mse.mse(),
                voting_mse=voting.mse.mse(),
            )
        )
    return points
