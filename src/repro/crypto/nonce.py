"""Nonce issuance and replay detection.

Nonces appear in three places in the paper: the anonymity-key handshake
(Fig. 3), trust value request/response matching (§3.5.1–3.5.2), and
transaction reports (§3.5.3).  :class:`NonceRegistry` provides both sides:
issuing fresh nonces and rejecting any value seen before.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReplayError

__all__ = ["NonceRegistry"]

_NONCE_BITS = 64


class NonceRegistry:
    """Issue unique nonces and detect replays.

    A bounded LRU-ish eviction keeps memory constant under long simulations:
    once ``capacity`` nonces are stored, the oldest half is discarded.  That
    matches deployed replay caches, which only guard a recency window.
    """

    def __init__(self, rng: np.random.Generator, capacity: int = 100_000) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self._rng = rng
        self._capacity = capacity
        self._seen: dict[int, None] = {}  # insertion-ordered set
        self._issued: set[int] = set()

    def issue(self) -> int:
        """Return a fresh nonce never issued by this registry before."""
        while True:
            nonce = int(self._rng.integers(1, 2**_NONCE_BITS, dtype=np.uint64))
            if nonce not in self._issued:
                self._issued.add(nonce)
                if len(self._issued) > self._capacity:
                    self._issued = set(list(self._issued)[self._capacity // 2 :])
                return nonce

    def accept(self, nonce: int) -> None:
        """Record an incoming nonce; raise :class:`ReplayError` if replayed."""
        if nonce in self._seen:
            raise ReplayError(f"nonce {nonce} replayed")
        self._seen[nonce] = None
        if len(self._seen) > self._capacity:
            drop = len(self._seen) // 2
            for key in list(self._seen)[:drop]:
                del self._seen[key]

    def has_seen(self, nonce: int) -> bool:
        return nonce in self._seen
