"""Number-theoretic primitives for the textbook-RSA backend.

Implemented from scratch (no third-party crypto): deterministic-base
Miller–Rabin for the sizes we use, extended Euclid, modular inverse, and
random prime generation driven by an explicit numpy Generator so key
generation is reproducible from the simulation seed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "is_probable_prime",
    "egcd",
    "modinv",
    "random_odd",
    "generate_prime",
]

# Small primes for fast trial division before Miller-Rabin.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)

# Witness set proven sufficient for n < 3.3e24 (covers our 256-bit prime
# candidates probabilistically too; for larger n these act as strong random
# bases and we add extra rounds below).
_MR_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_probable_prime(n: int, rng: np.random.Generator | None = None, rounds: int = 8) -> bool:
    """Miller–Rabin primality test.

    Uses the fixed witness set (deterministic for n < 3.3e24) plus
    ``rounds`` random witnesses for larger candidates.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # write n - 1 = d * 2^r with d odd
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    def witness(a: int) -> bool:
        """Return True if ``a`` witnesses compositeness of ``n``."""
        x = pow(a, d, n)
        if x in (1, n - 1):
            return False
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                return False
        return True

    for a in _MR_BASES:
        if a % n == 0:
            continue
        if witness(a):
            return False
    if n.bit_length() > 81 and rng is not None:
        for _ in range(rounds):
            a = int(rng.integers(2, min(n - 2, 2**63 - 1)))
            if witness(a):
                return False
    return True


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: returns ``(g, x, y)`` with ``a*x + b*y == g``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` mod ``m``; raises if not coprime."""
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {m} (gcd={g})")
    return x % m


def random_odd(bits: int, rng: np.random.Generator) -> int:
    """A random odd integer with exactly ``bits`` bits (top bit set)."""
    if bits < 2:
        raise ValueError(f"need at least 2 bits, got {bits}")
    nbytes = (bits + 7) // 8
    raw = int.from_bytes(rng.bytes(nbytes), "big")
    raw &= (1 << bits) - 1          # trim to width
    raw |= (1 << (bits - 1)) | 1    # force top bit and oddness
    return raw


def generate_prime(bits: int, rng: np.random.Generator) -> int:
    """Generate a random probable prime of exactly ``bits`` bits."""
    while True:
        candidate = random_odd(bits, rng)
        # March odd candidates forward; bounded so a pathological stretch
        # just resamples rather than walking out of the bit width.
        for _ in range(512):
            if candidate.bit_length() != bits:
                break
            if is_probable_prime(candidate, rng):
                return candidate
            candidate += 2
