"""Key containers for hiREP peers (§3.3).

Every peer owns two keypairs:

* the **signature pair** ``(SP, SR)`` — SP's hash is the peer's nodeID;
  used to sign trust values, transaction reports, and onions;
* the **anonymity pair** ``(AP, AR)`` — associated with the peer's IP
  address and used to build/peel onion layers.

Keeping the two roles in distinct fields (rather than reusing one pair)
matters: SP/nodeID is a *persistent pseudonym* while AP is linkable to the
IP, and the paper's anonymity argument relies on never mixing the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crypto.backend import CipherBackend, PrivateKey, PublicKey
from repro.crypto.hashing import NodeID, node_id_from_key

__all__ = ["KeyPair", "PeerKeys"]


@dataclass(frozen=True)
class KeyPair:
    """A public/private pair from one backend."""

    public: PublicKey
    private: PrivateKey

    @classmethod
    def generate(cls, backend: CipherBackend, rng: np.random.Generator) -> "KeyPair":
        pub, priv = backend.generate_keypair(rng)
        return cls(public=pub, private=priv)


@dataclass(frozen=True)
class PeerKeys:
    """The full key material of one peer."""

    signature: KeyPair
    anonymity: KeyPair
    node_id: NodeID = field(default=b"")

    def __post_init__(self) -> None:
        if not self.node_id:
            object.__setattr__(self, "node_id", node_id_from_key(self.signature.public))

    @classmethod
    def generate(cls, backend: CipherBackend, rng: np.random.Generator) -> "PeerKeys":
        """Generate both pairs and derive the nodeID."""
        return cls(
            signature=KeyPair.generate(backend, rng),
            anonymity=KeyPair.generate(backend, rng),
        )

    @property
    def sp(self) -> PublicKey:
        """Signature public key (SP)."""
        return self.signature.public

    @property
    def sr(self) -> PrivateKey:
        """Signature private key (SR)."""
        return self.signature.private

    @property
    def ap(self) -> PublicKey:
        """Anonymity public key (AP)."""
        return self.anonymity.public

    @property
    def ar(self) -> PrivateKey:
        """Anonymity private key (AR)."""
        return self.anonymity.private

    def rotated(self, backend: CipherBackend, rng: np.random.Generator) -> "PeerKeys":
        """Fresh keypairs for periodic key update (§3.5 last paragraph).

        The caller is responsible for announcing the new SP signed with the
        old SR so correspondents can map old nodeID → new nodeID.
        """
        return PeerKeys.generate(backend, rng)
