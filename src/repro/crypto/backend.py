"""Abstract interface of the cryptographic backends.

hiREP's protocols only need five operations — keypair generation,
public-key encryption/decryption of Python payloads, and signing /
verification — plus a stable byte serialization of public keys from which
nodeIDs are derived (``nodeID = SHA-1(SP)``, §3.3).

Two interchangeable implementations exist:

* :class:`repro.crypto.rsa.RSABackend` — real textbook RSA; proves the
  protocols end-to-end and is used by the test suite and examples.
* :class:`repro.crypto.simulated.SimulatedBackend` — constant-time envelope
  model with identical failure semantics (wrong key ⇒ error, tampered data ⇒
  verification failure); used for 1000-node experiment sweeps where bignum
  arithmetic would dominate runtime.  This substitution is documented in
  DESIGN.md.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["PublicKey", "PrivateKey", "CipherBackend", "get_backend"]


@dataclass(frozen=True)
class PublicKey:
    """Opaque public key: backend name + serialized material."""

    backend: str
    material: bytes

    def to_bytes(self) -> bytes:
        """Stable byte form used for nodeID derivation and key lists."""
        return self.backend.encode("ascii") + b":" + self.material

    def __repr__(self) -> str:  # keep logs short
        return f"PublicKey({self.backend}, {self.material[:8].hex()}…)"


@dataclass(frozen=True)
class PrivateKey:
    """Opaque private key: backend name + serialized material."""

    backend: str
    material: bytes

    def __repr__(self) -> str:
        return f"PrivateKey({self.backend}, ░░░)"


class CipherBackend(abc.ABC):
    """Strategy interface implemented by the RSA and simulated backends."""

    name: str

    @abc.abstractmethod
    def generate_keypair(self, rng: np.random.Generator) -> tuple[PublicKey, PrivateKey]:
        """Generate a fresh keypair from the supplied generator."""

    @abc.abstractmethod
    def encrypt(self, public: PublicKey, payload: Any) -> Any:
        """Encrypt an arbitrary picklable payload to ``public``."""

    @abc.abstractmethod
    def decrypt(self, private: PrivateKey, ciphertext: Any) -> Any:
        """Decrypt; raises :class:`repro.errors.KeyMismatchError` on the wrong key."""

    @abc.abstractmethod
    def sign(self, private: PrivateKey, payload: Any) -> Any:
        """Produce a signature over ``payload``."""

    @abc.abstractmethod
    def verify(self, public: PublicKey, payload: Any, signature: Any) -> bool:
        """Check a signature; returns False (never raises) on mismatch."""

    def check_pair(self, public: PublicKey, private: PrivateKey) -> bool:
        """Round-trip self-test used by handshake verification."""
        probe = b"pair-probe"
        try:
            return self.decrypt(private, self.encrypt(public, probe)) == probe
        except Exception:
            return False


def get_backend(name: str) -> CipherBackend:
    """Factory: ``"rsa"`` or ``"simulated"``."""
    # Imported lazily to avoid import cycles.
    if name == "rsa":
        from repro.crypto.rsa import RSABackend

        return RSABackend()
    if name == "simulated":
        from repro.crypto.simulated import SimulatedBackend

        return SimulatedBackend()
    raise ValueError(f"unknown cipher backend {name!r} (expected 'rsa' or 'simulated')")
