"""Cryptographic substrate: RSA / simulated backends, keys, nodeIDs, nonces."""

from repro.crypto.backend import CipherBackend, PrivateKey, PublicKey, get_backend
from repro.crypto.hashing import NodeID, node_id_from_key, node_id_hex, verify_node_id
from repro.crypto.keys import KeyPair, PeerKeys
from repro.crypto.nonce import NonceRegistry
from repro.crypto.rsa import RSABackend
from repro.crypto.simulated import SimulatedBackend

__all__ = [
    "CipherBackend",
    "PublicKey",
    "PrivateKey",
    "get_backend",
    "NodeID",
    "node_id_from_key",
    "node_id_hex",
    "verify_node_id",
    "KeyPair",
    "PeerKeys",
    "NonceRegistry",
    "RSABackend",
    "SimulatedBackend",
]
