"""Textbook RSA backend.

This is deliberately *textbook* RSA (no OAEP/PSS padding): the evaluation
never depends on cryptographic strength, only on the protocol semantics —
ciphertexts that only the key owner can open, and signatures bound to the
signer's public key (from which the nodeID is derived).  The test suite runs
the full hiREP protocols over this backend to prove they are executable with
real public-key cryptography; large simulations use the simulated backend.

Payloads are pickled, chunked to fit the modulus, and each chunk is taken
through modular exponentiation.  Signatures are SHA-256-of-payload raised to
the private exponent.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any

import numpy as np

from repro.crypto.backend import CipherBackend, PrivateKey, PublicKey
from repro.crypto.numtheory import generate_prime, modinv
from repro.errors import CryptoError, KeyMismatchError

__all__ = ["RSABackend", "DEFAULT_BITS"]

DEFAULT_BITS = 512
_E = 65537


def _ser(n: int, d_or_e: int) -> bytes:
    """Serialize (modulus, exponent) with length prefixes."""
    nb = n.to_bytes((n.bit_length() + 7) // 8, "big")
    eb = d_or_e.to_bytes((d_or_e.bit_length() + 7) // 8, "big")
    return len(nb).to_bytes(2, "big") + nb + len(eb).to_bytes(2, "big") + eb


def _deser(blob: bytes) -> tuple[int, int]:
    ln = int.from_bytes(blob[:2], "big")
    n = int.from_bytes(blob[2 : 2 + ln], "big")
    off = 2 + ln
    le = int.from_bytes(blob[off : off + 2], "big")
    e = int.from_bytes(blob[off + 2 : off + 2 + le], "big")
    return n, e


class RSABackend(CipherBackend):
    """Real (toy-sized) RSA; see module docstring for the security caveat."""

    name = "rsa"

    def __init__(self, bits: int = DEFAULT_BITS) -> None:
        if bits < 128:
            raise ValueError(f"modulus below 128 bits cannot chunk payloads: {bits}")
        self.bits = bits

    # -- key generation ----------------------------------------------------

    def generate_keypair(self, rng: np.random.Generator) -> tuple[PublicKey, PrivateKey]:
        half = self.bits // 2
        while True:
            p = generate_prime(half, rng)
            q = generate_prime(self.bits - half, rng)
            if p == q:
                continue
            n = p * q
            phi = (p - 1) * (q - 1)
            if phi % _E == 0:
                continue
            d = modinv(_E, phi)
            return (
                PublicKey(self.name, _ser(n, _E)),
                PrivateKey(self.name, _ser(n, d)),
            )

    # -- encryption --------------------------------------------------------

    def encrypt(self, public: PublicKey, payload: Any) -> bytes:
        n, e = _deser(public.material)
        data = pickle.dumps(payload)
        chunk = (n.bit_length() - 1) // 8 - 3  # marker + 2-byte prefix + chunk < n
        out = bytearray()
        blocklen = (n.bit_length() + 7) // 8
        for i in range(0, len(data), chunk):
            piece = data[i : i + chunk]
            # 0x01 marker guards against leading-zero loss in the integer
            # round trip; the length prefix preserves trailing zero bytes.
            m = int.from_bytes(b"\x01" + len(piece).to_bytes(2, "big") + piece, "big")
            c = pow(m, e, n)
            out += c.to_bytes(blocklen + 2, "big")
        return bytes(out)

    def decrypt(self, private: PrivateKey, ciphertext: Any) -> Any:
        if not isinstance(ciphertext, (bytes, bytearray)):
            raise KeyMismatchError("ciphertext is not RSA data")
        n, d = _deser(private.material)
        blocklen = (n.bit_length() + 7) // 8 + 2
        if len(ciphertext) % blocklen != 0:
            raise KeyMismatchError("ciphertext length does not match this modulus")
        data = bytearray()
        for i in range(0, len(ciphertext), blocklen):
            c = int.from_bytes(ciphertext[i : i + blocklen], "big")
            if c >= n:
                raise KeyMismatchError("ciphertext block exceeds modulus")
            m = pow(c, d, n)
            raw = m.to_bytes(blocklen, "big").lstrip(b"\x00")
            # A correct decryption starts with the 0x01 marker byte.
            if len(raw) < 3 or raw[0] != 0x01:
                raise KeyMismatchError("chunk marker missing (wrong key?)")
            plen = int.from_bytes(raw[1:3], "big")
            piece = raw[3:]
            if plen != len(piece):
                raise KeyMismatchError("chunk length prefix inconsistent (wrong key?)")
            data += piece
        try:
            return pickle.loads(bytes(data))
        except Exception as exc:  # garbage plaintext ⇒ wrong key
            raise KeyMismatchError(f"decryption produced unpicklable data: {exc}") from exc

    # -- signatures ----------------------------------------------------------

    def sign(self, private: PrivateKey, payload: Any) -> bytes:
        n, d = _deser(private.material)
        digest = int.from_bytes(hashlib.sha256(pickle.dumps(payload)).digest(), "big") % n
        sig = pow(digest, d, n)
        return sig.to_bytes((n.bit_length() + 7) // 8 + 1, "big")

    def verify(self, public: PublicKey, payload: Any, signature: Any) -> bool:
        if not isinstance(signature, (bytes, bytearray)):
            return False
        try:
            n, e = _deser(public.material)
            sig = int.from_bytes(signature, "big")
            if sig >= n:
                return False
            recovered = pow(sig, e, n)
            digest = int.from_bytes(hashlib.sha256(pickle.dumps(payload)).digest(), "big") % n
            return recovered == digest
        except Exception:
            return False


def keypair_modulus(key: PublicKey | PrivateKey) -> int:
    """Expose the modulus for tests and diagnostics."""
    if key.backend != "rsa":
        raise CryptoError(f"not an RSA key: backend={key.backend!r}")
    n, _ = _deser(key.material)
    return n
