"""Fast simulated cipher backend.

Models public-key operations as tagged envelopes: a ciphertext is an
:class:`Envelope` carrying the key fingerprint it was encrypted to plus the
payload; only the holder of the matching private key can "open" it.  A
signature is a ``(fingerprint, digest)`` pair over a canonical serialization
of the payload.

The *failure semantics are identical* to real RSA — decrypting with the
wrong key raises :class:`~repro.errors.KeyMismatchError`, and any tampering
with a signed payload makes verification return ``False`` — so every
protocol path (including attack-rejection paths) behaves the same as with
the RSA backend, at a tiny fraction of the cost.  The simulation is honest
about what it cannot model: an adversary *inside the simulator* could forge
envelopes by constructing them directly; attack models in
:mod:`repro.attacks` therefore only use the public API, mirroring the
paper's assumption that "public keys cannot be cracked" (§3.5).
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.crypto.backend import CipherBackend, PrivateKey, PublicKey
from repro.errors import KeyMismatchError

__all__ = ["SimulatedBackend", "Envelope", "SimSignature"]

_FP_LEN = 16  # fingerprint bytes


@dataclass(frozen=True)
class Envelope:
    """Simulated ciphertext: payload sealed to a key fingerprint."""

    fingerprint: bytes
    payload: Any

    def __repr__(self) -> str:
        return f"Envelope(to={self.fingerprint[:4].hex()}…)"


@dataclass(frozen=True)
class SimSignature:
    """Simulated signature: signer fingerprint + payload digest."""

    fingerprint: bytes
    digest: bytes


def _digest(payload: Any) -> bytes:
    return hashlib.sha256(pickle.dumps(payload)).digest()


class SimulatedBackend(CipherBackend):
    """Envelope-model cipher; see module docstring."""

    name = "simulated"

    def generate_keypair(self, rng: np.random.Generator) -> tuple[PublicKey, PrivateKey]:
        secret = rng.bytes(_FP_LEN)
        # Public material is a one-way hash of the secret, so knowing a
        # public key never reveals the private material.
        fingerprint = hashlib.sha256(b"simkey:" + secret).digest()[:_FP_LEN]
        return (
            PublicKey(self.name, fingerprint),
            PrivateKey(self.name, secret),
        )

    @staticmethod
    def _fingerprint_of_private(private: PrivateKey) -> bytes:
        return hashlib.sha256(b"simkey:" + private.material).digest()[:_FP_LEN]

    def encrypt(self, public: PublicKey, payload: Any) -> Envelope:
        return Envelope(fingerprint=public.material, payload=payload)

    def decrypt(self, private: PrivateKey, ciphertext: Any) -> Any:
        if not isinstance(ciphertext, Envelope):
            raise KeyMismatchError("not a simulated envelope")
        if self._fingerprint_of_private(private) != ciphertext.fingerprint:
            raise KeyMismatchError("envelope sealed to a different key")
        return ciphertext.payload

    def sign(self, private: PrivateKey, payload: Any) -> SimSignature:
        return SimSignature(
            fingerprint=self._fingerprint_of_private(private),
            digest=_digest(payload),
        )

    def verify(self, public: PublicKey, payload: Any, signature: Any) -> bool:
        if not isinstance(signature, SimSignature):
            return False
        if signature.fingerprint != public.material:
            return False
        return signature.digest == _digest(payload)
