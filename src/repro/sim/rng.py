"""Seeded randomness utilities.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` that is threaded explicitly through
constructors — there is no module-level hidden state, so simulations are
reproducible bit-for-bit from a single integer seed.

:func:`spawn` derives independent child generators for subsystems (topology,
workload, attacks, latency) so adding draws to one subsystem does not perturb
the stream seen by another — the standard trick for variance-controlled
parameter sweeps.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

__all__ = ["make_rng", "spawn", "choice_without", "sample_unique"]

T = TypeVar("T")


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a Generator; pass through if one is already supplied."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return list(rng.spawn(n))


def choice_without(
    rng: np.random.Generator, n: int, exclude: int
) -> int:
    """Uniformly pick an integer in ``[0, n)`` different from ``exclude``.

    Used throughout workload generation to pick a provider distinct from the
    requestor without rejection loops.
    """
    if n < 2:
        raise ValueError("need at least two values to exclude one")
    draw = int(rng.integers(0, n - 1))
    return draw + 1 if draw >= exclude else draw


def sample_unique(
    rng: np.random.Generator, population: Sequence[T], k: int
) -> list[T]:
    """Sample ``k`` distinct items (or all of them if ``k`` exceeds the size)."""
    if k <= 0:
        return []
    if k >= len(population):
        out = list(population)
        rng.shuffle(out)  # type: ignore[arg-type]
        return out
    idx = rng.choice(len(population), size=k, replace=False)
    return [population[int(i)] for i in idx]
