"""Generator-based processes on top of the event engine.

The callback style used by the network layer is efficient but awkward for
long sequential behaviours (retry loops, periodic maintenance, churn
sessions).  :func:`spawn` runs a generator as a *process*: the generator
yields how long to sleep (a float, in ms) or another process handle to
join, and resumes when the engine reaches that point.

    def maintenance(engine, peer):
        while True:
            yield 5_000.0            # sleep 5 simulated seconds
            peer.probe_backups()

    handle = spawn(engine, maintenance(engine, peer))

Processes end when the generator returns; ``handle.result`` carries the
``StopIteration`` value, and joining a finished process resumes
immediately.
"""

from __future__ import annotations

from typing import Any, Generator, Union

from repro.errors import SimulationError
from repro.sim.engine import SimEngine

__all__ = ["ProcessHandle", "spawn"]

Yieldable = Union[float, int, "ProcessHandle"]


class ProcessHandle:
    """A running (or finished) process."""

    def __init__(
        self, engine: SimEngine, generator: Generator[Yieldable, Any, Any]
    ) -> None:
        self._engine = engine
        self._generator = generator
        self.done = False
        self.result: Any = None
        self.failed: BaseException | None = None
        self._joiners: list[ProcessHandle] = []

    # -- lifecycle ----------------------------------------------------------

    def _start(self) -> None:
        self._engine.schedule_in(0.0, self._step, label="process-start")

    def _step(self, send_value: Any = None) -> None:
        if self.done:
            return  # interrupted between scheduling and firing
        try:
            yielded = self._generator.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:  # surface process crashes loudly
            self.failed = exc
            self._finish(None)
            raise
        if isinstance(yielded, ProcessHandle):
            if yielded.done:
                self._engine.schedule_in(
                    0.0, lambda: self._step(yielded.result), label="process-join"
                )
            else:
                yielded._joiners.append(self)
        elif isinstance(yielded, (int, float)):
            delay = float(yielded)
            if delay < 0:
                raise SimulationError(f"process yielded negative delay {delay!r}")
            self._engine.schedule_in(delay, self._step, label="process-sleep")
        else:
            raise SimulationError(
                f"process yielded {type(yielded).__name__}; expected delay or ProcessHandle"
            )

    def _finish(self, result: Any) -> None:
        if self.done:
            return
        self.done = True
        self.result = result
        joiners, self._joiners = self._joiners, []
        for joiner in joiners:
            self._engine.schedule_in(
                0.0, lambda j=joiner: j._step(result), label="process-join"
            )

    def interrupt(self) -> None:
        """Stop the process at its next scheduled resumption."""
        self._generator.close()
        if not self.done:
            self._finish(None)


def spawn(
    engine: SimEngine, generator: Generator[Yieldable, Any, Any]
) -> ProcessHandle:
    """Start a generator as a process; it first runs at the current time."""
    handle = ProcessHandle(engine, generator)
    handle._start()
    return handle
